#![forbid(unsafe_code)]
//! A minimal, dependency-free, deterministic stand-in for the `proptest`
//! crate.
//!
//! This workspace builds in fully offline environments where crates.io is
//! unreachable, so the real `proptest` cannot be fetched. The property tests
//! only use a small slice of its API; this crate reimplements exactly that
//! slice with deterministic pseudo-random sampling:
//!
//! * [`proptest!`] — the test-generating macro, including an optional
//!   `#![proptest_config(...)]` header;
//! * [`any`] — an [`Arbitrary`]-driven full-range strategy;
//! * integer and float [`Range`](core::ops::Range) strategies;
//! * [`collection::vec`] — vectors of a strategy with a length range;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Sampling is seeded from the test's module path and name plus the case
//! index, so failures reproduce exactly across runs and machines. There is
//! no shrinking: a failing case panics with the sampled inputs printed via
//! the normal assertion message.

use core::marker::PhantomData;
use core::ops::Range;

/// Per-test-run configuration. Mirrors the subset of
/// `proptest::test_runner::Config` the workspace uses.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic generator handed to [`Strategy::sample`].
///
/// SplitMix64 under the hood: tiny, fast, and statistically fine for test
/// input generation.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator seeded from raw state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A generator for one case of one named property, derived from the
    /// property name and the case index so every case is distinct but
    /// reproducible.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of test values. The shim equivalent of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, g: &mut Gen) -> Self::Value;
}

/// Types that can be drawn uniformly over their whole domain via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T` (full domain, uniform).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is irrelevant at test-input quality.
                self.start + (g.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + g.next_f64() * (self.end - self.start)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Gen, Strategy};
    use core::ops::Range;

    /// A strategy for vectors of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = self.len.clone().sample(g);
            (0..n).map(|_| self.elem.sample(g)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies of one value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union (sampling panics until an option is added).
    #[must_use]
    pub fn new() -> Self {
        Self {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    #[must_use]
    pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, g: &mut Gen) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        let i = (g.next_u64() as usize) % self.options.len();
        self.options[i].sample(g)
    }
}

/// Uniformly picks one of the given strategies per sample (no weight
/// support, unlike real proptest).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new() $( .or($strat) )+
    };
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Gen, Just, ProptestConfig, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (plain `assert!` here — no
/// shrinking, the failing inputs are visible in the assertion message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption does not hold.
///
/// Expands to `continue` targeting the case loop [`proptest!`] generates, so
/// it must appear at the top level of the property body (not inside a nested
/// loop) — which is how the workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests. Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in any::<u64>(), v in collection::vec(0u8..4, 1..12)) {
///         prop_assert!(x == x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __gen = $crate::Gen::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __gen); )*
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::for_case("x", 3);
        let mut b = Gen::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Gen::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::new(7);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut g);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.5).sample(&mut g);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut g = Gen::new(9);
        for _ in 0..200 {
            let v = collection::vec(any::<u16>(), 1..64).sample(&mut g);
            assert!((1..64).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself compiles and iterates.
        #[test]
        fn macro_generates_cases(x in any::<u64>(), small in 0u8..4) {
            prop_assert!(small < 4);
            prop_assert_eq!(x, x);
            prop_assume!(x != 1);
            prop_assert_ne!(x, 1);
        }
    }
}
