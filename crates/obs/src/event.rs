//! The typed event taxonomy of the observability layer.
//!
//! Events are deliberately plain-data (`Copy`, integers, floats, and
//! `&'static str` labels) so that emitting one never allocates and the
//! `obs` crate never depends on the domain crates it observes — `nor`,
//! `core`, `fault`, and `sanitizer` all translate their own vocabulary
//! into this one at the emission site.

/// The flash operation classes the controller front-end exposes.
///
/// Partial erase, accelerated erase, and bulk imprint carry extra payload
/// and get their own [`ObsEvent`] variants instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlashOpKind {
    /// A single-word read.
    ReadWord,
    /// A whole-segment batched read.
    ReadBlock,
    /// A single-word program.
    ProgramWord,
    /// A whole-segment batched program.
    ProgramBlock,
    /// A full segment erase.
    EraseSegment,
    /// A mass (all-segment) erase.
    MassErase,
    /// A deliberately aborted word program.
    PartialProgram,
}

impl FlashOpKind {
    /// Stable counter/report name for this operation class.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ReadWord => "read_word",
            Self::ReadBlock => "read_block",
            Self::ProgramWord => "program_word",
            Self::ProgramBlock => "program_block",
            Self::EraseSegment => "erase_segment",
            Self::MassErase => "mass_erase",
            Self::PartialProgram => "partial_program",
        }
    }
}

/// One observability event.
///
/// Every event a trial emits is stamped with a monotone per-trial
/// `op_index` by the [`Collector`](crate::Collector), so a replayed
/// timeline is totally ordered without any wall-clock involvement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent {
    /// A plain flash operation (see [`FlashOpKind`]).
    FlashOp {
        /// Operation class.
        kind: FlashOpKind,
        /// Segment index the operation targeted (0 for mass erase).
        seg: u32,
    },
    /// A partial (aborted) segment erase — the Flashmark primitive.
    PartialErase {
        /// Segment index.
        seg: u32,
        /// Requested partial-erase time in microseconds.
        t_pe_us: f64,
    },
    /// An accelerated erase that exited as soon as the segment read clean.
    EraseUntilClean {
        /// Segment index.
        seg: u32,
        /// Simulated erase time actually spent, in microseconds.
        took_us: f64,
    },
    /// A closed-form bulk imprint (the simulator fast path for Fig. 7).
    BulkImprint {
        /// Segment index.
        seg: u32,
        /// Stress cycles applied.
        cycles: u64,
    },
    /// Cell-level work performed by a batched kernel (per-chunk counter
    /// aggregate — the arena kernels count cells, not per-cell events).
    CellsTouched {
        /// Which kernel touched them (`"read_block"`, `"bulk_imprint"`, …).
        kind: &'static str,
        /// Number of cell visits (cells × passes).
        cells: u64,
    },
    /// Entry into a named phase (see [`span`](crate::span)).
    SpanEnter {
        /// Phase name (`"imprint"`, `"extract"`, …).
        name: &'static str,
    },
    /// Exit from a named phase.
    SpanExit {
        /// Phase name.
        name: &'static str,
    },
    /// A retry of a transiently failed stage.
    Retry {
        /// What is being retried (`"extract"`, `"verify_attempt"`, …).
        stage: &'static str,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// One rung of the `verify_resilient` tPEW retry ladder.
    LadderRung {
        /// tPEW offset of this rung relative to the configured window, µs.
        offset_us: f64,
        /// What the rung produced (`"decoded"`, `"no_watermark"`, …).
        outcome: &'static str,
    },
    /// The strategy that ultimately settled a resilient verification.
    Resolution {
        /// Winning strategy label (see `flashmark_core::Resolution`).
        strategy: &'static str,
    },
    /// A fault plan fired an injected fault.
    FaultFired {
        /// Fault channel (`"transient_nak"`, `"read_flips"`, …).
        channel: &'static str,
        /// The injector's own operation index at which it fired.
        op: u64,
    },
    /// The flash-protocol sanitizer observed a contract violation.
    SanitizerViolation {
        /// Violation class (stable kind name).
        kind: &'static str,
        /// The flash operation that triggered it.
        op: &'static str,
    },
    /// A characterization sweep ran over a tPE window.
    SweepWidth {
        /// Sweep width (`end - start`) in microseconds.
        width_us: f64,
        /// Number of sweep points.
        points: u32,
    },
    /// A verification verdict was reached.
    Verdict {
        /// Verdict label (`"genuine"`, `"counterfeit"`, `"inconclusive"`, …).
        verdict: &'static str,
    },
}

impl ObsEvent {
    /// Stable name of this event's variant, used as the counter key.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::FlashOp { .. } => "flash_op",
            Self::PartialErase { .. } => "partial_erase",
            Self::EraseUntilClean { .. } => "erase_until_clean",
            Self::BulkImprint { .. } => "bulk_imprint",
            Self::CellsTouched { .. } => "cells_touched",
            Self::SpanEnter { .. } => "span_enter",
            Self::SpanExit { .. } => "span_exit",
            Self::Retry { .. } => "retry",
            Self::LadderRung { .. } => "ladder_rung",
            Self::Resolution { .. } => "resolution",
            Self::FaultFired { .. } => "fault_fired",
            Self::SanitizerViolation { .. } => "sanitizer_violation",
            Self::SweepWidth { .. } => "sweep_width",
            Self::Verdict { .. } => "verdict",
        }
    }

    /// One human-readable line describing the event, for timeline dumps.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::FlashOp { kind, seg } => format!("{} seg={seg}", kind.name()),
            Self::PartialErase { seg, t_pe_us } => {
                format!("partial_erase seg={seg} t_pe={t_pe_us:.2}us")
            }
            Self::EraseUntilClean { seg, took_us } => {
                format!("erase_until_clean seg={seg} took={took_us:.2}us")
            }
            Self::BulkImprint { seg, cycles } => {
                format!("bulk_imprint seg={seg} cycles={cycles}")
            }
            Self::CellsTouched { kind, cells } => {
                format!("cells_touched {kind} cells={cells}")
            }
            Self::SpanEnter { name } => format!("enter {name}"),
            Self::SpanExit { name } => format!("exit {name}"),
            Self::Retry { stage, attempt } => format!("retry {stage} attempt={attempt}"),
            Self::LadderRung { offset_us, outcome } => {
                format!("ladder_rung offset={offset_us:+.1}us -> {outcome}")
            }
            Self::Resolution { strategy } => format!("resolved_by {strategy}"),
            Self::FaultFired { channel, op } => format!("fault {channel} at_op={op}"),
            Self::SanitizerViolation { kind, op } => {
                format!("sanitizer_violation {kind} during {op}")
            }
            Self::SweepWidth { width_us, points } => {
                format!("sweep width={width_us:.1}us points={points}")
            }
            Self::Verdict { verdict } => format!("verdict {verdict}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_unique() {
        let names = [
            ObsEvent::FlashOp {
                kind: FlashOpKind::ReadWord,
                seg: 0,
            }
            .kind_name(),
            ObsEvent::PartialErase {
                seg: 0,
                t_pe_us: 1.0,
            }
            .kind_name(),
            ObsEvent::EraseUntilClean {
                seg: 0,
                took_us: 1.0,
            }
            .kind_name(),
            ObsEvent::BulkImprint { seg: 0, cycles: 1 }.kind_name(),
            ObsEvent::CellsTouched {
                kind: "x",
                cells: 1,
            }
            .kind_name(),
            ObsEvent::SpanEnter { name: "x" }.kind_name(),
            ObsEvent::SpanExit { name: "x" }.kind_name(),
            ObsEvent::Retry {
                stage: "x",
                attempt: 1,
            }
            .kind_name(),
            ObsEvent::LadderRung {
                offset_us: 0.0,
                outcome: "x",
            }
            .kind_name(),
            ObsEvent::Resolution { strategy: "x" }.kind_name(),
            ObsEvent::FaultFired {
                channel: "x",
                op: 0,
            }
            .kind_name(),
            ObsEvent::SanitizerViolation { kind: "x", op: "y" }.kind_name(),
            ObsEvent::SweepWidth {
                width_us: 1.0,
                points: 2,
            }
            .kind_name(),
            ObsEvent::Verdict { verdict: "x" }.kind_name(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate kind names");
    }

    #[test]
    fn descriptions_include_the_payload() {
        let e = ObsEvent::FaultFired {
            channel: "read_flips",
            op: 17,
        };
        assert_eq!(e.describe(), "fault read_flips at_op=17");
        let e = ObsEvent::FlashOp {
            kind: FlashOpKind::EraseSegment,
            seg: 3,
        };
        assert_eq!(e.describe(), "erase_segment seg=3");
    }
}
