//! Trial aggregation: merging per-trial collectors in trial order and
//! running instrumented trial campaigns over a `TrialRunner`.

use flashmark_par::{Trial, TrialRunner};

use crate::collector::{Collector, Metrics};
use crate::runtime;

/// Bounded per-trial facts carried into the aggregate report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSummary {
    /// Trial index within the campaign.
    pub trial_index: u64,
    /// Events the trial emitted in total.
    pub ops: u64,
    /// Events still retained in the trial's ring at merge time.
    pub events_retained: u64,
    /// Events evicted from (or refused by) the ring.
    pub dropped: u64,
}

/// The deterministic aggregate of an instrumented campaign.
///
/// Everything in here derives from per-trial collectors merged **in trial
/// order** with pointwise-added [`Metrics`], so the report is byte-for-byte
/// identical at any worker-thread count. Wall-clock timings never enter
/// this type — they are quarantined into `results/obs_timings.json` by the
/// bench layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    trials: u64,
    total_ops: u64,
    events_dropped: u64,
    metrics: Metrics,
    per_trial: Vec<TrialSummary>,
}

impl ObsReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a report from collectors already sorted in trial order.
    #[must_use]
    pub fn merge<'a, I: IntoIterator<Item = &'a Collector>>(collectors: I) -> Self {
        let mut report = Self::new();
        for c in collectors {
            report.absorb_collector(c);
        }
        report
    }

    /// Folds one trial's collector into the aggregate.
    pub fn absorb_collector(&mut self, c: &Collector) {
        self.trials += 1;
        self.total_ops += c.ops();
        self.events_dropped += c.dropped();
        self.metrics.absorb(c.metrics());
        self.per_trial.push(TrialSummary {
            trial_index: c.trial_index(),
            ops: c.ops(),
            events_retained: c.events().count() as u64,
            dropped: c.dropped(),
        });
    }

    /// Number of trials merged in.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Total events emitted across all trials.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Total ring evictions across all trials.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The merged metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Per-trial summaries in trial order.
    #[must_use]
    pub fn per_trial(&self) -> &[TrialSummary] {
        &self.per_trial
    }
}

/// The outputs of [`run_instrumented`]: campaign results and per-trial
/// collectors, both in trial order.
#[derive(Debug)]
pub struct InstrumentedRun<T> {
    /// One closure result per trial, in trial order.
    pub outputs: Vec<T>,
    /// One collector per trial, in trial order.
    pub collectors: Vec<Collector>,
}

impl<T> InstrumentedRun<T> {
    /// Merges the collectors (in trial order) into an [`ObsReport`].
    #[must_use]
    pub fn report(&self) -> ObsReport {
        ObsReport::merge(&self.collectors)
    }
}

/// Runs `n` trials through `runner` with a fresh [`Collector`] (ring
/// capacity `capacity`) installed around each, and returns outputs and
/// collectors merged back **in trial order** regardless of which worker
/// ran which trial.
///
/// Any collector the trial body itself installed beforehand is restored
/// afterwards, so instrumented campaigns nest inside instrumented callers.
pub fn run_instrumented<T, F>(
    runner: &TrialRunner,
    n: usize,
    capacity: usize,
    f: F,
) -> InstrumentedRun<T>
where
    T: Send,
    F: Fn(Trial) -> T + Sync,
{
    let mut outputs = Vec::with_capacity(n);
    let mut collectors = Vec::with_capacity(n);
    runner.run_observed(
        n,
        |trial| {
            let prev = runtime::install(Collector::with_capacity(trial.index as u64, capacity));
            let out = f(trial);
            // A trial body that stole the collector contributes an empty one.
            let collector =
                runtime::take().unwrap_or_else(|| Collector::with_capacity(trial.index as u64, 0));
            if let Some(p) = prev {
                runtime::install(p);
            }
            (out, collector)
        },
        |_, (out, collector)| {
            outputs.push(out);
            collectors.push(collector);
        },
    );
    InstrumentedRun {
        outputs,
        collectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlashOpKind, ObsEvent};

    fn campaign(threads: usize, trials: usize) -> InstrumentedRun<u64> {
        let runner = TrialRunner::with_threads(42, threads);
        run_instrumented(&runner, trials, 64, |trial| {
            for seg in 0..=trial.index as u32 {
                runtime::emit(ObsEvent::FlashOp {
                    kind: FlashOpKind::EraseSegment,
                    seg,
                });
            }
            runtime::emit(ObsEvent::Verdict { verdict: "genuine" });
            trial.seed
        })
    }

    #[test]
    fn collectors_come_back_in_trial_order() {
        let run = campaign(4, 9);
        let indices: Vec<u64> = run.collectors.iter().map(Collector::trial_index).collect();
        assert_eq!(indices, (0..9).collect::<Vec<u64>>());
        // Trial k erased k+1 segments.
        assert_eq!(
            run.collectors[4]
                .metrics()
                .counter("flash", "erase_segment"),
            5
        );
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let serial = campaign(1, 9);
        let parallel = campaign(8, 9);
        assert_eq!(serial.outputs, parallel.outputs);
        assert_eq!(serial.report(), parallel.report());
        let report = serial.report();
        assert_eq!(report.trials(), 9);
        assert_eq!(report.metrics().counter("verdict", "genuine"), 9);
        // 1 + 2 + ... + 9 segment erases.
        assert_eq!(report.metrics().counter("flash", "erase_segment"), 45);
        assert_eq!(report.per_trial().len(), 9);
    }
}
