//! Per-trial event collection and order-independent metric aggregation.
//!
//! A [`Collector`] belongs to exactly one trial. It stamps every incoming
//! event with a monotone per-trial `op_index`, keeps the newest events in a
//! bounded ring buffer, and folds each event into deterministic counters
//! and histograms ([`Metrics`]). Merging the metrics of many trials is a
//! pointwise addition over `BTreeMap`s — commutative and associative — so
//! an aggregate built from any merge order (and therefore any `--threads`)
//! is identical as long as trials themselves are deterministic.

use std::collections::{BTreeMap, VecDeque};

use crate::event::ObsEvent;

/// Default ring-buffer capacity for trial collectors.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Deterministic counters and histograms.
///
/// Counters are keyed `(group, name)` — e.g. `("flash", "erase_segment")`
/// or `("verdict", "genuine")`. Histograms are keyed
/// `(metric, integer_bucket)` — continuous quantities (µs values) are
/// rounded to the nearest integer bucket at record time so aggregation
/// never adds floats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<(&'static str, &'static str), u64>,
    histograms: BTreeMap<(&'static str, i64), u64>,
}

impl Metrics {
    /// An empty metric set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the `(group, name)` counter.
    pub fn add(&mut self, group: &'static str, name: &'static str, n: u64) {
        *self.counters.entry((group, name)).or_insert(0) += n;
    }

    /// Adds one observation to the `(metric, bucket)` histogram bin.
    pub fn observe(&mut self, metric: &'static str, bucket: i64) {
        *self.histograms.entry((metric, bucket)).or_insert(0) += 1;
    }

    /// The current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, group: &str, name: &str) -> u64 {
        self.counters.get(&(group, name)).copied().unwrap_or(0)
    }

    /// Sum of all counters in a group.
    #[must_use]
    pub fn group_total(&self, group: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((g, _), _)| *g == group)
            .map(|(_, v)| v)
            .sum()
    }

    /// All counters in deterministic (sorted-key) order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, &'static str, u64)> + '_ {
        self.counters.iter().map(|(&(g, n), &v)| (g, n, v))
    }

    /// All histogram bins in deterministic (sorted-key) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, i64, u64)> + '_ {
        self.histograms.iter().map(|(&(m, b), &v)| (m, b, v))
    }

    /// Pointwise-adds `other` into `self`.
    ///
    /// This is the merge operation trial aggregation uses; it is
    /// commutative and associative, which is what makes the aggregated
    /// report independent of worker scheduling.
    pub fn absorb(&mut self, other: &Metrics) {
        for (&key, &v) in &other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (&key, &v) in &other.histograms {
            *self.histograms.entry(key).or_insert(0) += v;
        }
    }

    /// True when no counter or histogram bin has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// Rounds a microsecond quantity to its integer histogram bucket.
fn us_bucket(us: f64) -> i64 {
    us.round() as i64
}

/// A bounded, per-trial event collector.
#[derive(Debug, Clone)]
pub struct Collector {
    trial_index: u64,
    capacity: usize,
    next_op: u64,
    events: VecDeque<(u64, ObsEvent)>,
    dropped: u64,
    metrics: Metrics,
}

impl Collector {
    /// A collector with the default ring capacity.
    #[must_use]
    pub fn new(trial_index: u64) -> Self {
        Self::with_capacity(trial_index, DEFAULT_EVENT_CAPACITY)
    }

    /// A collector keeping at most `capacity` events (the newest win; a
    /// `dropped` counter records evictions). `capacity == 0` keeps metrics
    /// only.
    #[must_use]
    pub fn with_capacity(trial_index: u64, capacity: usize) -> Self {
        Self {
            trial_index,
            capacity,
            next_op: 0,
            events: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
            metrics: Metrics::new(),
        }
    }

    /// Records one event: stamps the op index, folds the event into the
    /// metrics, and appends it to the ring (evicting the oldest if full).
    pub fn record(&mut self, event: ObsEvent) {
        let op = self.next_op;
        self.next_op += 1;
        self.fold(&event);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((op, event));
    }

    fn fold(&mut self, event: &ObsEvent) {
        match *event {
            ObsEvent::FlashOp { kind, .. } => self.metrics.add("flash", kind.name(), 1),
            ObsEvent::PartialErase { t_pe_us, .. } => {
                self.metrics.add("flash", "partial_erase", 1);
                self.metrics.observe("t_pe_us", us_bucket(t_pe_us));
            }
            ObsEvent::EraseUntilClean { took_us, .. } => {
                self.metrics.add("flash", "erase_until_clean", 1);
                self.metrics
                    .observe("erase_until_clean_us", us_bucket(took_us));
            }
            ObsEvent::BulkImprint { cycles, .. } => {
                self.metrics.add("flash", "bulk_imprint", 1);
                self.metrics.add("wear", "bulk_cycles", cycles);
            }
            ObsEvent::CellsTouched { kind, cells } => self.metrics.add("cells", kind, cells),
            ObsEvent::SpanEnter { name } => self.metrics.add("span", name, 1),
            ObsEvent::SpanExit { .. } => {}
            ObsEvent::Retry { stage, .. } => self.metrics.add("retry", stage, 1),
            ObsEvent::LadderRung { offset_us, outcome } => {
                self.metrics.add("ladder", outcome, 1);
                self.metrics
                    .observe("ladder_offset_us", us_bucket(offset_us));
            }
            ObsEvent::Resolution { strategy } => self.metrics.add("resolution", strategy, 1),
            ObsEvent::FaultFired { channel, .. } => self.metrics.add("fault", channel, 1),
            ObsEvent::SanitizerViolation { kind, .. } => self.metrics.add("sanitizer", kind, 1),
            ObsEvent::SweepWidth { width_us, points } => {
                self.metrics.add("sweep", "runs", 1);
                self.metrics.add("sweep", "points", u64::from(points));
                self.metrics.observe("sweep_width_us", us_bucket(width_us));
            }
            ObsEvent::Verdict { verdict } => self.metrics.add("verdict", verdict, 1),
        }
    }

    /// The trial this collector belongs to.
    #[must_use]
    pub fn trial_index(&self) -> u64 {
        self.trial_index
    }

    /// Total events this trial emitted (including evicted ones).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.next_op
    }

    /// Events evicted from (or refused by) the ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained `(op_index, event)` timeline, oldest first.
    pub fn events(&self) -> impl Iterator<Item = (u64, &ObsEvent)> + '_ {
        self.events.iter().map(|(op, e)| (*op, e))
    }

    /// This trial's folded metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlashOpKind;

    fn erase(seg: u32) -> ObsEvent {
        ObsEvent::FlashOp {
            kind: FlashOpKind::EraseSegment,
            seg,
        }
    }

    #[test]
    fn op_indices_are_monotone_and_metrics_fold() {
        let mut c = Collector::new(7);
        c.record(erase(0));
        c.record(ObsEvent::PartialErase {
            seg: 0,
            t_pe_us: 27.6,
        });
        c.record(ObsEvent::Verdict { verdict: "genuine" });
        let ops: Vec<u64> = c.events().map(|(op, _)| op).collect();
        assert_eq!(ops, vec![0, 1, 2]);
        assert_eq!(c.metrics().counter("flash", "erase_segment"), 1);
        assert_eq!(c.metrics().counter("flash", "partial_erase"), 1);
        assert_eq!(c.metrics().counter("verdict", "genuine"), 1);
        // 27.6 µs rounds into the 28 µs bucket.
        assert_eq!(
            c.metrics()
                .histograms()
                .find(|(m, _, _)| *m == "t_pe_us")
                .map(|(_, b, n)| (b, n)),
            Some((28, 1))
        );
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut c = Collector::with_capacity(0, 2);
        for seg in 0..5 {
            c.record(erase(seg));
        }
        let kept: Vec<u64> = c.events().map(|(op, _)| op).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(c.dropped(), 3);
        assert_eq!(c.ops(), 5);
        // Metrics still saw everything.
        assert_eq!(c.metrics().counter("flash", "erase_segment"), 5);
    }

    #[test]
    fn zero_capacity_keeps_metrics_only() {
        let mut c = Collector::with_capacity(0, 0);
        c.record(erase(0));
        assert_eq!(c.events().count(), 0);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.metrics().counter("flash", "erase_segment"), 1);
    }

    #[test]
    fn absorb_is_a_pointwise_sum() {
        let mut a = Metrics::new();
        a.add("flash", "erase_segment", 2);
        a.observe("t_pe_us", 28);
        let mut b = Metrics::new();
        b.add("flash", "erase_segment", 3);
        b.add("verdict", "genuine", 1);
        b.observe("t_pe_us", 28);
        b.observe("t_pe_us", 32);
        a.absorb(&b);
        assert_eq!(a.counter("flash", "erase_segment"), 5);
        assert_eq!(a.counter("verdict", "genuine"), 1);
        let bins: Vec<_> = a.histograms().collect();
        assert_eq!(bins, vec![("t_pe_us", 28, 2), ("t_pe_us", 32, 1)]);
    }
}
