//! Service-telemetry registry: typed gauges, counters, and power-of-two
//! histograms whose snapshots merge commutatively.
//!
//! [`Snapshot`] is the service-layer sibling of
//! [`Metrics`](crate::Metrics): where `Metrics` aggregates one trial's
//! event stream, a `Snapshot` aggregates *operational* telemetry — queue
//! depths, batch occupancy, per-request virtual latency — across shards.
//! Every series is keyed `(metric name, shard)` in a `BTreeMap`, and
//! [`Snapshot::merge`] is commutative and associative (maximum for gauges,
//! pointwise addition for counters and histograms), so a snapshot built
//! from shard snapshots is identical in any merge order and therefore at
//! any `--threads` count.
//!
//! Nothing here reads wall-clock time. Latency is *virtual*: a request's
//! cost in flash-op cost units, computed by [`virtual_latency_of`] as the
//! weighted sum of the flash-operation counters its collector folded — a
//! pure function of the work performed, byte-identical across machines and
//! schedules.
//!
//! [`Snapshot::expose`] renders the whole snapshot in a Prometheus-style
//! text exposition format (`# TYPE` headers, `name{shard="3"} value`
//! sample lines, cumulative `_bucket`/`_sum`/`_count` histogram series) so
//! external tooling — and the in-repo `obs_top` bin — can consume campaign
//! telemetry without bespoke parsers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::collector::Metrics;

/// Shard key for snapshot series that describe the whole service rather
/// than one shard. Rendered without a `shard` label by
/// [`Snapshot::expose`].
pub const GLOBAL: u64 = u64::MAX;

/// Virtual cost, in flash-op cost units, of each flash-operation counter
/// the collectors fold (see [`virtual_latency_of`]). Weights follow the
/// relative magnitudes of the simulated MSP430 timings — erases dominate,
/// block operations amortize, word operations are cheap — but the unit is
/// deliberately abstract: only ratios and determinism matter.
pub const FLASH_OP_COSTS: [(&str, u64); 10] = [
    ("bulk_imprint", 1_000),
    ("erase_segment", 400),
    ("erase_until_clean", 600),
    ("mass_erase", 800),
    ("partial_erase", 40),
    ("partial_program", 4),
    ("program_block", 32),
    ("program_word", 4),
    ("read_block", 8),
    ("read_word", 1),
];

/// Cost of one flash operation named `name` (1 for unknown names, so new
/// operation classes degrade to op counting instead of vanishing).
#[must_use]
pub fn flash_op_cost(name: &str) -> u64 {
    FLASH_OP_COSTS
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(1, |&(_, c)| c)
}

/// A request's virtual latency: the weighted sum of the `flash` counter
/// group in `metrics`, in flash-op cost units. A pure function of the
/// flash work the request performed — no wall clock anywhere.
#[must_use]
pub fn virtual_latency_of(metrics: &Metrics) -> u64 {
    metrics
        .counters()
        .filter(|(group, _, _)| *group == "flash")
        .map(|(_, name, n)| n * flash_op_cost(name))
        .sum()
}

/// The histogram bucket (inclusive upper bound) an observation lands in:
/// the next power of two at or above the value, with 0 mapped into the
/// 1-bucket so every observation is counted.
#[must_use]
pub fn bucket_of(value: u64) -> u64 {
    value.max(1).next_power_of_two()
}

/// A merge-commutative telemetry snapshot.
///
/// Three series families, all keyed by `(metric name, shard)`:
///
/// * **gauges** — high-watermark levels (queue depth, batch occupancy);
///   merged with `max`, which is commutative, associative, and idempotent;
/// * **counters** — monotone totals (requests, probes); merged by addition;
/// * **histograms** — power-of-two-bucketed distributions (virtual
///   latency, ladder depth) carrying per-series observation counts and
///   sums; merged by pointwise addition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    gauges: BTreeMap<(&'static str, u64), u64>,
    counters: BTreeMap<(&'static str, u64), u64>,
    hist_buckets: BTreeMap<(&'static str, u64, u64), u64>,
    hist_counts: BTreeMap<(&'static str, u64), u64>,
    hist_sums: BTreeMap<(&'static str, u64), u64>,
}

impl Snapshot {
    /// An empty snapshot (the merge identity).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the `(name, shard)` gauge to at least `value` (gauges are
    /// high watermarks; set-to-max keeps the merge idempotent).
    pub fn gauge_max(&mut self, name: &'static str, shard: u64, value: u64) {
        let slot = self.gauges.entry((name, shard)).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Adds `n` to the `(name, shard)` counter.
    pub fn add(&mut self, name: &'static str, shard: u64, n: u64) {
        *self.counters.entry((name, shard)).or_insert(0) += n;
    }

    /// Records one observation into the `(name, shard)` histogram.
    pub fn observe(&mut self, name: &'static str, shard: u64, value: u64) {
        *self
            .hist_buckets
            .entry((name, shard, bucket_of(value)))
            .or_insert(0) += 1;
        *self.hist_counts.entry((name, shard)).or_insert(0) += 1;
        *self.hist_sums.entry((name, shard)).or_insert(0) += value;
    }

    /// The current value of a gauge (0 if never set).
    #[must_use]
    pub fn gauge(&self, name: &str, shard: u64) -> u64 {
        self.gauges.get(&(name, shard)).copied().unwrap_or(0)
    }

    /// The current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str, shard: u64) -> u64 {
        self.counters.get(&(name, shard)).copied().unwrap_or(0)
    }

    /// Observations recorded into a histogram (0 if never touched).
    #[must_use]
    pub fn histogram_count(&self, name: &str, shard: u64) -> u64 {
        self.hist_counts.get(&(name, shard)).copied().unwrap_or(0)
    }

    /// Sum of all values observed into a histogram (0 if never touched).
    #[must_use]
    pub fn histogram_sum(&self, name: &str, shard: u64) -> u64 {
        self.hist_sums.get(&(name, shard)).copied().unwrap_or(0)
    }

    /// All gauges as `(name, shard, value)` in sorted order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.gauges.iter().map(|(&(n, s), &v)| (n, s, v))
    }

    /// All counters as `(name, shard, value)` in sorted order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.counters.iter().map(|(&(n, s), &v)| (n, s, v))
    }

    /// All histogram buckets as `(name, shard, bucket_upper, count)` in
    /// sorted order.
    pub fn histogram_buckets(&self) -> impl Iterator<Item = (&'static str, u64, u64, u64)> + '_ {
        self.hist_buckets
            .iter()
            .map(|(&(n, s, b), &v)| (n, s, b, v))
    }

    /// Pointwise-merges `other` into `self`: `max` for gauges, addition
    /// everywhere else. Commutative and associative — shard snapshots
    /// merge to the same aggregate in any order, which is what makes the
    /// exposed telemetry independent of `--threads`.
    pub fn merge(&mut self, other: &Self) {
        for (&key, &v) in &other.gauges {
            let slot = self.gauges.entry(key).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (&key, &v) in &other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (&key, &v) in &other.hist_buckets {
            *self.hist_buckets.entry(key).or_insert(0) += v;
        }
        for (&key, &v) in &other.hist_counts {
            *self.hist_counts.entry(key).or_insert(0) += v;
        }
        for (&key, &v) in &other.hist_sums {
            *self.hist_sums.entry(key).or_insert(0) += v;
        }
    }

    /// True when no series has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gauges.is_empty() && self.counters.is_empty() && self.hist_counts.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `# TYPE` header per metric name, `name{shard="3"} value`
    /// sample lines ([`GLOBAL`] series carry no label), histograms as
    /// cumulative `_bucket` series with a closing `le="+Inf"` bucket plus
    /// `_sum` and `_count`. Iteration order is `BTreeMap` order, so the
    /// output is byte-identical for equal snapshots.
    #[must_use]
    pub fn expose(&self) -> String {
        let mut out = String::new();
        render_family(&mut out, "gauge", &self.gauges);
        render_family(&mut out, "counter", &self.counters);
        let mut last_name = "";
        for (&(name, shard), &count) in &self.hist_counts {
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = name;
            }
            let mut cumulative = 0u64;
            for (&(bname, bshard, bucket), &n) in &self.hist_buckets {
                if bname != name || bshard != shard {
                    continue;
                }
                cumulative += n;
                let _ = match shard {
                    GLOBAL => writeln!(out, "{name}_bucket{{le=\"{bucket}\"}} {cumulative}"),
                    _ => writeln!(
                        out,
                        "{name}_bucket{{shard=\"{shard}\",le=\"{bucket}\"}} {cumulative}"
                    ),
                };
            }
            let sum = self.histogram_sum(name, shard);
            let _ = match shard {
                GLOBAL => writeln!(
                    out,
                    "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_sum {sum}\n{name}_count {count}"
                ),
                _ => writeln!(
                    out,
                    "{name}_bucket{{shard=\"{shard}\",le=\"+Inf\"}} {count}\n\
                     {name}_sum{{shard=\"{shard}\"}} {sum}\n\
                     {name}_count{{shard=\"{shard}\"}} {count}"
                ),
            };
        }
        out
    }
}

/// Renders one flat (gauge or counter) series family.
fn render_family(out: &mut String, kind: &str, series: &BTreeMap<(&'static str, u64), u64>) {
    let mut last_name = "";
    for (&(name, shard), &value) in series {
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_name = name;
        }
        let _ = match shard {
            GLOBAL => writeln!(out, "{name} {value}"),
            _ => writeln!(out, "{name}{{shard=\"{shard}\"}} {value}"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.gauge_max("service_queue_depth", 0, 3);
        s.gauge_max("service_queue_depth", 1, 7);
        s.gauge_max("service_batch_occupancy", GLOBAL, 16);
        s.add("service_requests_total", 0, 9);
        s.observe("service_virtual_latency_ops", 0, 130);
        s.observe("service_virtual_latency_ops", 0, 130);
        s.observe("service_virtual_latency_ops", 0, 3);
        s
    }

    #[test]
    fn buckets_are_powers_of_two_and_zero_counts() {
        assert_eq!(bucket_of(0), 1);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 4);
        assert_eq!(bucket_of(130), 256);
        assert_eq!(bucket_of(1 << 40), 1 << 40);
    }

    #[test]
    fn gauges_are_high_watermarks() {
        let mut s = Snapshot::new();
        s.gauge_max("q", 0, 5);
        s.gauge_max("q", 0, 3);
        assert_eq!(s.gauge("q", 0), 5);
        s.gauge_max("q", 0, 9);
        assert_eq!(s.gauge("q", 0), 9);
    }

    #[test]
    fn histogram_tracks_count_sum_and_buckets() {
        let s = sample();
        assert_eq!(s.histogram_count("service_virtual_latency_ops", 0), 3);
        assert_eq!(s.histogram_sum("service_virtual_latency_ops", 0), 263);
        let buckets: Vec<_> = s.histogram_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                ("service_virtual_latency_ops", 0, 4, 1),
                ("service_virtual_latency_ops", 0, 256, 2),
            ]
        );
    }

    #[test]
    fn merge_is_commutative_and_max_for_gauges() {
        let mut a = Snapshot::new();
        a.gauge_max("q", 0, 5);
        a.add("n", 0, 2);
        a.observe("h", 0, 10);
        let mut b = Snapshot::new();
        b.gauge_max("q", 0, 3);
        b.add("n", 0, 1);
        b.observe("h", 0, 100);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.gauge("q", 0), 5);
        assert_eq!(ab.counter("n", 0), 3);
        assert_eq!(ab.histogram_count("h", 0), 2);
        assert_eq!(ab.histogram_sum("h", 0), 110);
    }

    #[test]
    fn empty_is_the_merge_identity() {
        let s = sample();
        let mut merged = s.clone();
        merged.merge(&Snapshot::new());
        assert_eq!(merged, s);
        assert!(Snapshot::new().is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn exposition_renders_types_labels_and_cumulative_buckets() {
        let text = sample().expose();
        // Gauges first, GLOBAL series unlabeled, shards labeled.
        assert!(text.contains("# TYPE service_batch_occupancy gauge\n"));
        assert!(text.contains("service_batch_occupancy 16\n"));
        assert!(text.contains("service_queue_depth{shard=\"0\"} 3\n"));
        assert!(text.contains("service_queue_depth{shard=\"1\"} 7\n"));
        // One TYPE header per metric name, not per series.
        assert_eq!(text.matches("# TYPE service_queue_depth gauge").count(), 1);
        assert!(text.contains("# TYPE service_requests_total counter\n"));
        // Histogram: cumulative buckets, +Inf closes at the count.
        assert!(text.contains("service_virtual_latency_ops_bucket{shard=\"0\",le=\"4\"} 1\n"));
        assert!(text.contains("service_virtual_latency_ops_bucket{shard=\"0\",le=\"256\"} 3\n"));
        assert!(text.contains("service_virtual_latency_ops_bucket{shard=\"0\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("service_virtual_latency_ops_sum{shard=\"0\"} 263\n"));
        assert!(text.contains("service_virtual_latency_ops_count{shard=\"0\"} 3\n"));
    }

    #[test]
    fn exposition_is_deterministic_for_equal_snapshots() {
        assert_eq!(sample().expose(), sample().expose());
    }

    #[test]
    fn virtual_latency_weights_flash_ops_only() {
        let mut m = Metrics::new();
        m.add("flash", "read_word", 3);
        m.add("flash", "erase_segment", 2);
        m.add("flash", "some_future_op", 5);
        m.add("wear", "bulk_cycles", 1_000_000); // not a flash op: ignored
        assert_eq!(virtual_latency_of(&m), 3 + 2 * 400 + 5);
        assert_eq!(virtual_latency_of(&Metrics::new()), 0);
    }

    #[test]
    fn flash_op_cost_table_is_sorted_and_total() {
        let names: Vec<&str> = FLASH_OP_COSTS.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "cost table must stay sorted by name");
        assert_eq!(flash_op_cost("read_word"), 1);
        assert_eq!(flash_op_cost("never_heard_of_it"), 1);
    }
}
