#![forbid(unsafe_code)]
//! Deterministic observability for the Flashmark stack.
//!
//! The paper's premise is making invisible physical state (oxide wear)
//! digitally observable; this crate does the same for the reproduction's
//! own runtime state. Instrumented crates emit typed [`ObsEvent`]s through
//! a thread-local [`emit`] hook that costs one flag check when disabled;
//! trial campaigns install one bounded [`Collector`] per trial and merge
//! them **in trial order**, so every aggregated artifact is byte-identical
//! at any `--threads` count.
//!
//! Determinism quarantine rule: nothing in this crate touches wall-clock
//! time (`std::time` is banned here by `cargo xtask lint`). Timings are a
//! bench-layer concern and live in the separate, non-gated
//! `results/obs_timings.json`.
//!
//! # Example
//!
//! ```
//! use flashmark_obs as obs;
//!
//! obs::install(obs::Collector::new(0));
//! {
//!     let _span = obs::span("extract");
//!     obs::emit(obs::ObsEvent::FlashOp {
//!         kind: obs::FlashOpKind::EraseSegment,
//!         seg: 3,
//!     });
//! }
//! let collector = obs::take().unwrap();
//! assert_eq!(collector.metrics().counter("flash", "erase_segment"), 1);
//! ```

pub mod collector;
pub mod event;
pub mod metrics;
pub mod report;
pub mod runtime;

pub use collector::{Collector, Metrics, DEFAULT_EVENT_CAPACITY};
pub use event::{FlashOpKind, ObsEvent};
pub use metrics::{bucket_of, flash_op_cost, virtual_latency_of, Snapshot, FLASH_OP_COSTS, GLOBAL};
pub use report::{run_instrumented, InstrumentedRun, ObsReport, TrialSummary};
pub use runtime::{emit, install, is_enabled, span, take, Span};
