//! The thread-local emission runtime.
//!
//! Instrumented crates call [`emit`] unconditionally; it costs one
//! thread-local flag read and a predictable branch when no collector is
//! installed (the same armed-flag pattern the NOR controller's trace
//! buffer uses). Installing a [`Collector`] arms the current thread only —
//! the `TrialRunner` integration installs one per trial on whichever
//! worker runs it, so parallel trials never share a collector and no
//! locking is involved.

use std::cell::{Cell, RefCell};

use crate::collector::Collector;
use crate::event::ObsEvent;

thread_local! {
    /// Fast-path flag mirroring `CURRENT.is_some()`.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    /// The collector of the trial currently running on this thread.
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// True when a collector is installed on this thread.
#[must_use]
pub fn is_enabled() -> bool {
    ARMED.with(Cell::get)
}

/// Emits one event into the current thread's collector, if any.
///
/// With no collector installed this is a single branch on a thread-local
/// flag — cheap enough to leave in every flash-operation hot path.
#[inline]
pub fn emit(event: ObsEvent) {
    if ARMED.with(Cell::get) {
        emit_armed(event);
    }
}

#[cold]
fn emit_armed(event: ObsEvent) {
    CURRENT.with(|c| {
        if let Some(collector) = c.borrow_mut().as_mut() {
            collector.record(event);
        }
    });
}

/// Installs `collector` on this thread, returning the previously
/// installed one (so nested instrumented scopes can restore it).
pub fn install(collector: Collector) -> Option<Collector> {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(collector));
    ARMED.with(|a| a.set(true));
    prev
}

/// Removes and returns this thread's collector, disarming emission.
pub fn take() -> Option<Collector> {
    let taken = CURRENT.with(|c| c.borrow_mut().take());
    ARMED.with(|a| a.set(false));
    taken
}

/// An RAII phase marker: emits [`ObsEvent::SpanEnter`] on creation and
/// [`ObsEvent::SpanExit`] when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
}

impl Drop for Span {
    fn drop(&mut self) {
        emit(ObsEvent::SpanExit { name: self.name });
    }
}

/// Opens a named phase span: `let _span = obs::span("extract");`.
///
/// Both edges are ordinary events, so they are no-ops when no collector
/// is installed and land in the per-trial timeline when one is.
#[must_use = "a span closes when dropped; bind it to a variable for the phase's duration"]
pub fn span(name: &'static str) -> Span {
    emit(ObsEvent::SpanEnter { name });
    Span { name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlashOpKind;

    fn erase() -> ObsEvent {
        ObsEvent::FlashOp {
            kind: FlashOpKind::EraseSegment,
            seg: 0,
        }
    }

    #[test]
    fn emit_without_collector_is_a_no_op() {
        assert!(!is_enabled());
        emit(erase());
        assert!(take().is_none());
    }

    #[test]
    fn install_emit_take_roundtrip() {
        assert!(install(Collector::new(3)).is_none());
        assert!(is_enabled());
        emit(erase());
        {
            let _span = span("phase");
            emit(erase());
        }
        let c = take().expect("collector was installed");
        assert!(!is_enabled());
        assert_eq!(c.trial_index(), 3);
        assert_eq!(c.metrics().counter("flash", "erase_segment"), 2);
        assert_eq!(c.metrics().counter("span", "phase"), 1);
        let kinds: Vec<&str> = c.events().map(|(_, e)| e.kind_name()).collect();
        assert_eq!(
            kinds,
            vec!["flash_op", "span_enter", "flash_op", "span_exit"]
        );
    }

    #[test]
    fn install_returns_the_previous_collector() {
        assert!(install(Collector::new(1)).is_none());
        emit(erase());
        let prev = install(Collector::new(2)).expect("first collector returned");
        assert_eq!(prev.trial_index(), 1);
        assert_eq!(prev.metrics().counter("flash", "erase_segment"), 1);
        let c = take().expect("second collector present");
        assert_eq!(c.trial_index(), 2);
    }
}
