//! Property tests of the aggregation laws the observability layer rests
//! on: merging per-trial [`Metrics`] is order-independent, so the merged
//! report cannot depend on which worker thread finished first — and the
//! same holds for the service-telemetry [`Snapshot`], whose gauges merge
//! by maximum rather than addition.

use proptest::prelude::*;

use flashmark_obs::{Metrics, Snapshot, GLOBAL};

const GROUPS: [&str; 4] = ["flash", "retry", "verdict", "fault"];
const NAMES: [&str; 4] = ["read_word", "erase_segment", "genuine", "read_flips"];
const METRICS: [&str; 3] = ["t_pe_us", "ladder_offset_us", "sweep_width_us"];

/// Builds one trial's metrics from an encoded operation list. Each `u64`
/// decodes to either a counter add or a histogram observation, so the
/// proptest strategy stays a plain integer vector.
fn metrics_from_ops(ops: &[u64]) -> Metrics {
    let mut m = Metrics::new();
    for &op in ops {
        if op % 2 == 0 {
            let group = GROUPS[(op >> 1) as usize % GROUPS.len()];
            let name = NAMES[(op >> 3) as usize % NAMES.len()];
            m.add(group, name, op >> 5 & 0xF);
        } else {
            let metric = METRICS[(op >> 1) as usize % METRICS.len()];
            // Buckets include negative values (ladder offsets below the
            // recipe window).
            let bucket = ((op >> 3) as i64 % 101) - 50;
            m.observe(metric, bucket);
        }
    }
    m
}

/// Splits the flat op list into per-trial chunks and returns each trial's
/// folded metrics.
fn trials(ops: &[u64], chunk: usize) -> Vec<Metrics> {
    ops.chunks(chunk.max(1)).map(metrics_from_ops).collect()
}

const SNAPSHOT_NAMES: [&str; 3] = [
    "service_queue_depth",
    "service_requests_total",
    "service_virtual_latency_ops",
];

/// Builds one shard's telemetry snapshot from an encoded operation list:
/// each `u64` decodes to a gauge raise, a counter add, or a histogram
/// observation over a small name × shard space (including [`GLOBAL`]).
fn snapshot_from_ops(ops: &[u64]) -> Snapshot {
    let mut s = Snapshot::new();
    for &op in ops {
        let name = SNAPSHOT_NAMES[(op >> 2) as usize % SNAPSHOT_NAMES.len()];
        let shard = match (op >> 4) % 4 {
            3 => GLOBAL,
            shard => shard,
        };
        let value = op >> 6 & 0xFFF;
        match op % 3 {
            0 => s.gauge_max(name, shard, value),
            1 => s.add(name, shard, value),
            _ => s.observe(name, shard, value),
        }
    }
    s
}

/// Splits the flat op list into per-shard snapshots.
fn shards(ops: &[u64], chunk: usize) -> Vec<Snapshot> {
    ops.chunks(chunk.max(1)).map(snapshot_from_ops).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward merge, reverse merge, and a two-phase tree merge of the
    /// same per-trial metrics all agree — absorb is commutative and
    /// associative.
    #[test]
    fn metric_merge_is_order_independent(
        ops in collection::vec(any::<u64>(), 0..200),
        chunk in 1usize..17,
    ) {
        let per_trial = trials(&ops, chunk);

        let mut forward = Metrics::new();
        for m in &per_trial {
            forward.absorb(m);
        }

        let mut reverse = Metrics::new();
        for m in per_trial.iter().rev() {
            reverse.absorb(m);
        }

        // Tree merge: pair adjacent trials first, then fold the pairs.
        let mut tree = Metrics::new();
        for pair in per_trial.chunks(2) {
            let mut partial = Metrics::new();
            for m in pair {
                partial.absorb(m);
            }
            tree.absorb(&partial);
        }

        prop_assert_eq!(&forward, &reverse);
        prop_assert_eq!(&forward, &tree);
    }

    /// `group_total` distributes over `absorb`: the merged total of any
    /// counter group equals the sum of per-trial totals. The provenance
    /// service derives its per-request retry-ladder depth and transient
    /// retry count from `group_total("ladder")` / `group_total("retry")`,
    /// so this is what keeps those registry histograms shard-independent.
    #[test]
    fn group_totals_distribute_over_merge(
        ops in collection::vec(any::<u64>(), 0..200),
        chunk in 1usize..17,
    ) {
        let per_trial = trials(&ops, chunk);
        let mut merged = Metrics::new();
        for m in &per_trial {
            merged.absorb(m);
        }
        for group in GROUPS {
            let summed: u64 = per_trial.iter().map(|m| m.group_total(group)).sum();
            prop_assert_eq!(merged.group_total(group), summed);
        }
    }

    /// Absorbing an empty metric set is a no-op in either direction.
    #[test]
    fn empty_is_the_merge_identity(ops in collection::vec(any::<u64>(), 0..100)) {
        let m = metrics_from_ops(&ops);
        let mut left = Metrics::new();
        left.absorb(&m);
        let mut right = m.clone();
        right.absorb(&Metrics::new());
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    /// Telemetry snapshots merge commutatively and associatively —
    /// forward, reverse, and tree merges of the same per-shard snapshots
    /// agree, and so do their text expositions. This is what makes the
    /// service's exposed telemetry independent of `--threads`.
    #[test]
    fn snapshot_merge_is_order_independent(
        ops in collection::vec(any::<u64>(), 0..200),
        chunk in 1usize..17,
    ) {
        let per_shard = shards(&ops, chunk);

        let mut forward = Snapshot::new();
        for s in &per_shard {
            forward.merge(s);
        }

        let mut reverse = Snapshot::new();
        for s in per_shard.iter().rev() {
            reverse.merge(s);
        }

        let mut tree = Snapshot::new();
        for pair in per_shard.chunks(2) {
            let mut partial = Snapshot::new();
            for s in pair {
                partial.merge(s);
            }
            tree.merge(&partial);
        }

        prop_assert_eq!(&forward, &reverse);
        prop_assert_eq!(&forward, &tree);
        prop_assert_eq!(forward.expose(), reverse.expose());
    }

    /// Merging an empty snapshot is a no-op, and merging a snapshot into
    /// itself leaves gauges unchanged (max is idempotent) while doubling
    /// counters and histogram counts.
    #[test]
    fn snapshot_empty_identity_and_gauge_idempotence(
        ops in collection::vec(any::<u64>(), 0..100),
    ) {
        let s = snapshot_from_ops(&ops);
        let mut left = Snapshot::new();
        left.merge(&s);
        let mut right = s.clone();
        right.merge(&Snapshot::new());
        prop_assert_eq!(&left, &s);
        prop_assert_eq!(&right, &s);

        let mut doubled = s.clone();
        doubled.merge(&s);
        for (name, shard, value) in s.gauges() {
            prop_assert_eq!(doubled.gauge(name, shard), value);
        }
        for (name, shard, value) in s.counters() {
            prop_assert_eq!(doubled.counter(name, shard), 2 * value);
        }
    }
}
