//! Property-based tests of the Flashmark codec and layout layers.

use proptest::prelude::*;

use flashmark_core::{ReplicaLayout, SegmentLayout, TestStatus, Watermark, WatermarkRecord};
use flashmark_nor::FlashGeometry;

fn arb_status() -> impl Strategy<Value = TestStatus> {
    prop_oneof![Just(TestStatus::Accept), Just(TestStatus::Reject)]
}

proptest! {
    /// Watermark bytes → bits → bytes round trip.
    #[test]
    fn watermark_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
        let wm = Watermark::from_bytes(&bytes).unwrap();
        prop_assert_eq!(wm.to_bytes(), bytes);
        prop_assert_eq!(wm.ones() + wm.zeros(), wm.len());
    }

    /// Manchester balancing always yields exactly half ones and inverts.
    #[test]
    fn balanced_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..128)) {
        let wm = Watermark::from_bits(bits.clone()).unwrap();
        let bal = wm.balanced();
        prop_assert_eq!(bal.ones() * 2, bal.len());
        let unbalanced = bal.unbalanced().unwrap();
        prop_assert_eq!(unbalanced.bits(), &bits[..]);
    }

    /// Records round-trip for arbitrary field values.
    #[test]
    fn record_roundtrip(
        manufacturer_id in any::<u16>(),
        die_id in any::<u64>(),
        speed_grade in any::<u8>(),
        status in arb_status(),
        year_week in any::<u16>(),
    ) {
        let r = WatermarkRecord { manufacturer_id, die_id, speed_grade, status, year_week };
        let wm = r.to_watermark();
        prop_assert_eq!(WatermarkRecord::from_watermark(&wm).unwrap(), r);
    }

    /// Any single-bit corruption of a record is caught by the signature.
    #[test]
    fn record_crc_catches_any_flip(die_id in any::<u64>(), flip in 0usize..128) {
        let r = WatermarkRecord {
            manufacturer_id: 0x7C01,
            die_id,
            speed_grade: 1,
            status: TestStatus::Accept,
            year_week: 2004,
        };
        let mut bits = r.to_watermark().bits().to_vec();
        bits[flip] = !bits[flip];
        let wm = Watermark::from_bits(bits).unwrap();
        prop_assert!(WatermarkRecord::from_watermark(&wm).is_err());
    }

    /// Layout channel encode/slice round-trips under both layouts.
    #[test]
    fn layout_roundtrip(
        data in proptest::collection::vec(any::<bool>(), 1..300),
        k in 0usize..3,
        interleaved in any::<bool>(),
    ) {
        let k = 2 * k + 1;
        let layout = if interleaved { ReplicaLayout::Interleaved } else { ReplicaLayout::Contiguous };
        let l = SegmentLayout::new(data.len(), k, layout).unwrap();
        let channel = l.encode_channel(&data).unwrap();
        prop_assert_eq!(channel.len(), data.len() * k);
        // slice_channel returns the de-interleaved, replica-major channel.
        let mut segment = channel.clone();
        segment.extend(std::iter::repeat_n(true, 64));
        let sliced = l.slice_channel(&segment).unwrap();
        for r in 0..k {
            prop_assert_eq!(&sliced[r * data.len()..(r + 1) * data.len()], &data[..]);
        }
    }

    /// Pattern words place exactly the channel's zero bits.
    #[test]
    fn pattern_zero_count_matches(data in proptest::collection::vec(any::<bool>(), 1..256), k in 0usize..3) {
        let k = 2 * k + 1;
        let g = FlashGeometry::single_bank(1);
        let l = SegmentLayout::new(data.len(), k, ReplicaLayout::Contiguous).unwrap();
        prop_assume!(l.check_fits(g).is_ok());
        let words = l.pattern_words(&data, g).unwrap();
        let zeros_in_words: u32 = words.iter().map(|w| w.count_zeros()).sum();
        let zeros_expected = (data.iter().filter(|&&b| !b).count() * k) as u32;
        prop_assert_eq!(zeros_in_words, zeros_expected);
    }
}
