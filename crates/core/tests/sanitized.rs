//! The reference Flashmark flows are flash-protocol clean: imprinting,
//! extraction, and characterization run under the sanitizer without a
//! single violation, and the sanitized entry points return the same values
//! as the unsanitized ones.

use flashmark_core::{
    characterize_sanitized, extract_sanitized, imprint_sanitized, imprint_via_cycles_sanitized,
    run_sanitized, Extractor, FlashmarkConfig, Imprinter, SweepSpec, Watermark,
};
use flashmark_nor::{
    FlashController, FlashGeometry, FlashInterface, FlashTimings, SegmentAddr, WordAddr,
};
use flashmark_physics::{Micros, PhysicsParams};
use flashmark_sanitizer::ViolationKind;

fn flash(seed: u64) -> FlashController {
    FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(8),
        FlashTimings::msp430(),
        seed,
    )
}

fn cfg(n_pe: u64) -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(n_pe)
        .replicas(3)
        .t_pew(Micros::new(28.0))
        .build()
        .unwrap()
}

#[test]
fn imprint_then_extract_is_protocol_clean() {
    let mut f = flash(101);
    let config = cfg(60_000);
    let wm = Watermark::from_ascii("OK").unwrap();
    let seg = SegmentAddr::new(0);

    let imprinted = imprint_sanitized(&config, &mut f, seg, &wm).unwrap();
    assert!(
        imprinted.is_clean(),
        "imprint violated the protocol: {:?}",
        imprinted.violations
    );
    assert_eq!(imprinted.value.cycles, 60_000);

    let extracted = extract_sanitized(&config, &mut f, seg, wm.len()).unwrap();
    assert!(
        extracted.is_clean(),
        "extract violated the protocol: {:?}",
        extracted.violations
    );
    assert_eq!(extracted.value.bits(), wm.bits());
}

#[test]
fn cycle_faithful_imprint_is_protocol_clean() {
    let mut f = flash(102);
    let config = cfg(60);
    let wm = Watermark::from_ascii("C").unwrap();
    let outcome = imprint_via_cycles_sanitized(&config, &mut f, SegmentAddr::new(1), &wm).unwrap();
    assert!(
        outcome.is_clean(),
        "cycle loop violated the protocol: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.value.cycles, 60);
}

#[test]
fn characterization_sweep_is_protocol_clean() {
    let mut f = flash(103);
    let outcome =
        characterize_sanitized(&mut f, SegmentAddr::new(2), &SweepSpec::fig4(), 3).unwrap();
    assert!(
        outcome.is_clean(),
        "sweep violated the protocol: {:?}",
        outcome.violations
    );
    assert!(!outcome.value.points.is_empty());
}

#[test]
fn sanitized_extraction_matches_unsanitized() {
    let config = cfg(60_000);
    let wm = Watermark::from_ascii("EQ").unwrap();
    let seg = SegmentAddr::new(0);

    let mut a = flash(104);
    Imprinter::new(&config).imprint(&mut a, seg, &wm).unwrap();
    let plain = Extractor::new(&config)
        .extract(&mut a, seg, wm.len())
        .unwrap();

    let mut b = flash(104);
    Imprinter::new(&config).imprint(&mut b, seg, &wm).unwrap();
    let sanitized = extract_sanitized(&config, &mut b, seg, wm.len()).unwrap();

    assert_eq!(
        sanitized.value.bits(),
        plain.bits(),
        "sanitizer must not change behavior"
    );
}

#[test]
fn run_sanitized_reports_injected_violations() {
    let mut f = flash(105);
    let w = WordAddr::new(0);
    let (result, violations) = run_sanitized(&mut f, |flash| {
        flash.erase_segment(SegmentAddr::new(0))?;
        flash.program_word(w, 0x1111)?;
        flash.program_word(w, 0x2222) // overprogram
    });
    result.unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kind, ViolationKind::Overprogram { word: w });
    assert!(!violations[0].backtrace.is_empty());
}
