//! Scheme-generic pipeline entry points.
//!
//! These are the high-level flows campaign drivers and services compose,
//! written once against [`WatermarkScheme`] so they run unchanged over NOR
//! tPEW wear, ReRAM forming stress, and intrinsic NAND PUF backends:
//!
//! * [`provision`] — the manufacturer flow: enroll, then imprint.
//! * [`inspect`] — the inspector flow: verify against an enrollment.
//! * [`roundtrip`] — provision then immediately inspect (the basic
//!   genuine-chip sanity flow the contract tests pin).
//!
//! The concrete-NOR entry points that predate the redesign remain as
//! deprecated thin shims ([`provision_nor`], [`inspect_nor`]) so existing
//! callers keep compiling; they delegate to the generic flow over
//! [`NorTpew`](crate::nor_scheme::NorTpew) and are pinned equivalent by
//! test.

use flashmark_nor::{FlashController, SegmentAddr};

use crate::config::FlashmarkConfig;
use crate::nor_scheme::{NorEnrollment, NorTpew, NorTpewParams};
use crate::scheme::{ImprintCost, SchemeError, SchemeVerification, WatermarkScheme};
use crate::watermark::WatermarkRecord;

/// The manufacturer provisioning flow: enroll the chip, then imprint the
/// enrollment's mark. For intrinsic schemes the imprint is a free no-op and
/// the cost comes back zero.
///
/// # Errors
///
/// Backend or parameter errors from either step.
pub fn provision<S: WatermarkScheme>(
    scheme: &S,
    chip: &mut S::Chip,
    params: &S::Params,
) -> Result<(S::Enrollment, ImprintCost), SchemeError> {
    let enrollment = scheme.enroll(chip, params)?;
    let cost = scheme.imprint(chip, params, &enrollment)?;
    Ok((enrollment, cost))
}

/// The inspector flow: verify a chip against its published enrollment.
///
/// # Errors
///
/// Non-transient backend errors only; fault conditions degrade to
/// [`Verdict::Inconclusive`](crate::verify::Verdict::Inconclusive) inside
/// the returned verification.
pub fn inspect<S: WatermarkScheme>(
    scheme: &S,
    chip: &mut S::Chip,
    params: &S::Params,
    enrollment: &S::Enrollment,
) -> Result<SchemeVerification, SchemeError> {
    scheme.verify(chip, params, enrollment)
}

/// Provision then immediately inspect the same chip — the genuine-chip
/// sanity flow. Returns the enrollment, the imprint cost, and the verdict.
///
/// # Errors
///
/// Backend or parameter errors from any step.
pub fn roundtrip<S: WatermarkScheme>(
    scheme: &S,
    chip: &mut S::Chip,
    params: &S::Params,
) -> Result<(S::Enrollment, ImprintCost, SchemeVerification), SchemeError> {
    let (enrollment, cost) = provision(scheme, chip, params)?;
    let verification = inspect(scheme, chip, params, &enrollment)?;
    Ok((enrollment, cost, verification))
}

fn nor_params(
    config: &FlashmarkConfig,
    seg: SegmentAddr,
    manufacturer_id: u16,
    record: WatermarkRecord,
) -> NorTpewParams {
    NorTpewParams {
        config: config.clone(),
        seg,
        manufacturer_id,
        record,
    }
}

/// Pre-redesign concrete-NOR provisioning entry point.
///
/// # Errors
///
/// Same as [`provision`] over [`NorTpew`].
#[deprecated(
    since = "0.1.0",
    note = "use pipeline::provision with the NorTpew scheme"
)]
pub fn provision_nor(
    config: &FlashmarkConfig,
    flash: &mut FlashController,
    seg: SegmentAddr,
    record: WatermarkRecord,
) -> Result<(NorEnrollment, ImprintCost), SchemeError> {
    let params = nor_params(config, seg, record.manufacturer_id, record);
    provision(&NorTpew, flash, &params)
}

/// Pre-redesign concrete-NOR inspection entry point.
///
/// # Errors
///
/// Same as [`inspect`] over [`NorTpew`].
#[deprecated(
    since = "0.1.0",
    note = "use pipeline::inspect with the NorTpew scheme"
)]
pub fn inspect_nor(
    config: &FlashmarkConfig,
    flash: &mut FlashController,
    seg: SegmentAddr,
    expected_manufacturer: u16,
    enrollment: &NorEnrollment,
) -> Result<SchemeVerification, SchemeError> {
    let params = nor_params(config, seg, expected_manufacturer, enrollment.record);
    inspect(&NorTpew, flash, &params, enrollment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Verdict;
    use crate::watermark::TestStatus;
    use flashmark_nor::{FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    fn chip(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            seed,
        )
    }

    fn record(manufacturer_id: u16) -> WatermarkRecord {
        WatermarkRecord {
            manufacturer_id,
            die_id: 99,
            speed_grade: 1,
            status: TestStatus::Accept,
            year_week: 2214,
        }
    }

    fn config() -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(80_000)
            .replicas(7)
            .t_pew(flashmark_physics::Micros::new(28.0))
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_accepts_genuine() {
        let p = NorTpewParams {
            config: config(),
            seg: SegmentAddr::new(0),
            manufacturer_id: 0xAA01,
            record: record(0xAA01),
        };
        let mut c = chip(31);
        let (_, cost, v) = roundtrip(&NorTpew, &mut c, &p).unwrap();
        assert_eq!(v.verdict, Verdict::Genuine);
        assert!(cost.cycles > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_generic_path() {
        let cfg = config();
        let seg = SegmentAddr::new(0);
        let rec = record(0xAB02);

        let mut via_shim = chip(33);
        let (enrollment, cost) = provision_nor(&cfg, &mut via_shim, seg, rec).unwrap();
        let shim_v =
            inspect_nor(&cfg, &mut via_shim, seg, rec.manufacturer_id, &enrollment).unwrap();

        let p = NorTpewParams {
            config: cfg,
            seg,
            manufacturer_id: rec.manufacturer_id,
            record: rec,
        };
        let mut generic = chip(33);
        let (gen_enrollment, gen_cost, gen_v) = roundtrip(&NorTpew, &mut generic, &p).unwrap();

        assert_eq!(enrollment, gen_enrollment);
        assert_eq!(cost, gen_cost);
        assert_eq!(shim_v, gen_v);
    }
}
