//! Watermark payloads and the structured manufacturer record.
//!
//! A [`Watermark`] is just the bit string imprinted into cell wear (bit `1`
//! → "good"/fresh cell, bit `0` → "bad"/stressed cell, Fig. 6 of the paper).
//! [`WatermarkRecord`] is the structured payload the paper describes —
//! manufacturer ID, die ID, speed grade, accept/reject status — with a
//! CRC-16 signature so tampering is detectable, plus an optional balanced
//! (Manchester) encoding that pins the good/bad bit ratio at exactly 50 %.

use flashmark_ecc::crc::crc16;
use flashmark_ecc::{bits_from_bytes, bytes_from_bits};

use crate::error::CoreError;

/// A watermark bit string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Watermark {
    bits: Vec<bool>,
}

impl Watermark {
    /// Builds a watermark from raw bits.
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] if `bits` is empty.
    pub fn from_bits(bits: Vec<bool>) -> Result<Self, CoreError> {
        if bits.is_empty() {
            return Err(CoreError::Watermark("watermark must not be empty"));
        }
        Ok(Self { bits })
    }

    /// Builds a watermark from bytes (LSB-first bit order, matching flash
    /// word layout).
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] if `bytes` is empty.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.is_empty() {
            return Err(CoreError::Watermark("watermark must not be empty"));
        }
        Ok(Self {
            bits: bits_from_bytes(bytes),
        })
    }

    /// Builds a watermark from an ASCII string (the paper's examples use
    /// upper-case ASCII like `"TC"`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] if the string is empty or not ASCII.
    pub fn from_ascii(s: &str) -> Result<Self, CoreError> {
        if !s.is_ascii() {
            return Err(CoreError::Watermark("watermark string must be ASCII"));
        }
        Self::from_bytes(s.as_bytes())
    }

    /// The bits (bit `0` of byte `0` first).
    #[must_use]
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the watermark has no bits (never true for constructed
    /// values).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Packs back into bytes (zero-padded final byte).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        bytes_from_bits(&self.bits)
    }

    /// Reinterprets as an ASCII string if every byte is ASCII.
    #[must_use]
    pub fn to_ascii(&self) -> Option<String> {
        let bytes = self.to_bytes();
        if bytes.is_ascii() {
            String::from_utf8(bytes).ok()
        } else {
            None
        }
    }

    /// Count of 1-bits ("good" cells).
    #[must_use]
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Count of 0-bits ("bad"/stressed cells).
    #[must_use]
    pub fn zeros(&self) -> usize {
        self.len() - self.ones()
    }

    /// Fraction of 1-bits — the small-`tPE` plateau of the paper's Fig. 9.
    #[must_use]
    pub fn ones_fraction(&self) -> f64 {
        self.ones() as f64 / self.len() as f64
    }

    /// Manchester-balances the watermark: each bit becomes `10` (for 1) or
    /// `01` (for 0), so exactly half of the imprinted cells are stressed.
    /// Any tampering (stressing more cells) breaks the balance and is
    /// detectable — the constraint the paper proposes in Section V.
    #[must_use]
    pub fn balanced(&self) -> Watermark {
        let mut bits = Vec::with_capacity(self.bits.len() * 2);
        for &b in &self.bits {
            bits.push(b);
            bits.push(!b);
        }
        Watermark { bits }
    }

    /// Inverts a Manchester balancing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] if the length is odd or a pair is not a
    /// valid `10`/`01` symbol.
    pub fn unbalanced(&self) -> Result<Watermark, CoreError> {
        if !self.bits.len().is_multiple_of(2) {
            return Err(CoreError::Watermark(
                "balanced watermark must have even length",
            ));
        }
        let mut bits = Vec::with_capacity(self.bits.len() / 2);
        for pair in self.bits.chunks_exact(2) {
            if pair[0] == pair[1] {
                return Err(CoreError::Watermark("invalid manchester symbol"));
            }
            bits.push(pair[0]);
        }
        Watermark::from_bits(bits)
    }
}

/// Factory test status imprinted at die sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestStatus {
    /// The die passed die-sort testing.
    Accept,
    /// The die failed; it must never re-enter the supply chain as good.
    Reject,
}

impl TestStatus {
    fn to_byte(self) -> u8 {
        match self {
            Self::Accept => 0xA5,
            Self::Reject => 0x5A,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CoreError> {
        match b {
            0xA5 => Ok(Self::Accept),
            0x5A => Ok(Self::Reject),
            _ => Err(CoreError::Watermark("invalid test status byte")),
        }
    }
}

/// The structured watermark payload the paper proposes manufacturers
/// imprint at die sort: identity, grade, test status, and a CRC-16
/// signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WatermarkRecord {
    /// Manufacturer identifier.
    pub manufacturer_id: u16,
    /// Die identifier (lot/wafer/die packed by the manufacturer).
    pub die_id: u64,
    /// Speed grade of the binned part.
    pub speed_grade: u8,
    /// Die-sort outcome.
    pub status: TestStatus,
    /// Manufacturing date as `(year - 2000) * 100 + week`.
    pub year_week: u16,
}

/// Encoded size of a record in bytes (payload + CRC-16).
pub const RECORD_BYTES: usize = 16;
/// Encoded size of a record in bits.
pub const RECORD_BITS: usize = RECORD_BYTES * 8;

impl WatermarkRecord {
    /// Serializes to the 16-byte wire format (14 payload bytes + CRC-16).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..2].copy_from_slice(&self.manufacturer_id.to_le_bytes());
        out[2..10].copy_from_slice(&self.die_id.to_le_bytes());
        out[10] = self.speed_grade;
        out[11] = self.status.to_byte();
        out[12..14].copy_from_slice(&self.year_week.to_le_bytes());
        let crc = crc16(&out[..14]);
        out[14..16].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses the wire format, verifying the CRC.
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] on a wrong length, CRC mismatch (bit errors
    /// or tampering), or invalid status byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        if bytes.len() != RECORD_BYTES {
            return Err(CoreError::Watermark("record must be exactly 16 bytes"));
        }
        let crc_stored = u16::from_le_bytes([bytes[14], bytes[15]]);
        if crc16(&bytes[..14]) != crc_stored {
            return Err(CoreError::Watermark("record signature (crc) mismatch"));
        }
        Ok(Self {
            manufacturer_id: u16::from_le_bytes([bytes[0], bytes[1]]),
            die_id: {
                let mut die = [0u8; 8];
                die.copy_from_slice(&bytes[2..10]);
                u64::from_le_bytes(die)
            },
            speed_grade: bytes[10],
            status: TestStatus::from_byte(bytes[11])?,
            year_week: u16::from_le_bytes([bytes[12], bytes[13]]),
        })
    }

    /// The record as an imprintable watermark.
    #[must_use]
    pub fn to_watermark(&self) -> Watermark {
        // The wire format is a fixed 16 bytes, so this cannot be empty.
        Watermark {
            bits: bits_from_bytes(&self.to_bytes()),
        }
    }

    /// Parses a record from extracted watermark bits.
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] on length/CRC/status problems.
    pub fn from_watermark(wm: &Watermark) -> Result<Self, CoreError> {
        if wm.len() != RECORD_BITS {
            return Err(CoreError::Watermark("record watermark must be 128 bits"));
        }
        Self::from_bytes(&wm.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> WatermarkRecord {
        WatermarkRecord {
            manufacturer_id: 0x7C01,
            die_id: 0x0123_4567_89AB_CDEF,
            speed_grade: 3,
            status: TestStatus::Accept,
            year_week: 2019 - 2000 + 4700, // arbitrary packed value
        }
    }

    #[test]
    fn ascii_watermark_tc_matches_paper() {
        // Fig. 6: "TC" = 0x5443 = 01010100 01000011b.
        let wm = Watermark::from_ascii("TC").unwrap();
        assert_eq!(wm.len(), 16);
        assert_eq!(wm.to_bytes(), vec![0x54, 0x43]);
        assert_eq!(wm.to_ascii().as_deref(), Some("TC"));
        // 'T' has 3 ones, 'C' has 3 ones.
        assert_eq!(wm.ones(), 6);
        assert_eq!(wm.zeros(), 10);
    }

    #[test]
    fn empty_and_non_ascii_rejected() {
        assert!(Watermark::from_ascii("").is_err());
        assert!(Watermark::from_ascii("héllo").is_err());
        assert!(Watermark::from_bits(vec![]).is_err());
        assert!(Watermark::from_bytes(&[]).is_err());
    }

    #[test]
    fn balanced_has_exactly_half_ones() {
        let wm = Watermark::from_ascii("FLASHMARK").unwrap();
        let bal = wm.balanced();
        assert_eq!(bal.len(), wm.len() * 2);
        assert_eq!(bal.ones(), bal.len() / 2);
        assert_eq!(bal.unbalanced().unwrap(), wm);
    }

    #[test]
    fn unbalance_rejects_invalid_symbols() {
        let bad = Watermark::from_bits(vec![true, true]).unwrap();
        assert!(bad.unbalanced().is_err());
        let odd = Watermark::from_bits(vec![true, false, true]).unwrap();
        assert!(odd.unbalanced().is_err());
    }

    #[test]
    fn record_roundtrip() {
        let r = record();
        let wm = r.to_watermark();
        assert_eq!(wm.len(), RECORD_BITS);
        assert_eq!(WatermarkRecord::from_watermark(&wm).unwrap(), r);
    }

    #[test]
    fn record_crc_detects_any_single_bit_flip() {
        let r = record();
        let bits = r.to_watermark().bits().to_vec();
        for i in 0..bits.len() {
            let mut corrupted = bits.clone();
            corrupted[i] = !corrupted[i];
            let wm = Watermark::from_bits(corrupted).unwrap();
            assert!(
                WatermarkRecord::from_watermark(&wm).is_err(),
                "flip at {i} went undetected"
            );
        }
    }

    #[test]
    fn reject_status_roundtrips() {
        let mut r = record();
        r.status = TestStatus::Reject;
        let back = WatermarkRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back.status, TestStatus::Reject);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(WatermarkRecord::from_bytes(&[0u8; 15]).is_err());
        let short = Watermark::from_bits(vec![true; 64]).unwrap();
        assert!(WatermarkRecord::from_watermark(&short).is_err());
    }

    #[test]
    fn ones_fraction_of_uppercase_ascii_near_three_eighths() {
        // The paper notes the Fig. 9 plateaus sit at the watermark's 1-bit /
        // 0-bit fractions; upper-case ASCII has 3 ones per ~8 bits.
        let wm = Watermark::from_ascii("THEQUICKBROWNFOX").unwrap();
        let f = wm.ones_fraction();
        assert!((0.3..0.5).contains(&f), "fraction {f}");
    }
}
