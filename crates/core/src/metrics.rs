//! Extraction-quality metrics: BER and error asymmetry.

pub use flashmark_ecc::bits::bit_error_rate;

/// Error breakdown of extracted bits against the imprinted reference.
///
/// The paper observes (Fig. 10) that errors are asymmetric: a stressed
/// "bad" (0) cell is misread as "good" (1) far more often than the reverse,
/// because wear-activated traps make some worn cells erase anomalously
/// fast. `bad_to_good` / `good_to_bad` quantify exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractionErrors {
    /// Reference 1-bits read back as 0 ("good" misread as "bad").
    pub good_to_bad: usize,
    /// Reference 0-bits read back as 1 ("bad" misread as "good").
    pub bad_to_good: usize,
    /// Reference 1-bits total.
    pub good_total: usize,
    /// Reference 0-bits total.
    pub bad_total: usize,
}

impl ExtractionErrors {
    /// Compares extracted bits against the reference.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn compare(reference: &[bool], extracted: &[bool]) -> Self {
        assert_eq!(reference.len(), extracted.len(), "length mismatch");
        let mut e = Self::default();
        for (&r, &x) in reference.iter().zip(extracted) {
            if r {
                e.good_total += 1;
                if !x {
                    e.good_to_bad += 1;
                }
            } else {
                e.bad_total += 1;
                if x {
                    e.bad_to_good += 1;
                }
            }
        }
        e
    }

    /// Total bit errors.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.good_to_bad + self.bad_to_good
    }

    /// Total bits compared.
    #[must_use]
    pub fn total(&self) -> usize {
        self.good_total + self.bad_total
    }

    /// Overall bit error rate.
    #[must_use]
    pub fn ber(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.errors() as f64 / self.total() as f64
    }

    /// Error rate among "good" (1) reference bits.
    #[must_use]
    pub fn good_error_rate(&self) -> f64 {
        if self.good_total == 0 {
            return 0.0;
        }
        self.good_to_bad as f64 / self.good_total as f64
    }

    /// Error rate among "bad" (0) reference bits.
    #[must_use]
    pub fn bad_error_rate(&self) -> f64 {
        if self.bad_total == 0 {
            return 0.0;
        }
        self.bad_to_good as f64 / self.bad_total as f64
    }

    /// Merges two breakdowns (e.g. across replicas or chips).
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            good_to_bad: self.good_to_bad + other.good_to_bad,
            bad_to_good: self.bad_to_good + other.bad_to_good,
            good_total: self.good_total + other.good_total,
            bad_total: self.bad_total + other.bad_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_counts_both_directions() {
        let reference = [true, true, false, false, true];
        let extracted = [true, false, true, false, true];
        let e = ExtractionErrors::compare(&reference, &extracted);
        assert_eq!(e.good_to_bad, 1);
        assert_eq!(e.bad_to_good, 1);
        assert_eq!(e.good_total, 3);
        assert_eq!(e.bad_total, 2);
        assert_eq!(e.errors(), 2);
        assert!((e.ber() - 0.4).abs() < 1e-12);
        assert!((e.good_error_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.bad_error_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clean_extraction_has_zero_ber() {
        let bits = [true, false, true];
        let e = ExtractionErrors::compare(&bits, &bits);
        assert_eq!(e.errors(), 0);
        assert!(e.ber().abs() < 1e-12);
    }

    #[test]
    fn merged_adds_counts() {
        let a = ExtractionErrors {
            good_to_bad: 1,
            bad_to_good: 2,
            good_total: 10,
            bad_total: 10,
        };
        let b = ExtractionErrors {
            good_to_bad: 3,
            bad_to_good: 0,
            good_total: 5,
            bad_total: 15,
        };
        let m = a.merged(b);
        assert_eq!(m.good_to_bad, 4);
        assert_eq!(m.bad_to_good, 2);
        assert_eq!(m.total(), 40);
    }

    #[test]
    fn empty_is_safe() {
        let e = ExtractionErrors::default();
        assert!(e.ber().abs() < 1e-12);
        assert!(e.good_error_rate().abs() < 1e-12);
        assert!(e.bad_error_rate().abs() < 1e-12);
    }
}
