//! Extraction-window (`tPEW`) selection from characterization curves
//! (paper Fig. 5).
//!
//! The manufacturer characterizes a fresh and a stressed segment of the
//! device family, then publishes the partial-erase time window in which the
//! two populations are most distinguishable. [`select_t_pew`] reproduces
//! that choice: it maximizes the number of cells whose state separates the
//! two curves, and reports the usable window around the optimum.

use flashmark_physics::Micros;

use crate::characterize::CharacterizationCurve;
use crate::error::CoreError;

/// The selected extraction window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowChoice {
    /// Recommended partial-erase time for extraction.
    pub t_pew: Micros,
    /// Cells distinguishable at `t_pew` (lower bound; Fig. 5 reports
    /// 3833/4096 for 0 K vs 50 K at 23 µs).
    pub distinguishable: usize,
    /// Total cells compared.
    pub total: usize,
    /// Earliest time with at least `min_fraction` distinguishability.
    pub window_lo: Micros,
    /// Latest such time.
    pub window_hi: Micros,
}

impl WindowChoice {
    /// Distinguishable fraction at the optimum.
    #[must_use]
    pub fn separation(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.distinguishable as f64 / self.total as f64
    }

    /// Width of the usable window.
    #[must_use]
    pub fn window_width(&self) -> Micros {
        self.window_hi - self.window_lo
    }
}

/// Picks the extraction time separating a fresh from a stressed segment.
///
/// For each sweep time `t`, a fresh cell should already read erased while a
/// stressed cell should still read programmed; the count of cells in the
/// right state on *both* curves, `fresh.cells_1(t) + stressed.cells_0(t) −
/// total`, lower-bounds the distinguishable cells. The reported window is
/// where distinguishability stays within `window_slack` cells of the
/// optimum.
///
/// # Errors
///
/// [`CoreError::Config`] if the curves are empty or cover different cell
/// counts.
pub fn select_t_pew(
    fresh: &CharacterizationCurve,
    stressed: &CharacterizationCurve,
    window_slack: usize,
) -> Result<WindowChoice, CoreError> {
    let total = fresh.total_cells();
    if total == 0 || fresh.points.is_empty() || stressed.points.is_empty() {
        return Err(CoreError::Config(
            "characterization curves must be non-empty",
        ));
    }
    if stressed.total_cells() != total {
        return Err(CoreError::Config("curves cover different cell counts"));
    }

    let score_at = |t: Micros| -> i64 {
        let fresh_erased = total as f64 - fresh.cells_0_at(t);
        let stressed_programmed = stressed.cells_0_at(t);
        (fresh_erased + stressed_programmed) as i64 - total as i64
    };

    let mut best_t = fresh.points[0].t_pe;
    let mut best = i64::MIN;
    for p in &fresh.points {
        let s = score_at(p.t_pe);
        if s > best {
            best = s;
            best_t = p.t_pe;
        }
    }
    let distinguishable = best.max(0) as usize;

    let threshold = best - window_slack as i64;
    let mut lo = best_t;
    let mut hi = best_t;
    for p in &fresh.points {
        if score_at(p.t_pe) >= threshold {
            lo = lo.min(p.t_pe);
            hi = hi.max(p.t_pe);
        }
    }

    Ok(WindowChoice {
        t_pew: best_t,
        distinguishable,
        total,
        window_lo: lo,
        window_hi: hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_segment, SweepSpec};
    use flashmark_nor::interface::{BulkStress, ImprintTiming};
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
    use flashmark_physics::PhysicsParams;

    fn synthetic(points: &[(f64, usize)], total: usize) -> CharacterizationCurve {
        CharacterizationCurve {
            points: points
                .iter()
                .map(|&(t, c0)| crate::characterize::CharacterizationPoint {
                    t_pe: Micros::new(t),
                    cells_0: c0,
                    cells_1: total - c0,
                })
                .collect(),
            reads: 1,
        }
    }

    #[test]
    fn picks_the_separating_time() {
        let total = 100;
        // Fresh flips around t=10; stressed around t=40.
        let fresh = synthetic(
            &[(0.0, 100), (10.0, 50), (20.0, 0), (30.0, 0), (40.0, 0)],
            total,
        );
        let stressed = synthetic(
            &[(0.0, 100), (10.0, 100), (20.0, 95), (30.0, 60), (40.0, 10)],
            total,
        );
        let w = select_t_pew(&fresh, &stressed, 5).unwrap();
        assert_eq!(w.t_pew, Micros::new(20.0));
        assert_eq!(w.distinguishable, 95);
        assert!((w.separation() - 0.95).abs() < 1e-12);
        assert!(w.window_lo <= w.t_pew && w.t_pew <= w.window_hi);
    }

    #[test]
    fn rejects_mismatched_curves() {
        let a = synthetic(&[(0.0, 10)], 10);
        let b = synthetic(&[(0.0, 20)], 20);
        assert!(select_t_pew(&a, &b, 0).is_err());
    }

    #[test]
    fn end_to_end_window_matches_paper_scale() {
        // Fresh vs 50 K: the paper separates 3833/4096 (93.6 %) at 23 µs.
        // Our model should separate >85 % somewhere in the 20-45 µs range.
        let mut f = FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(4),
            FlashTimings::msp430(),
            0xF1C5,
        );
        let worn = SegmentAddr::new(1);
        f.bulk_imprint(worn, &vec![0u16; 256], 50_000, ImprintTiming::Baseline)
            .unwrap();
        let sweep = SweepSpec::new(Micros::new(10.0), Micros::new(60.0), Micros::new(2.5)).unwrap();
        let fresh = characterize_segment(&mut f, SegmentAddr::new(0), &sweep, 3).unwrap();
        let stressed = characterize_segment(&mut f, worn, &sweep, 3).unwrap();
        let w = select_t_pew(&fresh, &stressed, 200).unwrap();
        assert!(w.separation() > 0.85, "separation {}", w.separation());
        assert!(
            (15.0..=50.0).contains(&w.t_pew.get()),
            "t_pew {} outside expected window",
            w.t_pew
        );
        assert!(w.window_lo <= w.t_pew && w.t_pew <= w.window_hi);
        assert!(w.window_width().get() >= 0.0);
    }
}
