//! Watermark extraction (paper Fig. 8): partial erase + majority analysis.
//!
//! `ExtractFlashmark(SegAddr, tPEW)`:
//!
//! ```text
//! erase the entire segment       (all cells read 1)
//! program the entire segment     (all cells read 0)
//! initiate the segment erase; wait tPEW; abort
//! read all flash cells
//! ```
//!
//! After the aborted erase, fresh ("good") cells have already crossed back
//! to 1 while worn ("bad") cells still read 0 — the wear-encoded watermark
//! becomes digitally readable. [`Extraction`] additionally majority-votes
//! across the configured replicas and exposes soft per-bit information.

use flashmark_ecc::MajorityVote;
use flashmark_nor::interface::{FlashInterface, FlashInterfaceExt};
use flashmark_nor::SegmentAddr;
use flashmark_obs as obs;
use flashmark_obs::ObsEvent;
use flashmark_physics::{Micros, Seconds};

use crate::characterize::analyze_segment;
use crate::config::FlashmarkConfig;
use crate::error::CoreError;
use crate::layout::SegmentLayout;
use crate::metrics::ExtractionErrors;
use crate::watermark::Watermark;

/// The result of one watermark extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    votes: Vec<MajorityVote>,
    channel: Vec<bool>,
    replicas: usize,
    t_pew: Micros,
    elapsed: Seconds,
}

impl Extraction {
    /// The recovered data bits (per-bit majority across replicas).
    #[must_use]
    pub fn bits(&self) -> Vec<bool> {
        self.votes.iter().map(MajorityVote::winner).collect()
    }

    /// The recovered bits as a [`Watermark`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] if the extraction was empty (cannot happen
    /// through [`Extractor::extract`]).
    pub fn to_watermark(&self) -> Result<Watermark, CoreError> {
        Watermark::from_bits(self.bits())
    }

    /// Per-data-bit vote tallies across replicas (soft information).
    #[must_use]
    pub fn votes(&self) -> &[MajorityVote] {
        &self.votes
    }

    /// The raw (de-interleaved) channel bits, replica-major.
    #[must_use]
    pub fn channel(&self) -> &[bool] {
        &self.channel
    }

    /// One replica's extracted bits.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn replica(&self, r: usize) -> &[bool] {
        let len = self.votes.len();
        assert!(r < self.replicas, "replica index out of range");
        &self.channel[r * len..(r + 1) * len]
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The partial-erase time used.
    #[must_use]
    pub fn t_pew(&self) -> Micros {
        self.t_pew
    }

    /// Simulated wall time the extraction took.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Fraction of data bits decoded unanimously across replicas.
    #[must_use]
    pub fn unanimous_fraction(&self) -> f64 {
        if self.votes.is_empty() {
            return 0.0;
        }
        let u = self.votes.iter().filter(|v| v.is_unanimous()).count();
        u as f64 / self.votes.len() as f64
    }

    /// Bit error rate of the majority-decoded data against a reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference length differs.
    #[must_use]
    pub fn ber_against(&self, reference: &Watermark) -> f64 {
        flashmark_ecc::bits::bit_error_rate(&self.bits(), reference.bits())
    }

    /// Error breakdown of a single replica against a reference.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `r` is out of range.
    #[must_use]
    pub fn replica_errors(&self, r: usize, reference: &Watermark) -> ExtractionErrors {
        ExtractionErrors::compare(reference.bits(), self.replica(r))
    }
}

impl Extraction {
    /// Builds an extraction from raw parts — test support for decoder-layer
    /// code that needs vote sets without driving a simulator.
    #[doc(hidden)]
    #[must_use]
    pub fn for_tests(votes: Vec<MajorityVote>, channel: Vec<bool>, replicas: usize) -> Self {
        Self {
            votes,
            channel,
            replicas,
            t_pew: Micros::new(30.0),
            elapsed: Seconds::new(0.0),
        }
    }

    /// An empty placeholder extraction for reports whose extraction never
    /// completed (e.g. an inconclusive verification after persistent
    /// transient faults). Carries no votes and no channel bits.
    pub(crate) fn unavailable(t_pew: Micros) -> Self {
        Self {
            votes: Vec::new(),
            channel: Vec::new(),
            replicas: 0,
            t_pew,
            elapsed: Seconds::new(0.0),
        }
    }
}

/// Extracts watermarks from segments according to a [`FlashmarkConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Extractor<'a> {
    config: &'a FlashmarkConfig,
}

impl<'a> Extractor<'a> {
    /// Creates an extractor.
    #[must_use]
    pub fn new(config: &'a FlashmarkConfig) -> Self {
        Self { config }
    }

    /// Runs `ExtractFlashmark` on `seg` for a watermark of `data_len` bits.
    ///
    /// The data length (like the replica count and `tPEW`) is part of the
    /// publicly communicated extraction recipe — extraction never needs the
    /// watermark *content*.
    ///
    /// # Errors
    ///
    /// Layout or flash errors.
    pub fn extract<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        data_len: usize,
    ) -> Result<Extraction, CoreError> {
        let _span = obs::span("extract");
        let layout = SegmentLayout::new(data_len, self.config.replicas(), self.config.layout())?;
        layout.check_fits(flash.geometry())?;

        let start = flash.elapsed();
        // Fig. 8, literally:
        flash.erase_segment(seg)?;
        flash.program_all_zero(seg)?;
        flash.partial_erase(seg, self.config.t_pew())?;
        let segment_bits = analyze_segment(flash, seg, self.config.reads())?;
        let elapsed = flash.elapsed() - start;

        let channel = layout.slice_channel(&segment_bits)?;
        let mut votes = vec![MajorityVote::new(); data_len];
        for r in 0..self.config.replicas() {
            for i in 0..data_len {
                votes[i].push(channel[r * data_len + i]);
            }
        }
        Ok(Extraction {
            votes,
            channel,
            replicas: self.config.replicas(),
            t_pew: self.config.t_pew(),
            elapsed,
        })
    }

    /// [`Extractor::extract`] with bounded retry on transient flash errors
    /// (interface NAKs, busy controllers, mid-operation power loss).
    ///
    /// A field verifier talks to chips over cables and sockets; transient
    /// interface errors are routine and re-running the extraction is always
    /// safe — the watermark lives in wear, which extraction cannot change.
    /// Each retry restarts the Fig. 8 sequence from the segment erase, which
    /// doubles as the backoff: the failed operation is left behind and the
    /// device sees a fresh command sequence. At most `max_retries` retries
    /// are attempted (so `max_retries + 1` extraction runs in total).
    ///
    /// # Errors
    ///
    /// The last transient error once the retry budget is exhausted, or the
    /// first non-transient error immediately.
    pub fn extract_with_retry<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        data_len: usize,
        max_retries: u32,
    ) -> Result<Extraction, CoreError> {
        let mut remaining = max_retries;
        loop {
            match self.extract(flash, seg, data_len) {
                Ok(extraction) => return Ok(extraction),
                Err(CoreError::Flash(e)) if e.is_transient() && remaining > 0 => {
                    remaining -= 1;
                    obs::emit(ObsEvent::Retry {
                        stage: "extract",
                        attempt: max_retries - remaining,
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Extraction followed by leaving the segment erased (the extraction
    /// itself leaves cells mid-transition, which is an undefined state the
    /// paper warns about).
    ///
    /// # Errors
    ///
    /// Layout or flash errors.
    pub fn extract_and_restore<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        data_len: usize,
    ) -> Result<Extraction, CoreError> {
        let e = self.extract(flash, seg, data_len)?;
        flash.erase_segment(seg)?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imprint::Imprinter;
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    fn flash(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            seed,
        )
    }

    fn cfg(n_pe: u64, replicas: usize) -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(n_pe)
            .replicas(replicas)
            .t_pew(flashmark_physics::Micros::new(28.0))
            .build()
            .unwrap()
    }

    #[test]
    fn heavy_imprint_recovers_exactly() {
        let mut f = flash(41);
        let config = cfg(80_000, 7);
        let wm = Watermark::from_ascii("TC:OK").unwrap();
        let seg = SegmentAddr::new(0);
        Imprinter::new(&config).imprint(&mut f, seg, &wm).unwrap();
        let e = Extractor::new(&config)
            .extract(&mut f, seg, wm.len())
            .unwrap();
        assert_eq!(
            e.bits(),
            wm.bits(),
            "80K/7-replica extraction must be clean"
        );
        assert!(e.unanimous_fraction() > 0.7);
    }

    #[test]
    fn no_imprint_reads_mostly_ones() {
        let mut f = flash(43);
        let config = cfg(60_000, 3);
        let e = Extractor::new(&config)
            .extract(&mut f, SegmentAddr::new(1), 32)
            .unwrap();
        let ones = e.bits().iter().filter(|&&b| b).count();
        assert!(
            ones >= 28,
            "fresh segment must extract as (almost) all 1s, got {ones}/32"
        );
    }

    #[test]
    fn extraction_is_nondestructive_to_the_watermark() {
        // The watermark lives in wear; extracting twice gives the same bits.
        let mut f = flash(45);
        let config = cfg(80_000, 5);
        let wm = Watermark::from_ascii("AGAIN").unwrap();
        let seg = SegmentAddr::new(2);
        Imprinter::new(&config).imprint(&mut f, seg, &wm).unwrap();
        let e1 = Extractor::new(&config)
            .extract(&mut f, seg, wm.len())
            .unwrap();
        let e2 = Extractor::new(&config)
            .extract(&mut f, seg, wm.len())
            .unwrap();
        assert_eq!(e1.bits(), e2.bits());
    }

    #[test]
    fn replica_views_and_votes() {
        let mut f = flash(45);
        let config = cfg(70_000, 3);
        let wm = Watermark::from_ascii("R").unwrap();
        let seg = SegmentAddr::new(3);
        Imprinter::new(&config).imprint(&mut f, seg, &wm).unwrap();
        let e = Extractor::new(&config)
            .extract(&mut f, seg, wm.len())
            .unwrap();
        assert_eq!(e.replicas(), 3);
        assert_eq!(e.replica(0).len(), 8);
        assert_eq!(e.votes().len(), 8);
        assert!(e.votes().iter().all(|v| v.total() == 3));
    }

    #[test]
    fn extraction_times_are_sub_second() {
        let mut f = flash(46);
        let config = cfg(60_000, 7);
        let wm = Watermark::from_ascii("TIME").unwrap();
        let seg = SegmentAddr::new(4);
        Imprinter::new(&config).imprint(&mut f, seg, &wm).unwrap();
        let e = Extractor::new(&config)
            .extract(&mut f, seg, wm.len())
            .unwrap();
        // Paper: ~170 ms including host overhead; ours is the on-chip time.
        assert!(e.elapsed().get() < 0.5, "extract took {}", e.elapsed());
        assert!(
            e.elapsed().get() > 0.02,
            "extract too fast: {}",
            e.elapsed()
        );
    }

    #[test]
    fn extract_and_restore_leaves_segment_erased() {
        let mut f = flash(47);
        let config = cfg(60_000, 3);
        let wm = Watermark::from_ascii("Z").unwrap();
        let seg = SegmentAddr::new(5);
        Imprinter::new(&config).imprint(&mut f, seg, &wm).unwrap();
        Extractor::new(&config)
            .extract_and_restore(&mut f, seg, wm.len())
            .unwrap();
        let bits = f.array_mut().ideal_bits(seg);
        assert!(
            bits.iter().all(|&b| b),
            "segment must be erased after restore"
        );
    }

    #[test]
    fn interleaved_layout_roundtrips_end_to_end() {
        use crate::layout::ReplicaLayout;
        let mut f = flash(49);
        let config = FlashmarkConfig::builder()
            .n_pe(80_000)
            .replicas(7)
            .t_pew(flashmark_physics::Micros::new(28.0))
            .layout(ReplicaLayout::Interleaved)
            .build()
            .unwrap();
        let wm = Watermark::from_ascii("WEAVE").unwrap();
        let seg = SegmentAddr::new(6);
        Imprinter::new(&config).imprint(&mut f, seg, &wm).unwrap();
        let e = Extractor::new(&config)
            .extract(&mut f, seg, wm.len())
            .unwrap();
        assert_eq!(e.bits(), wm.bits());
        // Replica views are de-interleaved back to logical order.
        assert_eq!(e.replica(0).len(), wm.len());
    }

    #[test]
    fn oversized_extraction_rejected() {
        let mut f = flash(48);
        let config = cfg(60_000, 7);
        assert!(matches!(
            Extractor::new(&config).extract(&mut f, SegmentAddr::new(0), 1000),
            Err(CoreError::TooLarge { .. })
        ));
    }
}
