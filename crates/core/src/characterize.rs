//! Characterization of flash-cell physical properties through the digital
//! interface (paper Fig. 3 / Fig. 4).
//!
//! [`analyze_segment`] is the paper's `AnalyzeSegment`: read every word N
//! times (N odd) and majority-vote each bit. [`characterize_segment`] is
//! `CharacterizeSegment`: for each partial-erase time in a sweep, erase →
//! program-all → partial erase → analyze, recording how many cells read
//! programmed vs erased.

use flashmark_ecc::MajorityVote;
use flashmark_nor::interface::{FlashInterface, FlashInterfaceExt};
use flashmark_nor::SegmentAddr;
use flashmark_obs as obs;
use flashmark_obs::ObsEvent;
use flashmark_physics::Micros;

use crate::error::CoreError;

/// A partial-erase time sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    /// First partial-erase time.
    pub start: Micros,
    /// Last partial-erase time (inclusive).
    pub end: Micros,
    /// Step between points.
    pub step: Micros,
}

impl SweepSpec {
    /// A new sweep.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if the bounds are inverted or the step is not
    /// positive.
    pub fn new(start: Micros, end: Micros, step: Micros) -> Result<Self, CoreError> {
        if !step.is_finite() || step.get() <= 0.0 {
            return Err(CoreError::Config("sweep step must be positive"));
        }
        if start.get() < 0.0 || end.get() < start.get() {
            return Err(CoreError::Config("sweep bounds are inverted or negative"));
        }
        Ok(Self { start, end, step })
    }

    /// The sweep the paper's Fig. 4 plots: 0–120 µs in 3 µs steps.
    #[must_use]
    pub fn fig4() -> Self {
        Self {
            start: Micros::new(0.0),
            end: Micros::new(120.0),
            step: Micros::new(3.0),
        }
    }

    /// The partial-erase times of this sweep.
    #[must_use]
    pub fn times(&self) -> Vec<Micros> {
        let mut out = Vec::new();
        let mut t = self.start.get();
        // Tolerate float drift on the inclusive upper bound.
        while t <= self.end.get() + 1e-9 {
            out.push(Micros::new(t));
            t += self.step.get();
        }
        out
    }
}

/// One point of a characterization curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizationPoint {
    /// Partial-erase time of this round.
    pub t_pe: Micros,
    /// Cells reading programmed (logic 0) after the partial erase.
    pub cells_0: usize,
    /// Cells reading erased (logic 1).
    pub cells_1: usize,
}

/// The `cells_0`/`cells_1` vs `tPE` curve of one segment (one line of the
/// paper's Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationCurve {
    /// Sweep points in ascending `tPE` order.
    pub points: Vec<CharacterizationPoint>,
    /// Reads per word used by the majority analysis.
    pub reads: usize,
}

impl CharacterizationCurve {
    /// Cells in the segment (taken from the first point).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.points.first().map_or(0, |p| p.cells_0 + p.cells_1)
    }

    /// First sweep time at which **no** cell still reads programmed — the
    /// "all cells erased" time the paper reports per stress level.
    #[must_use]
    pub fn all_erased_time(&self) -> Option<Micros> {
        self.points.iter().find(|p| p.cells_0 == 0).map(|p| p.t_pe)
    }

    /// Last sweep time at which **every** cell still reads programmed — the
    /// erase onset (≈18 µs for the paper's fresh segments).
    #[must_use]
    pub fn onset_time(&self) -> Option<Micros> {
        self.points
            .iter()
            .take_while(|p| p.cells_1 == 0)
            .last()
            .map(|p| p.t_pe)
    }

    /// Sweep time closest to the 50 % transition.
    #[must_use]
    pub fn midpoint_time(&self) -> Option<Micros> {
        let total = self.total_cells();
        if total == 0 {
            return None;
        }
        self.points
            .iter()
            .min_by_key(|p| p.cells_0.abs_diff(total / 2))
            .map(|p| p.t_pe)
    }

    /// Interpolated count of programmed cells at an arbitrary time.
    #[must_use]
    pub fn cells_0_at(&self, t: Micros) -> f64 {
        let pts = &self.points;
        if pts.is_empty() {
            return 0.0;
        }
        if t.get() <= pts[0].t_pe.get() {
            return pts[0].cells_0 as f64;
        }
        for pair in pts.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if t.get() >= a.t_pe.get() && t.get() <= b.t_pe.get() {
                let f = (t.get() - a.t_pe.get()) / (b.t_pe.get() - a.t_pe.get()).max(1e-12);
                return a.cells_0 as f64 + f * (b.cells_0 as f64 - a.cells_0 as f64);
            }
        }
        pts.last().map_or(0.0, |p| p.cells_0 as f64)
    }
}

/// Reads every bit of a segment `reads` times and majority-votes each —
/// the paper's `AnalyzeSegment` (Fig. 3). Returns one bit per cell,
/// `true` = erased (logic 1).
///
/// # Errors
///
/// Flash errors, or [`CoreError::Config`] for an even/zero read count.
pub fn analyze_segment<F: FlashInterface>(
    flash: &mut F,
    seg: SegmentAddr,
    reads: usize,
) -> Result<Vec<bool>, CoreError> {
    let votes = analyze_segment_soft(flash, seg, reads)?;
    Ok(votes.iter().map(MajorityVote::winner).collect())
}

/// Like [`analyze_segment`] but returns the per-bit vote tallies.
///
/// # Errors
///
/// Flash errors, or [`CoreError::Config`] for an even/zero read count.
pub fn analyze_segment_soft<F: FlashInterface>(
    flash: &mut F,
    seg: SegmentAddr,
    reads: usize,
) -> Result<Vec<MajorityVote>, CoreError> {
    if reads == 0 || reads.is_multiple_of(2) {
        return Err(CoreError::Config("read count must be odd"));
    }
    let geometry = flash.geometry();
    let cells = geometry.cells_per_segment();
    let mut votes = vec![MajorityVote::new(); cells];
    for _ in 0..reads {
        // Batched segment read: bit-identical to a word-by-word loop, but
        // implementations may run the physics sweep in one pass.
        let words = flash.read_block(seg)?;
        for (w, v) in words.into_iter().enumerate() {
            for bit in 0..16 {
                votes[w * 16 + bit].push(v & (1 << bit) != 0);
            }
        }
    }
    Ok(votes)
}

/// The paper's `CharacterizeSegment` (Fig. 3): for each `tPE` of the sweep,
/// erase the segment, program every cell, partially erase for `tPE`, then
/// majority-analyze.
///
/// # Errors
///
/// Flash errors or invalid sweep/read parameters.
pub fn characterize_segment<F: FlashInterface>(
    flash: &mut F,
    seg: SegmentAddr,
    sweep: &SweepSpec,
    reads: usize,
) -> Result<CharacterizationCurve, CoreError> {
    let _span = obs::span("characterize");
    let times = sweep.times();
    obs::emit(ObsEvent::SweepWidth {
        width_us: sweep.end.get() - sweep.start.get(),
        points: times.len() as u32,
    });
    let mut points = Vec::new();
    for t_pe in times {
        flash.erase_segment(seg)?;
        flash.program_all_zero(seg)?;
        if t_pe.get() > 0.0 {
            flash.partial_erase(seg, t_pe)?;
        }
        let bits = analyze_segment(flash, seg, reads)?;
        let cells_1 = bits.iter().filter(|&&b| b).count();
        points.push(CharacterizationPoint {
            t_pe,
            cells_0: bits.len() - cells_1,
            cells_1,
        });
    }
    // Leave the segment erased, not mid-transition.
    flash.erase_segment(seg)?;
    Ok(CharacterizationCurve { points, reads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::BulkStress;
    use flashmark_nor::interface::ImprintTiming;
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    fn flash() -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            0xCAFE,
        )
    }

    #[test]
    fn sweep_times_inclusive() {
        let s = SweepSpec::new(Micros::new(0.0), Micros::new(10.0), Micros::new(5.0)).unwrap();
        assert_eq!(
            s.times(),
            vec![Micros::new(0.0), Micros::new(5.0), Micros::new(10.0)]
        );
    }

    #[test]
    fn sweep_rejects_bad_bounds() {
        assert!(SweepSpec::new(Micros::new(5.0), Micros::new(1.0), Micros::new(1.0)).is_err());
        assert!(SweepSpec::new(Micros::new(0.0), Micros::new(1.0), Micros::new(0.0)).is_err());
    }

    #[test]
    fn analyze_requires_odd_reads() {
        let mut f = flash();
        assert!(analyze_segment(&mut f, SegmentAddr::new(0), 2).is_err());
        assert!(analyze_segment(&mut f, SegmentAddr::new(0), 0).is_err());
    }

    #[test]
    fn analyze_fresh_segment_reads_ones() {
        let mut f = flash();
        let bits = analyze_segment(&mut f, SegmentAddr::new(0), 3).unwrap();
        assert_eq!(bits.len(), 4096);
        assert!(bits.iter().all(|&b| b));
    }

    #[test]
    fn fresh_curve_transitions_in_paper_window() {
        let mut f = flash();
        let sweep = SweepSpec::new(Micros::new(0.0), Micros::new(60.0), Micros::new(4.0)).unwrap();
        let curve = characterize_segment(&mut f, SegmentAddr::new(1), &sweep, 3).unwrap();
        assert_eq!(curve.total_cells(), 4096);
        // At t=0 everything reads programmed.
        assert_eq!(curve.points[0].cells_0, 4096);
        // Fresh segments finish erasing by ~35-45 µs.
        let done = curve
            .all_erased_time()
            .expect("sweep must reach completion");
        assert!((20.0..=48.0).contains(&done.get()), "all-erased at {done}");
        // Onset: nothing flips below ~12 µs.
        let onset = curve.onset_time().expect("onset visible");
        assert!(onset.get() >= 8.0, "onset at {onset}");
    }

    #[test]
    fn stressed_curve_takes_longer() {
        let mut f = flash();
        let seg_fresh = SegmentAddr::new(2);
        let seg_worn = SegmentAddr::new(3);
        f.bulk_imprint(seg_worn, &vec![0u16; 256], 20_000, ImprintTiming::Baseline)
            .unwrap();
        let sweep = SweepSpec::new(Micros::new(0.0), Micros::new(150.0), Micros::new(5.0)).unwrap();
        let fresh = characterize_segment(&mut f, seg_fresh, &sweep, 3).unwrap();
        let worn = characterize_segment(&mut f, seg_worn, &sweep, 3).unwrap();
        let t_fresh = fresh.all_erased_time().unwrap();
        let t_worn = worn.all_erased_time().unwrap();
        assert!(
            t_worn.get() > t_fresh.get() * 1.8,
            "worn {t_worn} vs fresh {t_fresh}"
        );
    }

    #[test]
    fn cells_0_interpolation() {
        let curve = CharacterizationCurve {
            points: vec![
                CharacterizationPoint {
                    t_pe: Micros::new(0.0),
                    cells_0: 100,
                    cells_1: 0,
                },
                CharacterizationPoint {
                    t_pe: Micros::new(5.0),
                    cells_0: 50,
                    cells_1: 50,
                },
                CharacterizationPoint {
                    t_pe: Micros::new(10.0),
                    cells_0: 0,
                    cells_1: 100,
                },
            ],
            reads: 1,
        };
        assert!((curve.cells_0_at(Micros::new(2.5)) - 75.0).abs() < 1e-12);
        assert!((curve.cells_0_at(Micros::new(-1.0)) - 100.0).abs() < 1e-12);
        assert!(curve.cells_0_at(Micros::new(99.0)).abs() < 1e-12);
        assert_eq!(curve.midpoint_time(), Some(Micros::new(5.0)));
    }
}
