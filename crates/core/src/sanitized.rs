//! Sanitized entry points: run the Flashmark procedures under the
//! flash-protocol sanitizer and get the violation report back with the
//! result.
//!
//! These wrap the flash in a [`SanitizedFlash`] (policy
//! [`Collect`](flashmark_sanitizer::Policy::Collect)) for the duration of
//! one procedure. The sanitizer never changes behavior, so the value
//! computed is identical to the unsanitized call — what's added is the
//! [`Violation`] list. The test suite runs the clean-path algorithm tests
//! through these to prove the reference flows are protocol-clean.

use flashmark_nor::{BulkStress, FlashInterface, SegmentAddr};
use flashmark_sanitizer::{SanitizedFlash, Violation};

use crate::characterize::{characterize_segment, CharacterizationCurve, SweepSpec};
use crate::config::FlashmarkConfig;
use crate::error::CoreError;
use crate::extract::{Extraction, Extractor};
use crate::imprint::{ImprintReport, Imprinter};
use crate::watermark::Watermark;

/// A procedure result together with the protocol violations (if any)
/// detected while producing it.
#[derive(Debug, Clone)]
pub struct SanitizedOutcome<T> {
    /// The procedure's normal result.
    pub value: T,
    /// Violations collected during the run, in detection order.
    pub violations: Vec<Violation>,
}

impl<T> SanitizedOutcome<T> {
    /// Whether the run was protocol-clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `op` against a sanitizer-wrapped borrow of `flash` and returns its
/// result alongside the collected violations (also on error — a failing run
/// often has the most interesting violation report).
pub fn run_sanitized<F, T, E>(
    flash: &mut F,
    op: impl FnOnce(&mut SanitizedFlash<&mut F>) -> Result<T, E>,
) -> (Result<T, E>, Vec<Violation>)
where
    F: FlashInterface,
{
    let mut sanitized = SanitizedFlash::new(&mut *flash);
    let result = op(&mut sanitized);
    (result, sanitized.take_violations())
}

/// [`Imprinter::imprint`] under the sanitizer.
///
/// # Errors
///
/// Same as [`Imprinter::imprint`]; violations collected before the error
/// are discarded — use [`run_sanitized`] to keep them.
pub fn imprint_sanitized<F: BulkStress>(
    config: &FlashmarkConfig,
    flash: &mut F,
    seg: SegmentAddr,
    wm: &Watermark,
) -> Result<SanitizedOutcome<ImprintReport>, CoreError> {
    let mut sanitized = SanitizedFlash::new(&mut *flash);
    let value = Imprinter::new(config).imprint(&mut sanitized, seg, wm)?;
    Ok(SanitizedOutcome {
        value,
        violations: sanitized.take_violations(),
    })
}

/// [`Imprinter::imprint_via_cycles`] (the faithful Fig. 7 loop) under the
/// sanitizer.
///
/// # Errors
///
/// Same as [`Imprinter::imprint_via_cycles`].
pub fn imprint_via_cycles_sanitized<F: FlashInterface>(
    config: &FlashmarkConfig,
    flash: &mut F,
    seg: SegmentAddr,
    wm: &Watermark,
) -> Result<SanitizedOutcome<ImprintReport>, CoreError> {
    let mut sanitized = SanitizedFlash::new(&mut *flash);
    let value = Imprinter::new(config).imprint_via_cycles(&mut sanitized, seg, wm)?;
    Ok(SanitizedOutcome {
        value,
        violations: sanitized.take_violations(),
    })
}

/// [`Extractor::extract`] (the Fig. 8 procedure) under the sanitizer.
///
/// # Errors
///
/// Same as [`Extractor::extract`].
pub fn extract_sanitized<F: FlashInterface>(
    config: &FlashmarkConfig,
    flash: &mut F,
    seg: SegmentAddr,
    data_len: usize,
) -> Result<SanitizedOutcome<Extraction>, CoreError> {
    let mut sanitized = SanitizedFlash::new(&mut *flash);
    let value = Extractor::new(config).extract(&mut sanitized, seg, data_len)?;
    Ok(SanitizedOutcome {
        value,
        violations: sanitized.take_violations(),
    })
}

/// [`characterize_segment`] (the Fig. 3/4 sweep) under the sanitizer.
///
/// # Errors
///
/// Same as [`characterize_segment`].
pub fn characterize_sanitized<F: FlashInterface>(
    flash: &mut F,
    seg: SegmentAddr,
    sweep: &SweepSpec,
    reads: usize,
) -> Result<SanitizedOutcome<CharacterizationCurve>, CoreError> {
    let mut sanitized = SanitizedFlash::new(&mut *flash);
    let value = characterize_segment(&mut sanitized, seg, sweep, reads)?;
    Ok(SanitizedOutcome {
        value,
        violations: sanitized.take_violations(),
    })
}
