//! Fresh-vs-stressed segment detection (paper Fig. 5).
//!
//! One characterization round at a well-chosen `tPEW` suffices to tell a
//! fresh segment from a stressed one: after the partial erase, a fresh
//! segment's cells have mostly flipped to 1 while a stressed segment's
//! cells mostly still read 0. This is also the primitive for detecting
//! *recycled* chips (heavily used flash that a counterfeiter resells as
//! new).

use flashmark_nor::interface::{FlashInterface, FlashInterfaceExt};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

use crate::characterize::analyze_segment;
use crate::error::CoreError;

/// Verdict of a stress classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentCondition {
    /// The segment behaves like unused flash.
    Fresh,
    /// The segment has accumulated substantial P/E stress.
    Stressed,
}

/// Result of one stress detection round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressReport {
    /// Cells still reading programmed after the partial erase.
    pub programmed: usize,
    /// Total cells in the segment.
    pub total: usize,
    /// Classification under the detector's threshold.
    pub verdict: SegmentCondition,
    /// Partial-erase time used.
    pub t_pew: Micros,
}

impl StressReport {
    /// Fraction of cells that resisted the partial erase.
    #[must_use]
    pub fn programmed_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.programmed as f64 / self.total as f64
    }
}

/// Classifies segments as fresh or stressed with one partial-erase round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressDetector {
    t_pew: Micros,
    reads: usize,
    threshold: f64,
}

impl StressDetector {
    /// Creates a detector.
    ///
    /// `threshold` is the programmed-cell fraction above which a segment is
    /// called stressed (the paper's Fig. 5 example separates 0 K from 50 K
    /// at `tPEW` = 23 µs with 3833 of 4096 cells on the right side).
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for an even read count or a threshold outside
    /// `(0, 1)`.
    pub fn new(t_pew: Micros, reads: usize, threshold: f64) -> Result<Self, CoreError> {
        if reads == 0 || reads.is_multiple_of(2) {
            return Err(CoreError::Config("read count must be odd"));
        }
        if !(0.0 < threshold && threshold < 1.0) {
            return Err(CoreError::Config("threshold must be in (0, 1)"));
        }
        Ok(Self {
            t_pew,
            reads,
            threshold,
        })
    }

    /// A detector at the paper's Fig. 5 operating point (23 µs, majority of
    /// 3 reads, 50 % threshold).
    #[must_use]
    pub fn fig5() -> Self {
        Self {
            t_pew: Micros::new(23.0),
            reads: 3,
            threshold: 0.5,
        }
    }

    /// The partial-erase time used.
    #[must_use]
    pub fn t_pew(&self) -> Micros {
        self.t_pew
    }

    /// Runs one detection round (erase → program all → partial erase →
    /// analyze). **Destructive** to segment contents, like all Flashmark
    /// sensing.
    ///
    /// # Errors
    ///
    /// Flash errors.
    pub fn classify<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
    ) -> Result<StressReport, CoreError> {
        flash.erase_segment(seg)?;
        flash.program_all_zero(seg)?;
        flash.partial_erase(seg, self.t_pew)?;
        let bits = analyze_segment(flash, seg, self.reads)?;
        let programmed = bits.iter().filter(|&&b| !b).count();
        let total = bits.len();
        let verdict = if (programmed as f64 / total as f64) > self.threshold {
            SegmentCondition::Stressed
        } else {
            SegmentCondition::Fresh
        };
        // Restore a defined state.
        flash.erase_segment(seg)?;
        Ok(StressReport {
            programmed,
            total,
            verdict,
            t_pew: self.t_pew,
        })
    }
}

/// The FFD/timing-style *partial-program* recycled detector (paper related
/// work \[6\]/\[7\]): erase the segment, apply one aborted program pulse, and
/// count how many cells already read programmed — worn cells program
/// faster, so a stressed segment shows markedly more early-programmers.
///
/// Implemented as a baseline for comparison with the partial-erase
/// [`StressDetector`]; it requires the part to support aborting a program
/// (the [`PartialProgram`](flashmark_nor::interface::PartialProgram)
/// capability trait).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramTimeDetector {
    t_pp: Micros,
    reads: usize,
    threshold: f64,
}

impl ProgramTimeDetector {
    /// Creates a detector with pulse `t_pp` and a programmed-fraction
    /// threshold above which a segment is called stressed.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for an even read count or a threshold outside
    /// `(0, 1)`.
    pub fn new(t_pp: Micros, reads: usize, threshold: f64) -> Result<Self, CoreError> {
        if reads == 0 || reads.is_multiple_of(2) {
            return Err(CoreError::Config("read count must be odd"));
        }
        if !(0.0 < threshold && threshold < 1.0) {
            return Err(CoreError::Config("threshold must be in (0, 1)"));
        }
        Ok(Self {
            t_pp,
            reads,
            threshold,
        })
    }

    /// A reasonable default: a pulse of half the nominal program time.
    #[must_use]
    pub fn default_for_msp430() -> Self {
        Self {
            t_pp: Micros::new(13.0),
            reads: 3,
            threshold: 0.3,
        }
    }

    /// Runs one detection round (erase → partial program → analyze →
    /// erase). Destructive to segment contents.
    ///
    /// # Errors
    ///
    /// Flash errors.
    pub fn classify<F: FlashInterface + flashmark_nor::interface::PartialProgram>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
    ) -> Result<StressReport, CoreError> {
        flash.erase_segment(seg)?;
        flash.partial_program(seg, self.t_pp)?;
        let bits = analyze_segment(flash, seg, self.reads)?;
        let programmed = bits.iter().filter(|&&b| !b).count();
        let total = bits.len();
        let verdict = if (programmed as f64 / total as f64) > self.threshold {
            SegmentCondition::Stressed
        } else {
            SegmentCondition::Fresh
        };
        flash.erase_segment(seg)?;
        Ok(StressReport {
            programmed,
            total,
            verdict,
            t_pew: self.t_pp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::{BulkStress, ImprintTiming};
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    fn flash(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(4),
            FlashTimings::msp430(),
            seed,
        )
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(StressDetector::new(Micros::new(23.0), 2, 0.5).is_err());
        assert!(StressDetector::new(Micros::new(23.0), 3, 0.0).is_err());
        assert!(StressDetector::new(Micros::new(23.0), 3, 1.0).is_err());
    }

    #[test]
    fn fresh_segment_classified_fresh() {
        let mut f = flash(70);
        let r = StressDetector::fig5()
            .classify(&mut f, SegmentAddr::new(0))
            .unwrap();
        assert_eq!(r.verdict, SegmentCondition::Fresh);
        assert!(
            r.programmed_fraction() < 0.35,
            "fraction {}",
            r.programmed_fraction()
        );
    }

    #[test]
    fn worn_segment_classified_stressed() {
        let mut f = flash(71);
        let seg = SegmentAddr::new(1);
        f.bulk_imprint(seg, &vec![0u16; 256], 50_000, ImprintTiming::Baseline)
            .unwrap();
        let r = StressDetector::fig5().classify(&mut f, seg).unwrap();
        assert_eq!(r.verdict, SegmentCondition::Stressed);
        assert!(
            r.programmed_fraction() > 0.8,
            "fraction {}",
            r.programmed_fraction()
        );
    }

    #[test]
    fn fig5_separation_matches_paper_scale() {
        // Paper: 3833 of 4096 bits distinguish 0 K from 50 K at 23 µs.
        // We require >85 % separation with the same setup.
        let mut f = flash(73);
        let worn = SegmentAddr::new(1);
        f.bulk_imprint(worn, &vec![0u16; 256], 50_000, ImprintTiming::Baseline)
            .unwrap();
        let det = StressDetector::fig5();
        let fresh = det.classify(&mut f, SegmentAddr::new(0)).unwrap();
        let stressed = det.classify(&mut f, worn).unwrap();
        let distinguishable = (stressed.programmed as i64
            + (fresh.total - fresh.programmed) as i64)
            - fresh.total as i64;
        assert!(
            distinguishable > (0.85 * fresh.total as f64) as i64,
            "only {distinguishable} of {} distinguishable",
            fresh.total
        );
    }

    #[test]
    fn program_time_detector_separates_fresh_from_worn() {
        let mut f = flash(74);
        let worn = SegmentAddr::new(1);
        f.bulk_imprint(worn, &vec![0u16; 256], 50_000, ImprintTiming::Baseline)
            .unwrap();
        let det = ProgramTimeDetector::default_for_msp430();
        let fresh_report = det.classify(&mut f, SegmentAddr::new(0)).unwrap();
        let worn_report = det.classify(&mut f, worn).unwrap();
        assert!(
            worn_report.programmed > fresh_report.programmed + 500,
            "worn {} vs fresh {} early-programmed cells",
            worn_report.programmed,
            fresh_report.programmed
        );
        assert_eq!(fresh_report.verdict, SegmentCondition::Fresh);
        assert_eq!(worn_report.verdict, SegmentCondition::Stressed);
    }

    #[test]
    fn program_time_detector_validates_parameters() {
        assert!(ProgramTimeDetector::new(Micros::new(20.0), 2, 0.5).is_err());
        assert!(ProgramTimeDetector::new(Micros::new(20.0), 3, 1.5).is_err());
    }

    #[test]
    fn detection_leaves_segment_erased() {
        let mut f = flash(73);
        let seg = SegmentAddr::new(2);
        StressDetector::fig5().classify(&mut f, seg).unwrap();
        assert!(f.array_mut().ideal_bits(seg).iter().all(|&b| b));
    }
}
