//! Error type of the Flashmark algorithms.

use core::fmt;

use flashmark_ecc::CodeError;
use flashmark_nor::NorError;

/// Errors raised by the Flashmark procedures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying flash interface failed.
    Flash(NorError),
    /// A replication/ECC operation failed.
    Code(CodeError),
    /// A configuration value was invalid.
    Config(&'static str),
    /// A watermark payload was invalid.
    Watermark(&'static str),
    /// The watermark (with replicas) does not fit the segment.
    TooLarge {
        /// Channel bits needed.
        needed: usize,
        /// Cells available in the segment.
        available: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Flash(e) => write!(f, "flash interface error: {e}"),
            Self::Code(e) => write!(f, "code error: {e}"),
            Self::Config(why) => write!(f, "invalid configuration: {why}"),
            Self::Watermark(why) => write!(f, "invalid watermark: {why}"),
            Self::TooLarge { needed, available } => {
                write!(
                    f,
                    "watermark needs {needed} cells but the segment has {available}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Flash(e) => Some(e),
            Self::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NorError> for CoreError {
    fn from(e: NorError) -> Self {
        Self::Flash(e)
    }
}

impl From<CodeError> for CoreError {
    fn from(e: CodeError) -> Self {
        Self::Code(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(NorError::Locked);
        assert!(e.to_string().contains("locked"));
        assert!(e.source().is_some());
        let c = CoreError::Config("bad replicas");
        assert!(c.to_string().contains("bad replicas"));
        assert!(c.source().is_none());
    }

    #[test]
    fn too_large_message() {
        let e = CoreError::TooLarge {
            needed: 8192,
            available: 4096,
        };
        assert_eq!(
            e.to_string(),
            "watermark needs 8192 cells but the segment has 4096"
        );
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
