//! End-to-end chip verification — the system integrator's workflow.
//!
//! The integrator knows only the public extraction recipe (`tPEW`, replica
//! count, record format, the expected manufacturer ID); no chip database and
//! no contact with the manufacturer is needed (the paper's advantage over
//! PUF-based schemes). [`Verifier::verify`] extracts the watermark record
//! and classifies the chip:
//!
//! * a valid record with `Accept` status and the right manufacturer →
//!   [`Verdict::Genuine`];
//! * a valid record with `Reject` status → a fall-out die smuggled back into
//!   the chain → [`Verdict::Counterfeit`];
//! * no wear watermark at all (blank or different-vendor silicon) →
//!   [`Verdict::Counterfeit`] with [`CounterfeitReason::NoWatermark`];
//! * a wear pattern whose signature fails → tampering or heavy damage →
//!   [`Verdict::Counterfeit`] with [`CounterfeitReason::SignatureMismatch`].
//!
//! [`Verifier::verify_resilient`] is the field-hardened variant: it retries
//! transient interface errors with a bounded budget, falls back to
//! re-characterizing the segment when the partial-erase window has drifted,
//! and degrades to [`Verdict::Inconclusive`] (never a hard error, never a
//! false Genuine) when faults persist.

use std::fmt;

use flashmark_nor::interface::FlashInterface;
use flashmark_nor::SegmentAddr;
use flashmark_obs as obs;
use flashmark_obs::ObsEvent;
use flashmark_physics::Micros;

use crate::characterize::{characterize_segment, SweepSpec};
use crate::config::FlashmarkConfig;
use crate::error::CoreError;
use crate::extract::{Extraction, Extractor};
use crate::watermark::{TestStatus, Watermark, WatermarkRecord, RECORD_BITS};

/// Why a chip was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterfeitReason {
    /// No wear watermark is present (blank, cloned, or re-marked silicon).
    NoWatermark,
    /// A watermark is present but its CRC signature fails (tampering or
    /// damage).
    SignatureMismatch,
    /// The record decodes but carries a `Reject` die-sort status.
    RejectedDie,
    /// The record decodes but names a different manufacturer.
    WrongManufacturer {
        /// Manufacturer ID found in the record.
        found: u16,
    },
}

/// Why a verification could not reach a verdict.
///
/// Inconclusive is a *graceful degradation* of
/// [`Verifier::verify_resilient`]: instead of surfacing infrastructure
/// faults (flaky cabling, brown-outs) as hard errors, the verifier reports
/// that the chip could not be judged and should be re-inspected. An
/// inconclusive chip must **never** be treated as genuine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InconclusiveReason {
    /// Transient interface faults persisted past the bounded retry budget.
    TransientFaults,
    /// The extraction window drifted and re-characterizing the segment
    /// failed, so no usable partial-erase time could be derived.
    RecharacterizationFailed,
    /// A fuzzy fingerprint match landed between the accept and reject
    /// thresholds (intrinsic PUF schemes): too noisy to accept, too close
    /// to the enrollment to reject. Re-measure the chip.
    FuzzyMatchMarginal,
}

impl fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TransientFaults => {
                write!(f, "transient faults persisted past the retry budget")
            }
            Self::RecharacterizationFailed => write!(
                f,
                "the extraction window drifted and re-characterization faulted"
            ),
            Self::FuzzyMatchMarginal => write!(
                f,
                "fuzzy fingerprint distance fell between the accept and reject thresholds"
            ),
        }
    }
}

/// Which strategy settled a verification — the rung of the retry ladder
/// that decoded, the re-characterization fallback, or the failure mode that
/// forced the verdict. Carries the winning operating point, so it lives on
/// the [`VerificationReport`] (not inside [`Verdict`], which stays `Eq`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resolution {
    /// A rung of the published `tPEW` retry ladder decoded (offset relative
    /// to the configured `tPEW`; `0.0` is the nominal operating point).
    Ladder {
        /// Winning ladder offset in µs.
        offset_us: f64,
    },
    /// The re-characterization fallback re-derived the window and decoded.
    Recharacterized {
        /// The re-derived partial-erase time in µs.
        t_pew_us: f64,
    },
    /// The transient retry budget ran out before any attempt completed.
    RetriesExhausted,
    /// The re-characterization fallback itself faulted out.
    CharacterizationFaulted,
    /// Every ladder rung (and any fallback) completed but nothing decoded;
    /// the verdict comes from the last completed attempt.
    NoDecode,
}

impl Resolution {
    /// Stable strategy label (also the obs event payload).
    #[must_use]
    pub fn strategy(self) -> &'static str {
        match self {
            Self::Ladder { .. } => "ladder",
            Self::Recharacterized { .. } => "recharacterized",
            Self::RetriesExhausted => "retries_exhausted",
            Self::CharacterizationFaulted => "recharacterization_faulted",
            Self::NoDecode => "no_decode",
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ladder { offset_us } => {
                write!(f, "ladder rung at {offset_us:+.1} us")
            }
            Self::Recharacterized { t_pew_us } => {
                write!(f, "re-characterized window at {t_pew_us:.1} us")
            }
            Self::RetriesExhausted => write!(f, "transient retry budget exhausted"),
            Self::CharacterizationFaulted => write!(f, "re-characterization faulted"),
            Self::NoDecode => write!(f, "no rung decoded"),
        }
    }
}

/// Outcome of a verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The chip carries a valid, accepted, correctly-signed watermark.
    Genuine,
    /// The chip is counterfeit (reason attached).
    Counterfeit(CounterfeitReason),
    /// The chip could not be judged (reason attached); re-inspect. Only
    /// [`Verifier::verify_resilient`] produces this verdict, and consumers
    /// must not count it as genuine.
    Inconclusive(InconclusiveReason),
}

impl Verdict {
    /// Stable verdict label (also the obs event payload).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Genuine => "genuine",
            Self::Counterfeit(_) => "counterfeit",
            Self::Inconclusive(_) => "inconclusive",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Genuine => write!(f, "genuine"),
            Self::Counterfeit(_) => write!(f, "counterfeit"),
            Self::Inconclusive(reason) => write!(f, "inconclusive: {reason}"),
        }
    }
}

/// Full verification output.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// The verdict.
    pub verdict: Verdict,
    /// The decoded record, when the signature checked out.
    pub record: Option<WatermarkRecord>,
    /// The raw extraction (soft information, timing).
    pub extraction: Extraction,
    /// Which strategy settled the verdict (ladder rung, fallback, or the
    /// failure mode that forced degradation).
    pub resolution: Resolution,
}

impl VerificationReport {
    /// One human-readable line: the verdict and the strategy that won.
    #[must_use]
    pub fn summary(&self) -> String {
        format!("{} (resolved by {})", self.verdict, self.resolution)
    }
}

/// Verifies chips against a manufacturer's public extraction recipe.
///
/// Extraction at a single `tPEW` can leave a handful of cells frozen at the
/// read boundary; real inspection flows retry inside the *published window*
/// until the record's signature validates. The verifier therefore probes a
/// small ladder of partial-erase times around the configured `tPEW`
/// (repeating the extraction is harmless — the watermark lives in wear).
#[derive(Debug, Clone)]
pub struct Verifier {
    config: FlashmarkConfig,
    expected_manufacturer: u16,
    retry_offsets_us: Vec<f64>,
    max_transient_retries: u32,
}

impl Verifier {
    /// Creates a verifier for chips of `expected_manufacturer`.
    #[must_use]
    pub fn new(config: FlashmarkConfig, expected_manufacturer: u16) -> Self {
        Self {
            config,
            expected_manufacturer,
            retry_offsets_us: vec![0.0, -4.0, 4.0, -8.0, 8.0],
            max_transient_retries: 4,
        }
    }

    /// Overrides the per-attempt transient-error retry budget used by
    /// [`Verifier::verify_resilient`] (`0` disables retries).
    #[must_use]
    pub fn with_transient_retries(mut self, retries: u32) -> Self {
        self.max_transient_retries = retries;
        self
    }

    /// Overrides the `tPEW` retry ladder (offsets in µs, tried in order;
    /// `[0.0]` disables retries).
    #[must_use]
    pub fn with_retry_offsets(mut self, offsets_us: Vec<f64>) -> Self {
        self.retry_offsets_us = if offsets_us.is_empty() {
            vec![0.0]
        } else {
            offsets_us
        };
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FlashmarkConfig {
        &self.config
    }

    /// Extracts and validates the watermark record in `seg`.
    ///
    /// # Errors
    ///
    /// Flash/layout errors only; every *authenticity* outcome is expressed
    /// in the report's [`Verdict`], not as an error.
    pub fn verify<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
    ) -> Result<VerificationReport, CoreError> {
        let _span = obs::span("verify");
        let mut last: Option<VerificationReport> = None;
        for &offset in &self.retry_offsets_us {
            let t = Micros::new((self.config.t_pew().get() + offset).max(1.0));
            let report = self.verify_at(flash, seg, t)?;
            obs::emit(ObsEvent::LadderRung {
                offset_us: offset,
                outcome: rung_outcome(&report),
            });
            match report.verdict {
                // A decoded record is conclusive either way: the signature
                // binds it, whether it says accept or reject.
                _ if report.record.is_some() => {
                    return Ok(finish(report, Resolution::Ladder { offset_us: offset }))
                }
                // No wear watermark at all: retrying other times cannot
                // conjure one up.
                Verdict::Counterfeit(CounterfeitReason::NoWatermark) if offset.abs() < 1e-9 => {
                    return Ok(finish(report, Resolution::Ladder { offset_us: offset }))
                }
                // Signature mismatch: retry elsewhere in the window.
                _ => last = Some(report),
            }
        }
        // `retry_offsets_us` is kept non-empty by construction, so the loop
        // always yields a report; surface a typed error instead of panicking
        // if that invariant is ever broken.
        last.map(|r| finish(r, Resolution::NoDecode))
            .ok_or(CoreError::Config("verifier has no retry offsets"))
    }

    /// [`Verifier::verify`] hardened for field conditions: transient flash
    /// errors (NAKs, busy controllers, power loss) are retried up to the
    /// configured budget per attempt, a drifted partial-erase window
    /// triggers one re-characterization fallback, and fault conditions that
    /// survive all of that degrade to [`Verdict::Inconclusive`] instead of
    /// a hard error.
    ///
    /// Retrying is always safe (the watermark lives in wear), and the
    /// degradation is one-way by construction: faults can push a verdict
    /// *toward* Counterfeit or Inconclusive, but a Genuine verdict still
    /// requires a CRC-valid accept record — there is no fault path that
    /// conjures one from a reject or blank chip.
    ///
    /// # Errors
    ///
    /// Non-transient flash/layout errors only; transient-fault exhaustion
    /// is reported as [`Verdict::Inconclusive`], not as an error.
    pub fn verify_resilient<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
    ) -> Result<VerificationReport, CoreError> {
        let _span = obs::span("verify_resilient");
        let mut last: Option<VerificationReport> = None;
        for &offset in &self.retry_offsets_us {
            let t = Micros::new((self.config.t_pew().get() + offset).max(1.0));
            let Some(report) = self.attempt_with_retry(flash, seg, t)? else {
                obs::emit(ObsEvent::LadderRung {
                    offset_us: offset,
                    outcome: "transient_faults",
                });
                return Ok(finish(
                    Self::inconclusive(InconclusiveReason::TransientFaults, t),
                    Resolution::RetriesExhausted,
                ));
            };
            obs::emit(ObsEvent::LadderRung {
                offset_us: offset,
                outcome: rung_outcome(&report),
            });
            match report.verdict {
                _ if report.record.is_some() => {
                    return Ok(finish(report, Resolution::Ladder { offset_us: offset }))
                }
                Verdict::Counterfeit(CounterfeitReason::NoWatermark) if offset.abs() < 1e-9 => {
                    return Ok(finish(report, Resolution::Ladder { offset_us: offset }))
                }
                _ => last = Some(report),
            }
        }

        // Nothing decoded anywhere on the published ladder. The window may
        // have drifted past it (ageing, temperature, timing faults):
        // re-derive tPEW from a fresh characterization of the segment and
        // try once more at the re-derived operating point.
        match self.recharacterized_t_pew(flash, seg)? {
            Recharacterization::Window(t) => match self.attempt_with_retry(flash, seg, t)? {
                Some(report) if report.record.is_some() => {
                    return Ok(finish(
                        report,
                        Resolution::Recharacterized { t_pew_us: t.get() },
                    ))
                }
                Some(report) => {
                    if last.is_none() {
                        last = Some(report);
                    }
                }
                None => {
                    return Ok(finish(
                        Self::inconclusive(InconclusiveReason::TransientFaults, t),
                        Resolution::RetriesExhausted,
                    ));
                }
            },
            Recharacterization::Faulted => {
                return Ok(finish(
                    Self::inconclusive(
                        InconclusiveReason::RecharacterizationFailed,
                        self.config.t_pew(),
                    ),
                    Resolution::CharacterizationFaulted,
                ));
            }
            Recharacterization::NoWindow => {}
        }
        last.map(|r| finish(r, Resolution::NoDecode))
            .ok_or(CoreError::Config("verifier has no retry offsets"))
    }

    /// One ladder attempt under the transient retry budget. `Ok(None)`
    /// means the budget ran out on transient errors; non-transient errors
    /// propagate. Each retry re-runs the whole extraction, which is the
    /// backoff: the device sees a fresh command sequence and the simulated
    /// clock (the only clock this crate knows) has advanced past the
    /// faulted operation.
    fn attempt_with_retry<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        t_pew: Micros,
    ) -> Result<Option<VerificationReport>, CoreError> {
        let mut remaining = self.max_transient_retries;
        loop {
            match self.verify_at(flash, seg, t_pew) {
                Ok(report) => return Ok(Some(report)),
                Err(CoreError::Flash(e)) if e.is_transient() => {
                    if remaining == 0 {
                        return Ok(None);
                    }
                    remaining -= 1;
                    obs::emit(ObsEvent::Retry {
                        stage: "verify_attempt",
                        attempt: self.max_transient_retries - remaining,
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Re-derives the extraction operating point by characterizing the
    /// segment across a ±12 µs sweep around the configured `tPEW` and
    /// taking the post-transition plateau (see [`drifted_window`]).
    fn recharacterized_t_pew<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
    ) -> Result<Recharacterization, CoreError> {
        let t = self.config.t_pew().get();
        let Ok(sweep) = SweepSpec::new(
            Micros::new((t - 12.0).max(1.0)),
            Micros::new(t + 12.0),
            Micros::new(2.0),
        ) else {
            return Ok(Recharacterization::NoWindow);
        };
        let mut remaining = self.max_transient_retries;
        loop {
            match characterize_segment(flash, seg, &sweep, self.config.reads()) {
                Ok(curve) => {
                    return Ok(drifted_window(&curve)
                        .map_or(Recharacterization::NoWindow, Recharacterization::Window));
                }
                Err(CoreError::Flash(e)) if e.is_transient() => {
                    if remaining == 0 {
                        return Ok(Recharacterization::Faulted);
                    }
                    remaining -= 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// A graceful-degraded report: no record, empty extraction.
    fn inconclusive(reason: InconclusiveReason, t_pew: Micros) -> VerificationReport {
        VerificationReport {
            verdict: Verdict::Inconclusive(reason),
            record: None,
            extraction: Extraction::unavailable(t_pew),
            resolution: Resolution::NoDecode,
        }
    }

    fn verify_at<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        t_pew: Micros,
    ) -> Result<VerificationReport, CoreError> {
        let config = FlashmarkConfig::builder()
            .n_pe(self.config.n_pe())
            .replicas(self.config.replicas())
            .reads(self.config.reads())
            .accelerated(self.config.accelerated())
            .layout(self.config.layout())
            .t_pew(t_pew)
            .build()?;
        let extraction = Extractor::new(&config).extract(flash, seg, RECORD_BITS)?;
        let bits = extraction.bits();

        // A segment with no imprinted wear extracts as (almost) all 1s once
        // tPEW is inside the fresh-erase window; all 0s would mean tPEW is
        // below even the fresh onset. Either way: no watermark.
        let ones = bits.iter().filter(|&&b| b).count();
        let frac = ones as f64 / bits.len() as f64;
        if !(0.03..=0.97).contains(&frac) {
            return Ok(VerificationReport {
                verdict: Verdict::Counterfeit(CounterfeitReason::NoWatermark),
                record: None,
                extraction,
                resolution: Resolution::NoDecode,
            });
        }

        let wm = extraction.to_watermark()?;
        let decoded = WatermarkRecord::from_watermark(&wm)
            .ok()
            .or_else(|| soft_repair(&bits, &extraction));
        match decoded {
            None => Ok(VerificationReport {
                verdict: Verdict::Counterfeit(CounterfeitReason::SignatureMismatch),
                record: None,
                extraction,
                resolution: Resolution::NoDecode,
            }),
            Some(record) => {
                let verdict = if record.manufacturer_id != self.expected_manufacturer {
                    Verdict::Counterfeit(CounterfeitReason::WrongManufacturer {
                        found: record.manufacturer_id,
                    })
                } else if record.status == TestStatus::Reject {
                    Verdict::Counterfeit(CounterfeitReason::RejectedDie)
                } else {
                    Verdict::Genuine
                };
                Ok(VerificationReport {
                    verdict,
                    record: Some(record),
                    extraction,
                    resolution: Resolution::NoDecode,
                })
            }
        }
    }
}

/// The obs-event outcome label for one ladder rung's report.
fn rung_outcome(report: &VerificationReport) -> &'static str {
    if report.record.is_some() {
        "decoded"
    } else if report.verdict == Verdict::Counterfeit(CounterfeitReason::NoWatermark) {
        "no_watermark"
    } else {
        "no_decode"
    }
}

/// Stamps the winning strategy on a finished report and emits the
/// resolution + verdict obs events.
fn finish(mut report: VerificationReport, resolution: Resolution) -> VerificationReport {
    report.resolution = resolution;
    obs::emit(ObsEvent::Resolution {
        strategy: resolution.strategy(),
    });
    obs::emit(ObsEvent::Verdict {
        verdict: report.verdict.name(),
    });
    report
}

/// The extraction window of an *imprinted* segment is not the 50 %
/// transition point: only the watermark's worn 0-cells (a small fraction of
/// the segment) are meant to still read programmed at `tPEW`. The usable
/// window is therefore the **plateau** right after the fresh-cell
/// transition — the first sweep point where the programmed count has
/// stopped falling (per-step drop below 1 % of the segment) but a worn
/// population still survives (`0 < cells_0 < total/2`).
fn drifted_window(curve: &crate::characterize::CharacterizationCurve) -> Option<Micros> {
    let total = curve.total_cells();
    if total == 0 {
        return None;
    }
    for pair in curve.points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let dropped = a.cells_0.saturating_sub(b.cells_0);
        if b.cells_0 > 0 && b.cells_0 < total / 2 && dropped < total / 100 {
            return Some(b.t_pe);
        }
    }
    None
}

/// Outcome of the re-characterization fallback.
enum Recharacterization {
    /// A usable 50 % transition time was found.
    Window(Micros),
    /// The curve had no usable transition (e.g. empty segment).
    NoWindow,
    /// Transient faults exhausted the retry budget mid-characterization.
    Faulted,
}

/// CRC-assisted soft-decision repair: when the signature fails, re-try the
/// decode with the lowest-confidence bits flipped (bits whose replica vote
/// was near a tie). Standard list-decoding practice; the CRC-16 gate keeps
/// the false-accept probability per candidate at 2⁻¹⁶, and only a handful
/// of candidates are tried.
///
/// This cannot help an attacker: flipping bits *toward a different valid
/// record* still has to clear the CRC, and the attacker cannot choose which
/// cells sit near the vote boundary.
fn soft_repair(bits: &[bool], extraction: &Extraction) -> Option<WatermarkRecord> {
    // Bits with the smallest vote margin, most uncertain first.
    let mut candidates: Vec<(usize, usize)> = extraction
        .votes()
        .iter()
        .enumerate()
        .map(|(i, v)| (i, v.margin()))
        .filter(|&(_, m)| m <= 1)
        .collect();
    candidates.sort_by_key(|&(_, m)| m);
    candidates.truncate(12);

    let try_bits = |flips: &[usize]| -> Option<WatermarkRecord> {
        let mut b = bits.to_vec();
        for &i in flips {
            b[i] = !b[i];
        }
        let wm = Watermark::from_bits(b).ok()?;
        WatermarkRecord::from_watermark(&wm).ok()
    };

    for (i, _) in &candidates {
        if let Some(r) = try_bits(&[*i]) {
            return Some(r);
        }
    }
    for (a_idx, (a, _)) in candidates.iter().enumerate() {
        for (b, _) in candidates.iter().skip(a_idx + 1) {
            if let Some(r) = try_bits(&[*a, *b]) {
                return Some(r);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imprint::Imprinter;
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    const MFG: u16 = 0x7C01;

    fn flash(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(4),
            FlashTimings::msp430(),
            seed,
        )
    }

    fn config() -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(80_000)
            .replicas(7)
            .build()
            .unwrap()
    }

    fn record(status: TestStatus) -> WatermarkRecord {
        WatermarkRecord {
            manufacturer_id: MFG,
            die_id: 42,
            speed_grade: 2,
            status,
            year_week: 1907,
        }
    }

    fn imprint(f: &mut FlashController, r: &WatermarkRecord) {
        let cfg = config();
        Imprinter::new(&cfg)
            .imprint(f, SegmentAddr::new(0), &r.to_watermark())
            .unwrap();
    }

    #[test]
    fn genuine_chip_verifies() {
        let mut f = flash(100);
        imprint(&mut f, &record(TestStatus::Accept));
        let v = Verifier::new(config(), MFG);
        let report = v.verify(&mut f, SegmentAddr::new(0)).unwrap();
        assert_eq!(report.verdict, Verdict::Genuine);
        assert_eq!(report.record.unwrap().die_id, 42);
    }

    #[test]
    fn rejected_die_detected() {
        let mut f = flash(101);
        imprint(&mut f, &record(TestStatus::Reject));
        let v = Verifier::new(config(), MFG);
        let report = v.verify(&mut f, SegmentAddr::new(0)).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Counterfeit(CounterfeitReason::RejectedDie)
        );
        assert!(
            report.record.is_some(),
            "record still decodes; status damns it"
        );
    }

    #[test]
    fn blank_chip_has_no_watermark() {
        let mut f = flash(102);
        let v = Verifier::new(config(), MFG);
        let report = v.verify(&mut f, SegmentAddr::new(0)).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Counterfeit(CounterfeitReason::NoWatermark)
        );
        assert!(report.record.is_none());
    }

    #[test]
    fn wrong_manufacturer_detected() {
        let mut f = flash(103);
        let mut r = record(TestStatus::Accept);
        r.manufacturer_id = 0x0BAD;
        imprint(&mut f, &r);
        let v = Verifier::new(config(), MFG);
        let report = v.verify(&mut f, SegmentAddr::new(0)).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Counterfeit(CounterfeitReason::WrongManufacturer { found: 0x0BAD })
        );
    }

    #[test]
    fn retry_ladder_can_be_disabled() {
        let mut f = flash(105);
        imprint(&mut f, &record(TestStatus::Accept));
        let v = Verifier::new(config(), MFG).with_retry_offsets(vec![0.0]);
        // Still expected to pass at the default operating point; the point
        // is the configuration surface, exercised here.
        let report = v.verify(&mut f, SegmentAddr::new(0)).unwrap();
        assert!(matches!(
            report.verdict,
            Verdict::Genuine | Verdict::Counterfeit(_)
        ));
        let v_empty = Verifier::new(config(), MFG).with_retry_offsets(vec![]);
        let report = v_empty.verify(&mut f, SegmentAddr::new(0)).unwrap();
        assert!(matches!(
            report.verdict,
            Verdict::Genuine | Verdict::Counterfeit(_)
        ));
    }

    #[test]
    fn soft_repair_fixes_a_single_low_margin_bit() {
        // Build an extraction-like vote set with one wrong low-margin bit
        // and check the repair path decodes the true record.
        let r = record(TestStatus::Accept);
        let true_bits = r.to_watermark().bits().to_vec();
        let mut bits = true_bits.clone();
        bits[26] = !bits[26];
        let votes: Vec<flashmark_ecc::MajorityVote> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let mut v = flashmark_ecc::MajorityVote::new();
                // Bit 26: 4-3 split (margin 1); everything else unanimous.
                let (ones, zeros) = match (i == 26, b) {
                    (true, true) => (4, 3),
                    (true, false) => (3, 4),
                    (false, true) => (7, 0),
                    (false, false) => (0, 7),
                };
                for _ in 0..ones {
                    v.push(true);
                }
                for _ in 0..zeros {
                    v.push(false);
                }
                v
            })
            .collect();
        // Assemble a minimal Extraction through the public constructor path:
        // run a real extraction for shape, then use soft_repair directly.
        let repaired = super::soft_repair(
            &bits,
            &crate::extract::Extraction::for_tests(votes, bits.clone(), 7),
        );
        assert_eq!(repaired, Some(r));
    }

    #[test]
    fn verification_is_repeatable() {
        let mut f = flash(104);
        imprint(&mut f, &record(TestStatus::Accept));
        let v = Verifier::new(config(), MFG);
        for _ in 0..3 {
            assert_eq!(
                v.verify(&mut f, SegmentAddr::new(0)).unwrap().verdict,
                Verdict::Genuine
            );
        }
    }

    /// A minimal flaky-interface double: NAKs the first `naks` operations,
    /// then forwards everything. (The dedicated fault-injection crate lives
    /// above this one, so these tests roll their own two-liner.)
    struct Flaky<F> {
        inner: F,
        naks: u64,
        ops: u64,
    }

    impl<F: FlashInterface> Flaky<F> {
        fn nak(&mut self) -> Result<(), flashmark_nor::NorError> {
            let op = self.ops;
            self.ops += 1;
            if op < self.naks {
                return Err(flashmark_nor::NorError::TransientNak);
            }
            Ok(())
        }
    }

    impl<F: FlashInterface> FlashInterface for Flaky<F> {
        fn geometry(&self) -> flashmark_nor::FlashGeometry {
            self.inner.geometry()
        }
        fn read_word(
            &mut self,
            w: flashmark_nor::WordAddr,
        ) -> Result<u16, flashmark_nor::NorError> {
            self.nak()?;
            self.inner.read_word(w)
        }
        fn program_word(
            &mut self,
            w: flashmark_nor::WordAddr,
            v: u16,
        ) -> Result<(), flashmark_nor::NorError> {
            self.nak()?;
            self.inner.program_word(w, v)
        }
        fn program_block(
            &mut self,
            s: SegmentAddr,
            v: &[u16],
        ) -> Result<(), flashmark_nor::NorError> {
            self.nak()?;
            self.inner.program_block(s, v)
        }
        fn erase_segment(&mut self, s: SegmentAddr) -> Result<(), flashmark_nor::NorError> {
            self.nak()?;
            self.inner.erase_segment(s)
        }
        fn partial_erase(
            &mut self,
            s: SegmentAddr,
            t: Micros,
        ) -> Result<(), flashmark_nor::NorError> {
            self.nak()?;
            self.inner.partial_erase(s, t)
        }
        fn erase_until_clean(&mut self, s: SegmentAddr) -> Result<Micros, flashmark_nor::NorError> {
            self.nak()?;
            self.inner.erase_until_clean(s)
        }
        fn elapsed(&self) -> flashmark_physics::Seconds {
            self.inner.elapsed()
        }
    }

    #[test]
    fn resilient_matches_verify_on_a_clean_chip() {
        let mut f = flash(106);
        imprint(&mut f, &record(TestStatus::Accept));
        let v = Verifier::new(config(), MFG);
        let seg = SegmentAddr::new(0);
        assert_eq!(v.verify(&mut f, seg).unwrap().verdict, Verdict::Genuine);
        assert_eq!(
            v.verify_resilient(&mut f, seg).unwrap().verdict,
            Verdict::Genuine
        );
    }

    #[test]
    fn resilient_retries_through_transient_errors() {
        let mut f = flash(107);
        imprint(&mut f, &record(TestStatus::Accept));
        let mut flaky = Flaky {
            inner: f,
            naks: 2,
            ops: 0,
        };
        let v = Verifier::new(config(), MFG);
        flashmark_obs::install(flashmark_obs::Collector::new(0));
        let report = v.verify_resilient(&mut flaky, SegmentAddr::new(0)).unwrap();
        let collector = flashmark_obs::take().unwrap();
        assert_eq!(report.verdict, Verdict::Genuine);
        // The nominal rung wins once the transient NAKs clear.
        assert_eq!(report.resolution, Resolution::Ladder { offset_us: 0.0 });
        assert_eq!(
            report.summary(),
            "genuine (resolved by ladder rung at +0.0 us)"
        );
        // The winning strategy is also surfaced as an obs event.
        assert_eq!(collector.metrics().counter("resolution", "ladder"), 1);
        assert!(collector.metrics().counter("retry", "verify_attempt") >= 1);
    }

    #[test]
    fn resilient_degrades_to_inconclusive_when_faults_persist() {
        let mut f = flash(108);
        imprint(&mut f, &record(TestStatus::Accept));
        let mut flaky = Flaky {
            inner: f,
            naks: u64::MAX, // never recovers
            ops: 0,
        };
        let v = Verifier::new(config(), MFG).with_transient_retries(2);
        let report = v.verify_resilient(&mut flaky, SegmentAddr::new(0)).unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Inconclusive(InconclusiveReason::TransientFaults)
        );
        assert!(report.record.is_none());
        assert_ne!(report.verdict, Verdict::Genuine);
        // The losing strategy is named in the report and the verdict text.
        assert_eq!(report.resolution, Resolution::RetriesExhausted);
        assert_eq!(
            report.summary(),
            "inconclusive: transient faults persisted past the retry budget \
             (resolved by transient retry budget exhausted)"
        );
    }

    #[test]
    fn resilient_recovers_a_drifted_window_by_recharacterizing() {
        // Publish a ladder whose every point sits far above the usable
        // window: plain verify fails with a signature mismatch, but the
        // resilient path re-characterizes the segment and decodes at the
        // re-derived transition time.
        let mut f = flash(110);
        imprint(&mut f, &record(TestStatus::Accept));
        let seg = SegmentAddr::new(0);
        let drifted = Verifier::new(config(), MFG).with_retry_offsets(vec![24.0, 28.0]);
        let plain = drifted.verify(&mut f, seg).unwrap();
        assert_ne!(
            plain.verdict,
            Verdict::Genuine,
            "a fully-drifted ladder must not decode directly"
        );
        flashmark_obs::install(flashmark_obs::Collector::new(0));
        let report = drifted.verify_resilient(&mut f, seg).unwrap();
        let collector = flashmark_obs::take().unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Genuine,
            "re-characterization must recover the drifted window"
        );
        // The fallback strategy (and its operating point) is surfaced.
        assert!(
            matches!(report.resolution, Resolution::Recharacterized { t_pew_us } if t_pew_us > 0.0),
            "resolution was {:?}",
            report.resolution
        );
        assert!(report.summary().contains("re-characterized window"));
        assert_eq!(
            collector.metrics().counter("resolution", "recharacterized"),
            1
        );
        // Both published rungs were walked (and failed) before the fallback.
        assert_eq!(collector.metrics().group_total("ladder"), 2);
    }
}
