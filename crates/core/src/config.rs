//! Flashmark configuration: the design-space knobs the paper evaluates.

use flashmark_physics::Micros;

use crate::error::CoreError;
use crate::layout::ReplicaLayout;

/// Parameters of the imprint/extract procedures.
///
/// Defaults follow the paper's recommended operating point: `NPE` = 60 K
/// stress cycles, 7 replicas, 3-read majority, accelerated imprint, and an
/// extraction window inside the low-BER valley of Fig. 9/11.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashmarkConfig {
    n_pe: u64,
    t_pew: Micros,
    replicas: usize,
    reads: usize,
    accelerated: bool,
    layout: ReplicaLayout,
}

impl FlashmarkConfig {
    /// Starts a builder with the recommended defaults.
    #[must_use]
    pub fn builder() -> FlashmarkConfigBuilder {
        FlashmarkConfigBuilder {
            config: Self {
                n_pe: 60_000,
                t_pew: Micros::new(30.0),
                replicas: 7,
                reads: 3,
                accelerated: true,
                layout: ReplicaLayout::Contiguous,
            },
        }
    }

    /// Number of imprinting P/E stress cycles (`NPE`).
    #[must_use]
    pub fn n_pe(&self) -> u64 {
        self.n_pe
    }

    /// Partial-erase time used during extraction (`tPEW`).
    #[must_use]
    pub fn t_pew(&self) -> Micros {
        self.t_pew
    }

    /// Number of watermark replicas (odd).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of reads per word in `AnalyzeSegment` (odd).
    #[must_use]
    pub fn reads(&self) -> usize {
        self.reads
    }

    /// Whether imprinting uses the accelerated (early-exit erase) schedule.
    #[must_use]
    pub fn accelerated(&self) -> bool {
        self.accelerated
    }

    /// Replica placement within the segment.
    #[must_use]
    pub fn layout(&self) -> ReplicaLayout {
        self.layout
    }
}

impl Default for FlashmarkConfig {
    fn default() -> Self {
        // The builder's seed config *is* the recommended operating point and
        // passes validation by construction; take it directly so Default
        // stays infallible without a panic path.
        Self::builder().config
    }
}

/// Builder for [`FlashmarkConfig`].
///
/// # Example
///
/// ```
/// use flashmark_core::FlashmarkConfig;
/// use flashmark_physics::Micros;
///
/// let cfg = FlashmarkConfig::builder()
///     .n_pe(40_000)
///     .t_pew(Micros::new(28.0))
///     .replicas(3)
///     .build()?;
/// assert_eq!(cfg.replicas(), 3);
/// # Ok::<(), flashmark_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlashmarkConfigBuilder {
    config: FlashmarkConfig,
}

impl FlashmarkConfigBuilder {
    /// Sets the imprinting stress-cycle count.
    #[must_use]
    pub fn n_pe(mut self, n: u64) -> Self {
        self.config.n_pe = n;
        self
    }

    /// Sets the extraction partial-erase time.
    #[must_use]
    pub fn t_pew(mut self, t: Micros) -> Self {
        self.config.t_pew = t;
        self
    }

    /// Sets the replica count.
    #[must_use]
    pub fn replicas(mut self, k: usize) -> Self {
        self.config.replicas = k;
        self
    }

    /// Sets the per-word read count of the majority analysis.
    #[must_use]
    pub fn reads(mut self, n: usize) -> Self {
        self.config.reads = n;
        self
    }

    /// Chooses the imprint schedule.
    #[must_use]
    pub fn accelerated(mut self, on: bool) -> Self {
        self.config.accelerated = on;
        self
    }

    /// Chooses the replica layout.
    #[must_use]
    pub fn layout(mut self, layout: ReplicaLayout) -> Self {
        self.config.layout = layout;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if a knob is out of range: zero `NPE`,
    /// non-positive `tPEW`, or an even replica/read count (majority voting
    /// needs odd counts).
    pub fn build(self) -> Result<FlashmarkConfig, CoreError> {
        let c = &self.config;
        if c.n_pe == 0 {
            return Err(CoreError::Config("n_pe must be non-zero"));
        }
        if !c.t_pew.is_finite() || c.t_pew.get() <= 0.0 {
            return Err(CoreError::Config("t_pew must be positive"));
        }
        if c.replicas == 0 || c.replicas.is_multiple_of(2) {
            return Err(CoreError::Config("replica count must be odd"));
        }
        if c.reads == 0 || c.reads.is_multiple_of(2) {
            return Err(CoreError::Config("read count must be odd"));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers_operating_point() {
        let c = FlashmarkConfig::default();
        assert_eq!(c.n_pe(), 60_000);
        assert_eq!(c.replicas(), 7);
        assert_eq!(c.reads(), 3);
        assert!(c.accelerated());
    }

    #[test]
    fn builder_round_trips() {
        let c = FlashmarkConfig::builder()
            .n_pe(40_000)
            .t_pew(Micros::new(23.0))
            .replicas(3)
            .reads(5)
            .accelerated(false)
            .layout(ReplicaLayout::Interleaved)
            .build()
            .unwrap();
        assert_eq!(c.n_pe(), 40_000);
        assert_eq!(c.t_pew(), Micros::new(23.0));
        assert_eq!(c.replicas(), 3);
        assert_eq!(c.reads(), 5);
        assert!(!c.accelerated());
        assert_eq!(c.layout(), ReplicaLayout::Interleaved);
    }

    #[test]
    fn rejects_bad_knobs() {
        assert!(FlashmarkConfig::builder().n_pe(0).build().is_err());
        assert!(FlashmarkConfig::builder()
            .t_pew(Micros::new(0.0))
            .build()
            .is_err());
        assert!(FlashmarkConfig::builder().replicas(4).build().is_err());
        assert!(FlashmarkConfig::builder().reads(2).build().is_err());
    }
}
