//! The cross-technology watermark abstraction: [`WatermarkScheme`].
//!
//! The Flashmark pipeline (enroll → imprint → extract → verify) is not
//! NOR-specific: the same irreversible-wear asymmetry exists in ReRAM
//! forming stress, and intrinsic NAND process variation supports an
//! enrollment/fuzzy-match fingerprint that needs no imprint step at all.
//! [`WatermarkScheme`] captures the shared shape so campaign drivers,
//! services, and tests can be written once and run over every backend:
//!
//! * **enroll** — manufacturer-side: derive the per-chip enrollment data
//!   (the watermark record for imprinting schemes, the helper data +
//!   calibration for PUF schemes).
//! * **imprint** — manufacturer-side: burn the mark into irreversible
//!   device state. Intrinsic schemes ([`WatermarkScheme::imprints`] =
//!   `false`) make this a free no-op.
//! * **extract** — inspector-side: recover the raw evidence through the
//!   digital interface.
//! * **verify** — inspector-side: classify the chip with the shared
//!   [`Verdict`] vocabulary (including `Inconclusive` degradation).
//!
//! Backends report failures through the unified [`SchemeError`], which
//! preserves the transient/persistent distinction
//! ([`SchemeError::is_transient`]) that the fault-handling retry ladders
//! key on.

use core::fmt;

use flashmark_nor::NorError;
use flashmark_physics::Seconds;

use crate::error::CoreError;
use crate::verify::Verdict;

/// Unified error type across watermark backends.
///
/// Every backend's native error converts into this ([`From`] impls live
/// with the backend crates), so scheme-generic code — campaign drivers,
/// the verification service, the retry ladder in `fault` — handles one
/// error vocabulary while the transiency classification of the native
/// error survives the conversion.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchemeError {
    /// A Flashmark-core procedure failed (layout, config, flash error).
    Core(CoreError),
    /// A backend-specific failure that has no core equivalent.
    Backend {
        /// Stable scheme name (matches [`WatermarkScheme::name`]).
        scheme: &'static str,
        /// Human-readable failure description.
        message: String,
        /// Whether a bounded retry of the same operation is the correct
        /// response (mirrors the backend error's `is_transient`).
        transient: bool,
    },
    /// Scheme parameters were invalid.
    Config(&'static str),
    /// The scheme does not support the requested operation (e.g. asking an
    /// intrinsic PUF scheme for a destructive imprint).
    Unsupported {
        /// Stable scheme name.
        scheme: &'static str,
        /// The unsupported operation.
        operation: &'static str,
    },
}

impl SchemeError {
    /// Whether the failure is transient: the operation failed for reasons
    /// that do not persist (interface NAKs, busy controllers, mid-operation
    /// power loss), so a bounded retry is the correct response. This is the
    /// property `fault`'s retry ladder keys on, preserved across every
    /// backend's error conversion.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Core(CoreError::Flash(e)) => e.is_transient(),
            Self::Core(_) | Self::Config(_) | Self::Unsupported { .. } => false,
            Self::Backend { transient, .. } => *transient,
        }
    }
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "core procedure failed: {e}"),
            Self::Backend {
                scheme, message, ..
            } => write!(f, "{scheme} backend error: {message}"),
            Self::Config(why) => write!(f, "invalid scheme parameters: {why}"),
            Self::Unsupported { scheme, operation } => {
                write!(f, "scheme {scheme} does not support {operation}")
            }
        }
    }
}

impl std::error::Error for SchemeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SchemeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<NorError> for SchemeError {
    fn from(e: NorError) -> Self {
        Self::Core(CoreError::Flash(e))
    }
}

/// What an imprint cost the manufacturer: stress cycles applied and
/// simulated wall time spent. Intrinsic (non-imprinting) schemes report
/// all-zero cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprintCost {
    /// Stress cycles applied to the marked region.
    pub cycles: u64,
    /// Simulated wall time the imprint took.
    pub elapsed: Seconds,
}

impl ImprintCost {
    /// The zero cost of a scheme with no imprint step.
    #[must_use]
    pub fn free() -> Self {
        Self {
            cycles: 0,
            elapsed: Seconds::new(0.0),
        }
    }
}

/// Scheme-generic verification outcome: the shared [`Verdict`] vocabulary
/// plus the cross-backend soft information campaign drivers compare.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeVerification {
    /// The verdict, in the vocabulary shared by every backend.
    pub verdict: Verdict,
    /// Stable label of the strategy that settled the verdict (ladder rung,
    /// re-characterization, fuzzy match, ...).
    pub resolution: &'static str,
    /// Measured mismatch against the enrollment, where the scheme can
    /// compute one: bit error rate for imprinting schemes, fractional
    /// fuzzy-match distance for PUF schemes. `None` when no evidence was
    /// recoverable (e.g. an inconclusive verification).
    pub mismatch: Option<f64>,
}

/// A watermark/fingerprint scheme over one memory technology.
///
/// Implementations exist for NOR tPEW wear watermarks
/// ([`NorTpew`](crate::nor_scheme::NorTpew)), ReRAM forming-voltage wear
/// (`flashmark_reram::ReramScheme`), and intrinsic NAND partial-program
/// PUFs (`flashmark_nand::puf::NandPuf`). The shared contract (pinned by
/// the workspace `scheme_contract` proptests):
///
/// * `verify` after `imprint(enroll(chip))` accepts a genuine chip;
/// * `verify` against a blank chip rejects (or is inconclusive — never
///   genuine);
/// * `imprint` never decreases wear ([`WatermarkScheme::wear_estimate`] is
///   monotone over the scheme lifecycle);
/// * every entry point is a pure function of `(chip seed, params)` — no
///   wall clock, no ambient RNG — so campaigns parallelize byte-identically.
pub trait WatermarkScheme {
    /// The device model this scheme drives.
    type Chip;
    /// Scheme parameters (operating point, addressing, identity).
    type Params;
    /// Per-chip enrollment data: what the manufacturer stores/publishes so
    /// an inspector can later verify the chip.
    type Enrollment;
    /// Raw extracted evidence (soft information) from one inspection.
    type Evidence;

    /// Stable scheme name — used as the registry/trend `scheme` tag and in
    /// campaign artifacts. Must be a lowercase identifier.
    fn name(&self) -> &'static str;

    /// Whether the scheme has a physical imprint step. Intrinsic
    /// fingerprint schemes return `false`: their mark is manufacturing
    /// variation itself, and [`WatermarkScheme::imprint`] is a free no-op.
    fn imprints(&self) -> bool {
        true
    }

    /// Manufacturer-side enrollment: derive the per-chip enrollment data.
    /// For imprinting schemes this is cheap bookkeeping (building the
    /// record); for PUF schemes it measures the chip and builds helper
    /// data, and is the expensive step.
    ///
    /// # Errors
    ///
    /// Backend or parameter errors.
    fn enroll(
        &self,
        chip: &mut Self::Chip,
        params: &Self::Params,
    ) -> Result<Self::Enrollment, SchemeError>;

    /// Manufacturer-side imprint: burn the enrollment's mark into
    /// irreversible device state, reporting what it cost. Schemes with
    /// [`WatermarkScheme::imprints`] `false` return [`ImprintCost::free`]
    /// without touching the chip.
    ///
    /// # Errors
    ///
    /// Backend or parameter errors.
    fn imprint(
        &self,
        chip: &mut Self::Chip,
        params: &Self::Params,
        enrollment: &Self::Enrollment,
    ) -> Result<ImprintCost, SchemeError>;

    /// Inspector-side extraction: recover the raw evidence through the
    /// digital interface.
    ///
    /// # Errors
    ///
    /// Backend or parameter errors.
    fn extract(
        &self,
        chip: &mut Self::Chip,
        params: &Self::Params,
        enrollment: &Self::Enrollment,
    ) -> Result<Self::Evidence, SchemeError>;

    /// Inspector-side verification: extract, compare against the
    /// enrollment, and classify with the shared [`Verdict`] vocabulary.
    /// Fault conditions degrade to [`Verdict::Inconclusive`]; only
    /// non-transient infrastructure failures surface as errors.
    ///
    /// # Errors
    ///
    /// Non-transient backend errors only.
    fn verify(
        &self,
        chip: &mut Self::Chip,
        params: &Self::Params,
        enrollment: &Self::Enrollment,
    ) -> Result<SchemeVerification, SchemeError>;

    /// Mismatch of one piece of extracted evidence against the enrollment
    /// (bit error rate / fuzzy distance), when comparable.
    fn evidence_mismatch(
        &self,
        enrollment: &Self::Enrollment,
        evidence: &Self::Evidence,
    ) -> Option<f64>;

    /// An estimate of the marked region's wear (mean equivalent cycles) —
    /// the quantity the shared contract requires to be monotone over the
    /// scheme lifecycle.
    fn wear_estimate(&self, chip: &mut Self::Chip, params: &Self::Params) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transiency_survives_conversion() {
        let t: SchemeError = NorError::TransientNak.into();
        assert!(t.is_transient());
        let p: SchemeError = NorError::Locked.into();
        assert!(!p.is_transient());
        let c: SchemeError = CoreError::Config("bad").into();
        assert!(!c.is_transient());
        let b = SchemeError::Backend {
            scheme: "reram",
            message: "forming pulse nak".into(),
            transient: true,
        };
        assert!(b.is_transient());
        assert!(!SchemeError::Unsupported {
            scheme: "nand_puf",
            operation: "imprint",
        }
        .is_transient());
    }

    #[test]
    fn displays_are_lowercase_prose() {
        let samples: Vec<SchemeError> = vec![
            CoreError::Config("x").into(),
            SchemeError::Backend {
                scheme: "reram",
                message: "bad forming voltage".into(),
                transient: false,
            },
            SchemeError::Config("zero replicas"),
            SchemeError::Unsupported {
                scheme: "nand_puf",
                operation: "imprint",
            },
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn free_imprint_cost_is_zero() {
        let c = ImprintCost::free();
        assert_eq!(c.cycles, 0);
        assert!(c.elapsed.get().abs() < f64::EPSILON);
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SchemeError>();
        check::<SchemeVerification>();
    }
}
