//! Multi-segment watermarks.
//!
//! The paper (Section V): "As watermarks require modest memory footprint,
//! watermark data can be imprinted at multiple locations." This module
//! imprints the same watermark into several segments and fuses the
//! extractions — combining *within-segment* replication with
//! *across-segment* redundancy, which also defends against localized damage
//! (an attacker grinding one segment, a bad block, etc.).

use flashmark_ecc::MajorityVote;
use flashmark_nor::interface::{BulkStress, FlashInterface};
use flashmark_nor::SegmentAddr;

use crate::config::FlashmarkConfig;
use crate::error::CoreError;
use crate::extract::{Extraction, Extractor};
use crate::imprint::{ImprintReport, Imprinter};
use crate::watermark::Watermark;

/// Result of a multi-segment extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiExtraction {
    /// Per-segment extractions, in the order given.
    pub per_segment: Vec<Extraction>,
    votes: Vec<MajorityVote>,
}

impl MultiExtraction {
    /// Bits after majority voting across *all* replicas of *all* segments.
    #[must_use]
    pub fn bits(&self) -> Vec<bool> {
        self.votes.iter().map(MajorityVote::winner).collect()
    }

    /// Per-bit vote tallies pooled across segments.
    #[must_use]
    pub fn votes(&self) -> &[MajorityVote] {
        &self.votes
    }

    /// The fused result as a watermark.
    ///
    /// # Errors
    ///
    /// [`CoreError::Watermark`] if empty (cannot happen via
    /// [`MultiSegment::extract`]).
    pub fn to_watermark(&self) -> Result<Watermark, CoreError> {
        Watermark::from_bits(self.bits())
    }

    /// Segments whose individual majority decode disagrees with the fused
    /// result in at least `min_bits` positions — damage/tamper localization.
    #[must_use]
    pub fn outlier_segments(&self, min_bits: usize) -> Vec<usize> {
        let fused = self.bits();
        self.per_segment
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.bits().iter().zip(&fused).filter(|(a, b)| a != b).count() >= min_bits
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Imprints/extracts one watermark across several segments.
#[derive(Debug, Clone)]
pub struct MultiSegment<'a> {
    config: &'a FlashmarkConfig,
    segments: Vec<SegmentAddr>,
}

impl<'a> MultiSegment<'a> {
    /// Creates a multi-segment scheme over `segments`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if `segments` is empty or has duplicates.
    pub fn new(config: &'a FlashmarkConfig, segments: Vec<SegmentAddr>) -> Result<Self, CoreError> {
        if segments.is_empty() {
            return Err(CoreError::Config(
                "multi-segment scheme needs at least one segment",
            ));
        }
        let mut sorted = segments.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != segments.len() {
            return Err(CoreError::Config(
                "multi-segment scheme has duplicate segments",
            ));
        }
        Ok(Self { config, segments })
    }

    /// The segments in use.
    #[must_use]
    pub fn segments(&self) -> &[SegmentAddr] {
        &self.segments
    }

    /// Imprints the watermark into every segment (fast path).
    ///
    /// # Errors
    ///
    /// Layout or flash errors.
    pub fn imprint<F: BulkStress>(
        &self,
        flash: &mut F,
        wm: &Watermark,
    ) -> Result<Vec<ImprintReport>, CoreError> {
        let imprinter = Imprinter::new(self.config);
        self.segments
            .iter()
            .map(|&seg| imprinter.imprint(flash, seg, wm))
            .collect()
    }

    /// Extracts from every segment and fuses the votes.
    ///
    /// # Errors
    ///
    /// Layout or flash errors.
    pub fn extract<F: FlashInterface>(
        &self,
        flash: &mut F,
        data_len: usize,
    ) -> Result<MultiExtraction, CoreError> {
        let extractor = Extractor::new(self.config);
        let mut per_segment = Vec::with_capacity(self.segments.len());
        let mut votes = vec![MajorityVote::new(); data_len];
        for &seg in &self.segments {
            let e = extractor.extract(flash, seg, data_len)?;
            for (i, v) in e.votes().iter().enumerate() {
                votes[i].push(v.winner());
            }
            per_segment.push(e);
        }
        Ok(MultiExtraction { per_segment, votes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::{FlashInterfaceExt, ImprintTiming};
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings};
    use flashmark_physics::{Micros, PhysicsParams};

    fn flash(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            seed,
        )
    }

    fn config() -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(70_000)
            .replicas(5)
            .t_pew(Micros::new(28.0))
            .build()
            .unwrap()
    }

    fn segs() -> Vec<SegmentAddr> {
        vec![
            SegmentAddr::new(1),
            SegmentAddr::new(3),
            SegmentAddr::new(5),
        ]
    }

    #[test]
    fn rejects_empty_or_duplicate_segments() {
        let cfg = config();
        assert!(MultiSegment::new(&cfg, vec![]).is_err());
        assert!(MultiSegment::new(&cfg, vec![SegmentAddr::new(1), SegmentAddr::new(1)]).is_err());
    }

    #[test]
    fn multi_segment_roundtrip() {
        let cfg = config();
        let ms = MultiSegment::new(&cfg, segs()).unwrap();
        let mut f = flash(0x3317);
        let wm = Watermark::from_ascii("MULTI").unwrap();
        let reports = ms.imprint(&mut f, &wm).unwrap();
        assert_eq!(reports.len(), 3);
        let e = ms.extract(&mut f, wm.len()).unwrap();
        assert_eq!(e.bits(), wm.bits());
        assert!(
            e.votes().iter().all(|v| v.total() == 3),
            "one vote per segment"
        );
    }

    #[test]
    fn survives_destruction_of_one_segment() {
        let cfg = config();
        let ms = MultiSegment::new(&cfg, segs()).unwrap();
        let mut f = flash(0x3318);
        let wm = Watermark::from_ascii("SURVIVE").unwrap();
        ms.imprint(&mut f, &wm).unwrap();

        // Attacker obliterates one copy by stressing the whole segment.
        let words = f.geometry().words_per_segment();
        f.bulk_imprint(
            SegmentAddr::new(3),
            &vec![0u16; words],
            60_000,
            ImprintTiming::Accelerated,
        )
        .unwrap();
        f.erase_segment(SegmentAddr::new(3)).unwrap();

        let e = ms.extract(&mut f, wm.len()).unwrap();
        assert_eq!(e.bits(), wm.bits(), "2-of-3 segments still carry the day");
        let outliers = e.outlier_segments(8);
        assert_eq!(outliers, vec![1], "the destroyed copy is localized");
    }

    #[test]
    fn imprint_leaves_every_segment_programmed() {
        let cfg = config();
        let ms = MultiSegment::new(&cfg, segs()).unwrap();
        let mut f = flash(0x3319);
        let wm = Watermark::from_ascii("X").unwrap();
        ms.imprint(&mut f, &wm).unwrap();
        for &seg in ms.segments() {
            let words = f.read_segment(seg).unwrap();
            assert!(
                words.iter().any(|&w| w != 0xFFFF),
                "segment {seg} untouched"
            );
        }
    }
}
