//! The manufacturer's published extraction recipe, derived from family
//! characterization.
//!
//! The paper (Section IV): the extraction time window "is determined by the
//! manufacturer using the characterization process described in Section III
//! for each family of devices and can be publicly communicated to system
//! integrators." This module is that workflow: characterize several sample
//! chips, verify they behave consistently (Section V notes "flash memories
//! within the same family show consistent behavior"), intersect their usable
//! windows, and emit the [`ExtractionRecipe`] the verifier ships with.

use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

use crate::characterize::{characterize_segment, SweepSpec};
use crate::config::{FlashmarkConfig, FlashmarkConfigBuilder};
use crate::error::CoreError;
use crate::window::{select_t_pew, WindowChoice};

/// The publicly communicated extraction parameters for a device family.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionRecipe {
    /// Recommended partial-erase time.
    pub t_pew: Micros,
    /// Usable window (intersection across sample chips).
    pub window_lo: Micros,
    /// See `window_lo`.
    pub window_hi: Micros,
    /// Replica count the manufacturer imprints.
    pub replicas: usize,
    /// Reads per word during analysis.
    pub reads: usize,
    /// Stress level the characterization used (kcycles).
    pub reference_stress_kcycles: f64,
}

impl ExtractionRecipe {
    /// Builds a [`FlashmarkConfig`] from the recipe (imprint cycles are the
    /// manufacturer's choice, not part of the public recipe).
    #[must_use]
    pub fn config(&self, n_pe: u64) -> FlashmarkConfigBuilder {
        FlashmarkConfig::builder()
            .n_pe(n_pe)
            .t_pew(self.t_pew)
            .replicas(self.replicas)
            .reads(self.reads)
    }
}

/// Per-chip and family-level characterization results.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyCharacterization {
    /// The derived public recipe.
    pub recipe: ExtractionRecipe,
    /// Each sample chip's individual window.
    pub per_chip: Vec<WindowChoice>,
}

impl FamilyCharacterization {
    /// Spread (µs) of the per-chip optimal times — a consistency metric for
    /// the family ("chips within the family behave consistently").
    #[must_use]
    pub fn optimum_spread(&self) -> Micros {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for w in &self.per_chip {
            lo = lo.min(w.t_pew.get());
            hi = hi.max(w.t_pew.get());
        }
        if self.per_chip.is_empty() {
            Micros::new(0.0)
        } else {
            Micros::new(hi - lo)
        }
    }

    /// Worst per-chip separation fraction.
    #[must_use]
    pub fn worst_separation(&self) -> f64 {
        self.per_chip
            .iter()
            .map(WindowChoice::separation)
            .fold(1.0, f64::min)
    }
}

/// Characterizes a family from sample chips and derives the public recipe.
///
/// Each sample chip donates two segments: `fresh_seg` stays untouched and
/// `scratch_seg` is stressed `reference_stress_kcycles` before the sweep.
/// The recipe window is the intersection of every chip's usable window (with
/// `window_slack` cells of tolerance), and `t_pew` is the mean of the
/// per-chip optima clamped into that intersection.
///
/// # Errors
///
/// Flash/configuration errors, or [`CoreError::Config`] when no samples are
/// given or the windows do not overlap (an inconsistent family, which must
/// not be papered over).
#[allow(clippy::too_many_arguments)]
pub fn derive_recipe<F: FlashInterface + BulkStress>(
    samples: &mut [F],
    fresh_seg: SegmentAddr,
    scratch_seg: SegmentAddr,
    reference_stress_kcycles: f64,
    sweep: &SweepSpec,
    window_slack: usize,
    replicas: usize,
    reads: usize,
) -> Result<FamilyCharacterization, CoreError> {
    let mut per_chip = Vec::with_capacity(samples.len());
    for chip in samples.iter_mut() {
        per_chip.push(characterize_sample(
            chip,
            fresh_seg,
            scratch_seg,
            reference_stress_kcycles,
            sweep,
            window_slack,
            reads,
        )?);
    }
    fuse_windows(per_chip, reference_stress_kcycles, replicas, reads)
}

/// The per-chip half of [`derive_recipe`]: stress the scratch segment,
/// characterize both segments, and select this chip's window. Each chip is
/// independent, so callers may run this stage on sample chips in parallel
/// and pass the windows (in chip order) to [`fuse_windows`] — the result is
/// identical to the serial [`derive_recipe`].
///
/// # Errors
///
/// Flash/configuration errors.
pub fn characterize_sample<F: FlashInterface + BulkStress>(
    chip: &mut F,
    fresh_seg: SegmentAddr,
    scratch_seg: SegmentAddr,
    reference_stress_kcycles: f64,
    sweep: &SweepSpec,
    window_slack: usize,
    reads: usize,
) -> Result<WindowChoice, CoreError> {
    let words = chip.geometry().words_per_segment();
    chip.bulk_imprint(
        scratch_seg,
        &vec![0u16; words],
        (reference_stress_kcycles * 1000.0) as u64,
        ImprintTiming::Accelerated,
    )?;
    chip.erase_segment(scratch_seg)?;
    let fresh = characterize_segment(chip, fresh_seg, sweep, reads)?;
    let worn = characterize_segment(chip, scratch_seg, sweep, reads)?;
    select_t_pew(&fresh, &worn, window_slack)
}

/// The fusion half of [`derive_recipe`]: intersect the per-chip windows and
/// clamp the mean optimum into the intersection.
///
/// # Errors
///
/// [`CoreError::Config`] when `per_chip` is empty or the windows do not
/// overlap (an inconsistent family, which must not be papered over).
pub fn fuse_windows(
    per_chip: Vec<WindowChoice>,
    reference_stress_kcycles: f64,
    replicas: usize,
    reads: usize,
) -> Result<FamilyCharacterization, CoreError> {
    if per_chip.is_empty() {
        return Err(CoreError::Config(
            "family characterization needs at least one sample chip",
        ));
    }
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut sum = 0.0;
    for w in &per_chip {
        lo = lo.max(w.window_lo.get());
        hi = hi.min(w.window_hi.get());
        sum += w.t_pew.get();
    }
    if lo > hi {
        return Err(CoreError::Config(
            "sample chips' extraction windows do not overlap",
        ));
    }
    let t_pew = Micros::new((sum / per_chip.len() as f64).clamp(lo, hi));

    Ok(FamilyCharacterization {
        recipe: ExtractionRecipe {
            t_pew,
            window_lo: Micros::new(lo),
            window_hi: Micros::new(hi),
            replicas,
            reads,
            reference_stress_kcycles,
        },
        per_chip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    fn samples(n: u64) -> Vec<FlashController> {
        (0..n)
            .map(|i| {
                FlashController::new(
                    PhysicsParams::msp430_like(),
                    FlashGeometry::single_bank(4),
                    FlashTimings::msp430(),
                    0xFA_0000 + i,
                )
            })
            .collect()
    }

    fn sweep() -> SweepSpec {
        SweepSpec::new(Micros::new(14.0), Micros::new(50.0), Micros::new(2.0)).unwrap()
    }

    #[test]
    fn family_of_three_yields_consistent_recipe() {
        let mut chips = samples(3);
        let fam = derive_recipe(
            &mut chips,
            SegmentAddr::new(0),
            SegmentAddr::new(1),
            50.0,
            &sweep(),
            260,
            7,
            3,
        )
        .unwrap();
        assert_eq!(fam.per_chip.len(), 3);
        // The paper's observed family consistency: optima within a few µs.
        assert!(
            fam.optimum_spread().get() <= 8.0,
            "spread {}",
            fam.optimum_spread()
        );
        assert!(
            fam.worst_separation() > 0.8,
            "separation {}",
            fam.worst_separation()
        );
        let r = &fam.recipe;
        assert!(r.window_lo.get() <= r.t_pew.get() && r.t_pew.get() <= r.window_hi.get());
        // The recipe builds a usable config.
        let cfg = r.config(60_000).build().unwrap();
        assert_eq!(cfg.t_pew(), r.t_pew);
        assert_eq!(cfg.replicas(), 7);
    }

    #[test]
    fn empty_family_rejected() {
        let mut none: Vec<FlashController> = Vec::new();
        assert!(matches!(
            derive_recipe(
                &mut none,
                SegmentAddr::new(0),
                SegmentAddr::new(1),
                50.0,
                &sweep(),
                100,
                7,
                3
            ),
            Err(CoreError::Config(_))
        ));
    }
}
