//! Watermark imprinting (paper Fig. 7): repeated erase/program stress.
//!
//! `ImprintFlashmark(SegAddr, NPE, Watermark)`:
//!
//! ```text
//! for stress = 1 to NPE
//!     erase the entire segment            (all cells read 1)
//!     program each word with the pattern  (0-bits stressed)
//! ```
//!
//! Two schedules are provided, matching the paper's Section V:
//!
//! * **baseline** — a full-length segment erase every cycle (≈34.5 ms per
//!   cycle ⇒ 1380 s at NPE = 40 K);
//! * **accelerated** — each erase exits as soon as the segment reads clean
//!   ("premature exit … without any negative impact on the wear level"),
//!   ≈3.5× faster (387 s at 40 K).
//!
//! [`Imprinter::imprint`] is the closed-form simulator fast path (requires
//! [`BulkStress`]); [`Imprinter::imprint_via_cycles`] is the faithful loop
//! that any [`FlashInterface`] (including real hardware) can run. Tests
//! assert the two leave identical wear. The fast path applies all `NPE`
//! cycles of wear per cell in O(cells) — independent of `NPE` — via the
//! array's batched bulk-stress kernel, which is why the trial engine can
//! afford a fresh per-trial chip for every stress level.

use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::SegmentAddr;
use flashmark_obs as obs;
use flashmark_physics::Seconds;

use crate::config::FlashmarkConfig;
use crate::error::CoreError;
use crate::layout::SegmentLayout;
use crate::watermark::Watermark;

/// Result of an imprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ImprintReport {
    /// Stress cycles applied (`NPE`).
    pub cycles: u64,
    /// Simulated wall time the imprint took.
    pub elapsed: Seconds,
    /// Whether the accelerated schedule was used.
    pub accelerated: bool,
    /// The segment program pattern (one word per segment word).
    pub pattern_words: Vec<u16>,
}

/// Imprints watermarks into segments according to a [`FlashmarkConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Imprinter<'a> {
    config: &'a FlashmarkConfig,
}

impl<'a> Imprinter<'a> {
    /// Creates an imprinter.
    #[must_use]
    pub fn new(config: &'a FlashmarkConfig) -> Self {
        Self { config }
    }

    fn layout_for(self, wm: &Watermark) -> Result<SegmentLayout, CoreError> {
        SegmentLayout::new(wm.len(), self.config.replicas(), self.config.layout())
    }

    /// The segment pattern (replicated, laid out) for a watermark on a
    /// given device.
    ///
    /// # Errors
    ///
    /// Layout/size errors.
    pub fn pattern<F: FlashInterface>(
        &self,
        flash: &F,
        wm: &Watermark,
    ) -> Result<Vec<u16>, CoreError> {
        let layout = self.layout_for(wm)?;
        layout.check_fits(flash.geometry())?;
        layout.pattern_words(wm.bits(), flash.geometry())
    }

    /// Imprints using the simulator's closed-form fast path. End state and
    /// wear are identical to [`Imprinter::imprint_via_cycles`]; the
    /// simulated clock advances by what the configured schedule
    /// (baseline/accelerated) would take.
    ///
    /// # Errors
    ///
    /// Layout or flash errors.
    pub fn imprint<F: BulkStress>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        wm: &Watermark,
    ) -> Result<ImprintReport, CoreError> {
        let _span = obs::span("imprint");
        let pattern = self.pattern(flash, wm)?;
        let timing = if self.config.accelerated() {
            ImprintTiming::Accelerated
        } else {
            ImprintTiming::Baseline
        };
        let elapsed = flash.bulk_imprint(seg, &pattern, self.config.n_pe(), timing)?;
        Ok(ImprintReport {
            cycles: self.config.n_pe(),
            elapsed,
            accelerated: self.config.accelerated(),
            pattern_words: pattern,
        })
    }

    /// Imprints with the faithful cycle-by-cycle loop of Fig. 7 — works on
    /// any [`FlashInterface`] (this is what runs on real hardware). Takes
    /// `NPE × (erase + program)` simulated (and real!) time; use small
    /// `n_pe` in tests.
    ///
    /// # Errors
    ///
    /// Layout or flash errors.
    pub fn imprint_via_cycles<F: FlashInterface>(
        &self,
        flash: &mut F,
        seg: SegmentAddr,
        wm: &Watermark,
    ) -> Result<ImprintReport, CoreError> {
        let _span = obs::span("imprint");
        let pattern = self.pattern(flash, wm)?;
        let start = flash.elapsed();
        for _ in 0..self.config.n_pe() {
            if self.config.accelerated() {
                flash.erase_until_clean(seg)?;
            } else {
                flash.erase_segment(seg)?;
            }
            flash.program_block(seg, &pattern)?;
        }
        Ok(ImprintReport {
            cycles: self.config.n_pe(),
            elapsed: flash.elapsed() - start,
            accelerated: self.config.accelerated(),
            pattern_words: pattern,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::FlashInterface;
    use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, WordAddr};
    use flashmark_physics::PhysicsParams;

    fn flash(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            seed,
        )
    }

    fn config(n_pe: u64, accelerated: bool) -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(n_pe)
            .replicas(3)
            .accelerated(accelerated)
            .build()
            .unwrap()
    }

    #[test]
    fn imprint_leaves_pattern_visible() {
        let mut f = flash(1);
        let cfg = config(1_000, false);
        let wm = Watermark::from_ascii("TC").unwrap();
        let seg = SegmentAddr::new(0);
        let report = Imprinter::new(&cfg).imprint(&mut f, seg, &wm).unwrap();
        assert_eq!(report.cycles, 1_000);
        // After imprint the segment holds the (replicated) pattern.
        assert_eq!(f.read_word(WordAddr::new(0)).unwrap(), 0x4354);
    }

    #[test]
    fn bulk_and_loop_wear_match() {
        let wm = Watermark::from_ascii("M").unwrap();
        let cfg = config(40, false);
        let seg = SegmentAddr::new(0);

        let mut a = flash(9);
        Imprinter::new(&cfg).imprint(&mut a, seg, &wm).unwrap();
        let bulk = a.wear_stats(seg);

        let mut b = flash(9);
        Imprinter::new(&cfg)
            .imprint_via_cycles(&mut b, seg, &wm)
            .unwrap();
        let looped = b.wear_stats(seg);

        // First loop cycle erases an already-erased segment, so the loop can
        // lag by at most ~one erase weight per cell.
        assert!(
            (bulk.max_cycles - looped.max_cycles).abs() <= 1.0,
            "bulk {bulk:?} vs loop {looped:?}"
        );
        assert!((bulk.mean_cycles - looped.mean_cycles).abs() <= 1.0);
    }

    #[test]
    fn stressed_cells_wear_spared_cells_do_not() {
        let mut f = flash(2);
        let cfg = config(10_000, false);
        // One zero bit, rest ones.
        let wm = Watermark::from_bits(vec![false, true, true, true]).unwrap();
        let seg = SegmentAddr::new(1);
        Imprinter::new(&cfg).imprint(&mut f, seg, &wm).unwrap();
        let stats = f.wear_stats(seg);
        assert!(stats.max_cycles > 9_000.0, "stressed cells near NPE wear");
        assert!(stats.min_cycles < 500.0, "untouched cells stay fresh");
    }

    #[test]
    fn accelerated_schedule_is_faster() {
        let wm = Watermark::from_ascii("SPEED").unwrap();
        let seg = SegmentAddr::new(2);
        let mut slow = flash(3);
        let r_slow = Imprinter::new(&config(5_000, false))
            .imprint(&mut slow, seg, &wm)
            .unwrap();
        let mut fast = flash(3);
        let r_fast = Imprinter::new(&config(5_000, true))
            .imprint(&mut fast, seg, &wm)
            .unwrap();
        assert!(r_fast.elapsed.get() < r_slow.elapsed.get() / 2.5);
        assert!(r_fast.accelerated && !r_slow.accelerated);
    }

    #[test]
    fn loop_accelerated_uses_early_exit() {
        let wm = Watermark::from_ascii("X").unwrap();
        let seg = SegmentAddr::new(3);
        let mut f = flash(4);
        let cfg = config(5, true);
        Imprinter::new(&cfg)
            .imprint_via_cycles(&mut f, seg, &wm)
            .unwrap();
        assert_eq!(f.counters().early_exit_erases, 5);
        assert_eq!(f.counters().segment_erases, 0);
    }

    #[test]
    fn oversized_watermark_rejected() {
        let mut f = flash(5);
        let cfg = FlashmarkConfig::builder().replicas(7).build().unwrap();
        let wm = Watermark::from_bits(vec![false; 1000]).unwrap(); // 7000 > 4096
        assert!(matches!(
            Imprinter::new(&cfg).imprint(&mut f, SegmentAddr::new(0), &wm),
            Err(CoreError::TooLarge { .. })
        ));
    }
}
