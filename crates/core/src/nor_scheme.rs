//! The paper's NOR tPEW wear watermark as a [`WatermarkScheme`].
//!
//! [`NorTpew`] wraps the existing [`Imprinter`]/[`Extractor`]/[`Verifier`]
//! pipeline unchanged — the scheme layer is pure delegation, so verdicts
//! produced through the trait are bit-identical to calls made directly
//! against the concrete NOR API (pinned by the `backend_campaign` legacy
//! cross-check and the tests below).

use flashmark_nor::{FlashController, SegmentAddr};

use crate::config::FlashmarkConfig;
use crate::extract::{Extraction, Extractor};
use crate::imprint::Imprinter;
use crate::scheme::{ImprintCost, SchemeError, SchemeVerification, WatermarkScheme};
use crate::verify::Verifier;
use crate::watermark::{Watermark, WatermarkRecord, RECORD_BITS};

/// Parameters of a NOR tPEW verification campaign: the Flashmark operating
/// point, the reserved segment, and the manufacturer identity the inspector
/// expects.
#[derive(Debug, Clone, PartialEq)]
pub struct NorTpewParams {
    /// Flashmark operating point (`NPE`, `tPEW`, replicas, schedule).
    pub config: FlashmarkConfig,
    /// The reserved watermark segment.
    pub seg: SegmentAddr,
    /// Manufacturer ID the inspector expects in the record.
    pub manufacturer_id: u16,
    /// The record the manufacturer imprints at die sort.
    pub record: WatermarkRecord,
}

/// NOR enrollment: the signed record and its imprintable bit pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct NorEnrollment {
    /// The die-sort record (identity, grade, status, CRC-16).
    pub record: WatermarkRecord,
    /// The record as the imprinted watermark pattern.
    pub watermark: Watermark,
}

/// The existing NOR tPEW scheme behind the [`WatermarkScheme`] facade.
#[derive(Debug, Clone, Copy, Default)]
pub struct NorTpew;

impl WatermarkScheme for NorTpew {
    type Chip = FlashController;
    type Params = NorTpewParams;
    type Enrollment = NorEnrollment;
    type Evidence = Extraction;

    fn name(&self) -> &'static str {
        "nor_tpew"
    }

    fn enroll(
        &self,
        _chip: &mut FlashController,
        params: &NorTpewParams,
    ) -> Result<NorEnrollment, SchemeError> {
        // Enrollment for an imprinting scheme is pure bookkeeping: freeze
        // the signed record and its bit pattern. No chip measurement needed.
        Ok(NorEnrollment {
            record: params.record,
            watermark: params.record.to_watermark(),
        })
    }

    fn imprint(
        &self,
        chip: &mut FlashController,
        params: &NorTpewParams,
        enrollment: &NorEnrollment,
    ) -> Result<ImprintCost, SchemeError> {
        let report =
            Imprinter::new(&params.config).imprint(chip, params.seg, &enrollment.watermark)?;
        Ok(ImprintCost {
            cycles: report.cycles,
            elapsed: report.elapsed,
        })
    }

    fn extract(
        &self,
        chip: &mut FlashController,
        params: &NorTpewParams,
        _enrollment: &NorEnrollment,
    ) -> Result<Extraction, SchemeError> {
        Ok(Extractor::new(&params.config).extract(chip, params.seg, RECORD_BITS)?)
    }

    fn verify(
        &self,
        chip: &mut FlashController,
        params: &NorTpewParams,
        enrollment: &NorEnrollment,
    ) -> Result<SchemeVerification, SchemeError> {
        let report = Verifier::new(params.config.clone(), params.manufacturer_id)
            .verify_resilient(chip, params.seg)?;
        let mismatch = self.evidence_mismatch(enrollment, &report.extraction);
        Ok(SchemeVerification {
            verdict: report.verdict,
            resolution: report.resolution.strategy(),
            mismatch,
        })
    }

    fn evidence_mismatch(&self, enrollment: &NorEnrollment, evidence: &Extraction) -> Option<f64> {
        (evidence.bits().len() == enrollment.watermark.len())
            .then(|| evidence.ber_against(&enrollment.watermark))
    }

    fn wear_estimate(&self, chip: &mut FlashController, params: &NorTpewParams) -> f64 {
        chip.wear_stats(params.seg).mean_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{inspect, provision};
    use crate::verify::{CounterfeitReason, Verdict};
    use crate::watermark::TestStatus;
    use flashmark_nor::{FlashGeometry, FlashTimings};
    use flashmark_physics::PhysicsParams;

    fn chip(seed: u64) -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            seed,
        )
    }

    fn params(manufacturer_id: u16, status: TestStatus) -> NorTpewParams {
        NorTpewParams {
            config: FlashmarkConfig::builder()
                .n_pe(80_000)
                .replicas(7)
                .t_pew(flashmark_physics::Micros::new(28.0))
                .build()
                .unwrap(),
            seg: SegmentAddr::new(0),
            manufacturer_id,
            record: WatermarkRecord {
                manufacturer_id,
                die_id: 7,
                speed_grade: 2,
                status,
                year_week: 2031,
            },
        }
    }

    #[test]
    fn genuine_roundtrip_through_the_trait() {
        let scheme = NorTpew;
        let p = params(0x1001, TestStatus::Accept);
        let mut c = chip(11);
        let (enrollment, cost) = provision(&scheme, &mut c, &p).unwrap();
        assert_eq!(cost.cycles, 80_000);
        assert!(cost.elapsed.get() > 0.0);
        let v = inspect(&scheme, &mut c, &p, &enrollment).unwrap();
        assert_eq!(v.verdict, Verdict::Genuine);
        assert_eq!(v.resolution, "ladder");
        assert!(v.mismatch.unwrap() < 0.05, "ber {:?}", v.mismatch);
    }

    #[test]
    fn blank_chip_rejects() {
        let scheme = NorTpew;
        let p = params(0x1001, TestStatus::Accept);
        let mut c = chip(12);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let v = scheme.verify(&mut c, &p, &enrollment).unwrap();
        assert_eq!(
            v.verdict,
            Verdict::Counterfeit(CounterfeitReason::NoWatermark)
        );
    }

    #[test]
    fn trait_verdict_matches_direct_verifier() {
        // The scheme layer is pure delegation: verdict and resolution must
        // be identical to a direct Verifier call on an identically-seeded
        // chip (the no-behavior-drift acceptance criterion).
        for (seed, status) in [(21, TestStatus::Accept), (22, TestStatus::Reject)] {
            let scheme = NorTpew;
            let p = params(0x2002, status);
            let mut via_trait = chip(seed);
            let (enrollment, _) = provision(&scheme, &mut via_trait, &p).unwrap();
            let v = scheme.verify(&mut via_trait, &p, &enrollment).unwrap();

            let mut direct = chip(seed);
            Imprinter::new(&p.config)
                .imprint(&mut direct, p.seg, &p.record.to_watermark())
                .unwrap();
            let report = Verifier::new(p.config.clone(), p.manufacturer_id)
                .verify_resilient(&mut direct, p.seg)
                .unwrap();
            assert_eq!(v.verdict, report.verdict);
            assert_eq!(v.resolution, report.resolution.strategy());
        }
    }

    #[test]
    fn wear_is_monotone_over_the_lifecycle() {
        let scheme = NorTpew;
        let p = params(0x1001, TestStatus::Accept);
        let mut c = chip(13);
        let blank_wear = scheme.wear_estimate(&mut c, &p);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        scheme.imprint(&mut c, &p, &enrollment).unwrap();
        let imprinted = scheme.wear_estimate(&mut c, &p);
        assert!(imprinted > blank_wear);
        scheme.verify(&mut c, &p, &enrollment).unwrap();
        assert!(scheme.wear_estimate(&mut c, &p) >= imprinted);
    }

    #[test]
    fn scheme_name_and_imprints() {
        assert_eq!(NorTpew.name(), "nor_tpew");
        assert!(NorTpew.imprints());
    }
}
