//! Tamper detection (paper Section V).
//!
//! Wear is one-way: an attacker with the chip in hand can stress *more*
//! cells (turn good → bad) but can never refresh a worn cell (bad → good).
//! Two defenses make that one-way capability useless:
//!
//! * **balance constraints** ([`BalancePolicy`]) — the watermark is encoded
//!   with a known good/bad ratio (e.g. Manchester-balanced, exactly 50 %);
//!   any added stress skews the ratio;
//! * **signatures** — a CRC over the payload is imprinted alongside it (see
//!   [`WatermarkRecord`](crate::watermark::WatermarkRecord)); flipping any
//!   payload bit breaks the signature, and the attacker cannot flip
//!   signature bits in the bad→good direction to compensate.
//!
//! [`FlipAsymmetry`] quantifies which direction extracted bits moved
//! relative to a reference — the forensic view of Fig. 10's observation.

use crate::error::CoreError;
use crate::watermark::Watermark;

/// A constraint on the fraction of 1-bits ("good" cells) in a watermark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancePolicy {
    /// Expected fraction of 1-bits.
    pub expected_ones_fraction: f64,
    /// Allowed absolute deviation.
    pub tolerance: f64,
}

impl BalancePolicy {
    /// An exact-half policy with the given tolerance — what a
    /// Manchester-balanced watermark satisfies by construction.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if the tolerance is not in `(0, 0.5)`.
    pub fn half(tolerance: f64) -> Result<Self, CoreError> {
        if !(0.0 < tolerance && tolerance < 0.5) {
            return Err(CoreError::Config("balance tolerance must be in (0, 0.5)"));
        }
        Ok(Self {
            expected_ones_fraction: 0.5,
            tolerance,
        })
    }

    /// Whether a bit string satisfies the policy.
    #[must_use]
    pub fn check(&self, bits: &[bool]) -> bool {
        if bits.is_empty() {
            return false;
        }
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        (ones - self.expected_ones_fraction).abs() <= self.tolerance
    }

    /// Whether a watermark satisfies the policy.
    #[must_use]
    pub fn check_watermark(&self, wm: &Watermark) -> bool {
        self.check(wm.bits())
    }
}

/// Directional flip counts between a reference and an observed bit string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlipAsymmetry {
    /// Bits that went 1 → 0 (good → bad): achievable by an attacker.
    pub good_to_bad: usize,
    /// Bits that went 0 → 1 (bad → good): physically impossible to induce;
    /// any occurrences are extraction noise, not tampering.
    pub bad_to_good: usize,
}

impl FlipAsymmetry {
    /// Compares an observed bit string against the reference.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn between(reference: &[bool], observed: &[bool]) -> Self {
        assert_eq!(reference.len(), observed.len(), "length mismatch");
        let mut a = Self::default();
        for (&r, &o) in reference.iter().zip(observed) {
            match (r, o) {
                (true, false) => a.good_to_bad += 1,
                (false, true) => a.bad_to_good += 1,
                _ => {}
            }
        }
        a
    }

    /// Total flips.
    #[must_use]
    pub fn total(&self) -> usize {
        self.good_to_bad + self.bad_to_good
    }

    /// Whether the flips are *consistent with tampering*: a meaningful
    /// number of good→bad flips with (near-)zero bad→good flips. Random
    /// extraction noise produces flips in both directions (dominated by
    /// bad→good, per Fig. 10); a stress attack produces strictly one-way
    /// changes.
    #[must_use]
    pub fn looks_tampered(&self, min_flips: usize) -> bool {
        self.good_to_bad >= min_flips && self.good_to_bad > 4 * self.bad_to_good
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_watermark_passes_half_policy() {
        let wm = Watermark::from_ascii("SUPPLYCHAIN").unwrap().balanced();
        let policy = BalancePolicy::half(0.05).unwrap();
        assert!(policy.check_watermark(&wm));
    }

    #[test]
    fn stress_attack_breaks_balance() {
        let wm = Watermark::from_ascii("OK").unwrap().balanced();
        let mut attacked = wm.bits().to_vec();
        // Attacker stresses 8 of the good cells (1 -> 0).
        let mut flipped = 0;
        for b in &mut attacked {
            if *b && flipped < 8 {
                *b = false;
                flipped += 1;
            }
        }
        let policy = BalancePolicy::half(0.05).unwrap();
        assert!(!policy.check(&attacked));
    }

    #[test]
    fn policy_rejects_empty() {
        assert!(!BalancePolicy::half(0.1).unwrap().check(&[]));
    }

    #[test]
    fn policy_tolerance_validated() {
        assert!(BalancePolicy::half(0.0).is_err());
        assert!(BalancePolicy::half(0.5).is_err());
    }

    #[test]
    fn asymmetry_counts_directions() {
        let reference = [true, true, false, false];
        let observed = [false, true, true, false];
        let a = FlipAsymmetry::between(&reference, &observed);
        assert_eq!(a.good_to_bad, 1);
        assert_eq!(a.bad_to_good, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn one_way_flips_look_tampered() {
        let reference = vec![true; 40];
        let mut observed = reference.clone();
        for b in observed.iter_mut().take(10) {
            *b = false;
        }
        let a = FlipAsymmetry::between(&reference, &observed);
        assert!(a.looks_tampered(5));
    }

    #[test]
    fn noise_like_flips_do_not_look_tampered() {
        // Extraction noise flips mostly bad->good (Fig. 10).
        let reference = [false; 20];
        let mut observed = reference;
        observed[3] = true;
        observed[11] = true;
        let a = FlipAsymmetry::between(&reference, &observed);
        assert!(!a.looks_tampered(1));
    }
}
