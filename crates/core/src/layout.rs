//! Replica placement within a flash segment.
//!
//! The encoded watermark channel (data × replicas) occupies the first cells
//! of the segment; the remainder is left erased. Two placements are
//! provided:
//!
//! * [`ReplicaLayout::Contiguous`] — replicas back to back, as the paper's
//!   Fig. 10 shows them;
//! * [`ReplicaLayout::Interleaved`] — replicas bit-interleaved, so a
//!   common-mode partial-erase excursion cannot hit the same logical bit in
//!   every replica (an ablation DESIGN.md calls out).

use flashmark_ecc::{Code, Interleaver, Repetition};
use flashmark_nor::FlashGeometry;

use crate::error::CoreError;

/// How replicas are placed in the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaLayout {
    /// Replicas stored back to back.
    Contiguous,
    /// Replicas bit-interleaved across the channel region.
    Interleaved,
}

/// Maps watermark data bits onto segment cells and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentLayout {
    data_len: usize,
    replicas: usize,
    layout: ReplicaLayout,
}

impl SegmentLayout {
    /// Creates a layout for `data_len` watermark bits × `replicas` copies.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for a zero/even replica count or zero data
    /// length.
    pub fn new(data_len: usize, replicas: usize, layout: ReplicaLayout) -> Result<Self, CoreError> {
        if data_len == 0 {
            return Err(CoreError::Config("data length must be non-zero"));
        }
        if replicas == 0 || replicas.is_multiple_of(2) {
            return Err(CoreError::Config("replica count must be odd"));
        }
        Ok(Self {
            data_len,
            replicas,
            layout,
        })
    }

    /// Watermark data bits.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Replica count.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Channel bits occupied in the segment.
    #[must_use]
    pub fn channel_len(&self) -> usize {
        self.data_len * self.replicas
    }

    /// Checks the channel fits a segment of this geometry.
    ///
    /// # Errors
    ///
    /// [`CoreError::TooLarge`] otherwise.
    pub fn check_fits(&self, geometry: FlashGeometry) -> Result<(), CoreError> {
        let available = geometry.cells_per_segment();
        if self.channel_len() > available {
            return Err(CoreError::TooLarge {
                needed: self.channel_len(),
                available,
            });
        }
        Ok(())
    }

    fn repetition(&self) -> Result<Repetition, CoreError> {
        Ok(Repetition::new(self.replicas)?)
    }

    /// Encodes data bits into the channel bit string (replicated, possibly
    /// interleaved).
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] if `data` length differs from the layout's
    /// `data_len`; [`CoreError::Code`] on coding-layer failures.
    pub fn encode_channel(&self, data: &[bool]) -> Result<Vec<bool>, CoreError> {
        if data.len() != self.data_len {
            return Err(CoreError::Config("layout/data length mismatch"));
        }
        let channel = self.repetition()?.encode(data);
        Ok(match self.layout {
            ReplicaLayout::Contiguous => channel,
            ReplicaLayout::Interleaved => Interleaver::new(self.replicas)?.interleave(&channel)?,
        })
    }

    /// Recovers the (de-interleaved) channel from extracted segment bits.
    ///
    /// # Errors
    ///
    /// [`CoreError::TooLarge`] if the segment has fewer cells than the
    /// channel needs.
    pub fn slice_channel(&self, segment_bits: &[bool]) -> Result<Vec<bool>, CoreError> {
        let n = self.channel_len();
        if segment_bits.len() < n {
            return Err(CoreError::TooLarge {
                needed: n,
                available: segment_bits.len(),
            });
        }
        let raw = &segment_bits[..n];
        Ok(match self.layout {
            ReplicaLayout::Contiguous => raw.to_vec(),
            ReplicaLayout::Interleaved => Interleaver::new(self.replicas)?.deinterleave(raw)?,
        })
    }

    /// Builds the full segment program pattern: channel bits in the leading
    /// cells (bit `b` → cell holds `b`), everything else left erased (1).
    ///
    /// # Errors
    ///
    /// [`CoreError::TooLarge`] if the channel does not fit the geometry,
    /// plus [`encode_channel`](SegmentLayout::encode_channel) errors.
    pub fn pattern_words(
        &self,
        data: &[bool],
        geometry: FlashGeometry,
    ) -> Result<Vec<u16>, CoreError> {
        self.check_fits(geometry)?;
        let channel = self.encode_channel(data)?;
        let mut words = vec![0xFFFFu16; geometry.words_per_segment()];
        for (i, &bit) in channel.iter().enumerate() {
            if !bit {
                words[i / 16] &= !(1 << (i % 16));
            }
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn channel_roundtrip_contiguous() {
        let l = SegmentLayout::new(4, 3, ReplicaLayout::Contiguous).unwrap();
        let data = bits("1011");
        let channel = l.encode_channel(&data).unwrap();
        assert_eq!(channel.len(), 12);
        let mut segment = channel.clone();
        segment.extend([true; 20]); // trailing erased cells
        assert_eq!(l.slice_channel(&segment).unwrap(), channel);
    }

    #[test]
    fn channel_roundtrip_interleaved() {
        let l = SegmentLayout::new(5, 3, ReplicaLayout::Interleaved).unwrap();
        let data = bits("10110");
        let channel = l.encode_channel(&data).unwrap();
        let plain = SegmentLayout::new(5, 3, ReplicaLayout::Contiguous)
            .unwrap()
            .encode_channel(&data)
            .unwrap();
        assert_ne!(channel, plain, "interleaving must permute");
        // slice_channel undoes the interleave: we get the contiguous form.
        assert_eq!(l.slice_channel(&channel).unwrap(), plain);
    }

    #[test]
    fn pattern_words_place_zeros() {
        let g = FlashGeometry::single_bank(1);
        let l = SegmentLayout::new(16, 1, ReplicaLayout::Contiguous).unwrap();
        // "TC" = 0x5443, LSB-first bits of bytes 0x54, 0x43.
        let data: Vec<bool> = [0x54u8, 0x43]
            .iter()
            .flat_map(|&b| (0..8).map(move |i| b & (1 << i) != 0))
            .collect();
        let words = l.pattern_words(&data, g).unwrap();
        assert_eq!(words.len(), 256);
        assert_eq!(words[0], 0x4354); // low byte in low bits
        assert!(words[1..].iter().all(|&w| w == 0xFFFF));
    }

    #[test]
    fn fits_checks() {
        let g = FlashGeometry::single_bank(1); // 4096 cells
        assert!(SegmentLayout::new(128, 7, ReplicaLayout::Contiguous)
            .unwrap()
            .check_fits(g)
            .is_ok()); // 896
        let too_big = SegmentLayout::new(1000, 5, ReplicaLayout::Contiguous).unwrap();
        assert!(matches!(
            too_big.check_fits(g),
            Err(CoreError::TooLarge { .. })
        ));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SegmentLayout::new(0, 3, ReplicaLayout::Contiguous).is_err());
        assert!(SegmentLayout::new(8, 2, ReplicaLayout::Contiguous).is_err());
    }

    #[test]
    fn slice_channel_requires_enough_bits() {
        let l = SegmentLayout::new(8, 3, ReplicaLayout::Contiguous).unwrap();
        assert!(l.slice_channel(&[true; 10]).is_err());
    }
}
