#![forbid(unsafe_code)]
//! The Flashmark technique (DAC 2020): watermarking NOR flash memories for
//! counterfeit detection.
//!
//! Flashmark imprints a digital watermark into the **irreversible wear
//! state** of flash cells and reads it back through the standard digital
//! interface:
//!
//! * [`Imprinter`] (paper Fig. 7) applies `NPE` erase/program cycles of the
//!   watermark pattern to a reserved segment; 0-bits wear out ("bad" cells),
//!   1-bits stay fresh ("good" cells). Wear cannot be undone, so a "reject"
//!   mark can never be forged into "accept".
//! * [`Extractor`] (Fig. 8) erases, programs everything to 0, then aborts an
//!   erase after the partial-erase time `tPEW`: fresh cells have already
//!   flipped to 1, worn cells still read 0 — the watermark appears in the
//!   read-back data.
//! * [`characterize_segment`] (Fig. 3) sweeps the partial-erase time to map
//!   a device family's wear response; [`select_t_pew`] picks the extraction
//!   window from it (Fig. 5).
//! * [`Verifier`] runs the full system-integrator check: extract, majority-
//!   vote across replicas, validate the record signature and balance, and
//!   classify the chip.
//!
//! All algorithms drive flash only through
//! [`FlashInterface`](flashmark_nor::interface::FlashInterface), so they work
//! against the bundled simulator or real hardware behind the same trait.
//!
//! # Example
//!
//! ```
//! use flashmark_core::{FlashmarkConfig, Extractor, Imprinter, Watermark};
//! use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
//! use flashmark_physics::PhysicsParams;
//!
//! # fn main() -> Result<(), flashmark_core::CoreError> {
//! let mut flash = FlashController::new(
//!     PhysicsParams::msp430_like(),
//!     FlashGeometry::single_bank(8),
//!     FlashTimings::msp430(),
//!     0xFEED,
//! );
//! let config = FlashmarkConfig::builder().n_pe(70_000).replicas(7).build()?;
//! let seg = SegmentAddr::new(3);
//! let wm = Watermark::from_ascii("TC")?;
//!
//! Imprinter::new(&config).imprint(&mut flash, seg, &wm)?;
//! let extraction = Extractor::new(&config).extract(&mut flash, seg, wm.len())?;
//! assert_eq!(extraction.bits(), wm.bits());
//! # Ok(())
//! # }
//! ```

pub mod characterize;
pub mod config;
pub mod detect;
pub mod error;
pub mod extract;
pub mod imprint;
pub mod layout;
pub mod metrics;
pub mod multi;
pub mod nor_scheme;
pub mod pipeline;
pub mod recipe;
pub mod sanitized;
pub mod scheme;
pub mod tamper;
pub mod verify;
pub mod watermark;
pub mod window;

pub use characterize::{
    analyze_segment, characterize_segment, CharacterizationCurve, CharacterizationPoint, SweepSpec,
};
pub use config::{FlashmarkConfig, FlashmarkConfigBuilder};
pub use detect::{ProgramTimeDetector, SegmentCondition, StressDetector, StressReport};
pub use error::CoreError;
pub use extract::{Extraction, Extractor};
pub use imprint::{ImprintReport, Imprinter};
pub use layout::{ReplicaLayout, SegmentLayout};
pub use metrics::ExtractionErrors;
pub use multi::{MultiExtraction, MultiSegment};
pub use nor_scheme::{NorEnrollment, NorTpew, NorTpewParams};
pub use pipeline::{inspect, provision, roundtrip};
pub use recipe::{
    characterize_sample, derive_recipe, fuse_windows, ExtractionRecipe, FamilyCharacterization,
};
pub use sanitized::{
    characterize_sanitized, extract_sanitized, imprint_sanitized, imprint_via_cycles_sanitized,
    run_sanitized, SanitizedOutcome,
};
pub use scheme::{ImprintCost, SchemeError, SchemeVerification, WatermarkScheme};
pub use tamper::{BalancePolicy, FlipAsymmetry};
pub use verify::{
    CounterfeitReason, InconclusiveReason, Resolution, Verdict, VerificationReport, Verifier,
};
pub use watermark::{TestStatus, Watermark, WatermarkRecord};
pub use window::{select_t_pew, WindowChoice};
