//! Enrolled chip populations the verification service serves requests
//! against.
//!
//! Each enrolled chip is a chip *identity* — a die family plus its
//! as-received device state (watermark imprinted at die sort, any
//! first-life wear, any counterfeiter tampering). Serving a request
//! materializes a fresh copy of that state, modeling repeated incoming
//! inspections of parts from the same lot without the inspector's own
//! extractions accumulating wear on a single simulated die.

use flashmark_core::{CoreError, FlashmarkConfig, TestStatus, Verifier};
use flashmark_msp430::Msp430Variant;
use flashmark_nor::SegmentAddr;
use flashmark_physics::rng::mix2;
use flashmark_supply::counterfeiter::{simulate_field_use, Attack, CloneData, MetadataForge};
use flashmark_supply::{Chip, Manufacturer, Provenance};

/// Stable provenance-class labels used in registry records.
pub mod class {
    /// Genuine accepted part.
    pub const GENUINE: &str = "genuine";
    /// Fall-out (reject) die with forged accept metadata.
    pub const FALLOUT: &str = "fallout_forged";
    /// Recycled part with first-life wear.
    pub const RECYCLED: &str = "recycled";
    /// Fresh foreign silicon with a cloned watermark image.
    pub const CLONE: &str = "clone";
    /// Re-branded blank part (no watermark at all).
    pub const REBRANDED: &str = "rebranded";
}

/// One chip identity the service can inspect.
#[derive(Debug, Clone)]
pub struct EnrolledChip {
    /// Identity (index into the population; also the registry `chip_id`).
    pub chip_id: u64,
    /// Ground-truth provenance-class label (see [`class`]).
    pub class: &'static str,
    /// The as-received device state.
    pub chip: Chip,
}

/// Population mix for a service campaign.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// Seed all chip identities derive from.
    pub seed: u64,
    /// Genuine accepted chips.
    pub genuine: usize,
    /// Fall-out dies with forged metadata.
    pub fallout: usize,
    /// Recycled chips.
    pub recycled: usize,
    /// Clones of one genuine donor.
    pub clones: usize,
    /// Re-branded blank chips.
    pub rebranded: usize,
    /// First-life P/E cycles each worn segment of a recycled chip
    /// accumulated.
    pub recycled_cycles: u64,
    /// Segments a recycled chip's first life wore (kept inside the
    /// service's published probe window so sampled probes have a chance).
    pub worn_segments: Vec<u32>,
}

impl PopulationSpec {
    /// The mix used by the million-request campaign: mostly honest parts
    /// with every counterfeit pathway represented.
    #[must_use]
    pub fn campaign(seed: u64) -> Self {
        Self {
            seed,
            genuine: 80,
            fallout: 10,
            recycled: 12,
            clones: 6,
            rebranded: 12,
            recycled_cycles: 40_000,
            worn_segments: vec![4, 12, 20, 28, 36, 44, 52, 60],
        }
    }

    /// A tiny mix for unit tests: one chip of every class.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            genuine: 2,
            fallout: 1,
            recycled: 1,
            clones: 1,
            rebranded: 1,
            recycled_cycles: 40_000,
            worn_segments: vec![4, 20, 36, 52],
        }
    }

    /// Total chips the spec enrolls.
    #[must_use]
    pub fn total(&self) -> usize {
        self.genuine + self.fallout + self.recycled + self.clones + self.rebranded
    }

    /// Builds the population: runs die sort for every identity and applies
    /// each class's first life / tampering. Chip seeds derive from
    /// `mix2(seed, chip_id)`, so the population is a pure function of the
    /// spec.
    ///
    /// # Errors
    ///
    /// Imprint/flash errors from manufacturing or tampering.
    pub fn build(
        &self,
        config: &FlashmarkConfig,
        manufacturer_id: u16,
    ) -> Result<Population, CoreError> {
        let mut manufacturer =
            Manufacturer::new(manufacturer_id, Msp430Variant::F5438, config.clone());
        let verifier = Verifier::new(config.clone(), manufacturer_id);
        let mut chips = Vec::with_capacity(self.total());
        let chip_seed = |chip_id: u64| mix2(self.seed, chip_id);

        // Die-sort screening: some dies' cell populations make the imprint
        // marginal enough that the record never decodes under the public
        // recipe. Real die sort reads the mark back and scraps such dies,
        // so enrollment does the same — verify a throwaway copy (screening
        // must not wear the enrolled state) and re-spin the die seed until
        // the record decodes. One screening pass only: dies that decode
        // once but stay borderline ship, exactly like marginal silicon.
        let screened = |m: &mut Manufacturer, seed: u64, status: TestStatus| {
            let mut chip = m.produce(seed, status)?;
            for attempt in 1u64.. {
                let mut copy = chip.flash.clone();
                let seg = copy.watermark_segment();
                if verifier.verify(&mut copy, seg)?.record.is_some() {
                    break;
                }
                chip = m.produce(mix2(seed, attempt), status)?;
            }
            Ok::<Chip, CoreError>(chip)
        };

        for _ in 0..self.genuine {
            let id = chips.len() as u64;
            let chip = screened(&mut manufacturer, chip_seed(id), TestStatus::Accept)?;
            chips.push(EnrolledChip {
                chip_id: id,
                class: class::GENUINE,
                chip,
            });
        }
        for _ in 0..self.fallout {
            let id = chips.len() as u64;
            let mut chip = screened(&mut manufacturer, chip_seed(id), TestStatus::Reject)?;
            MetadataForge.apply(&mut chip)?;
            chips.push(EnrolledChip {
                chip_id: id,
                class: class::FALLOUT,
                chip,
            });
        }
        for _ in 0..self.recycled {
            let id = chips.len() as u64;
            let mut chip = screened(&mut manufacturer, chip_seed(id), TestStatus::Accept)?;
            for &seg in &self.worn_segments {
                simulate_field_use(&mut chip, SegmentAddr::new(seg), self.recycled_cycles)?;
            }
            chip.provenance = Provenance::Recycled {
                prior_cycles: self.recycled_cycles,
            };
            chips.push(EnrolledChip {
                chip_id: id,
                class: class::RECYCLED,
                chip,
            });
        }
        if self.clones > 0 {
            let mut donor = manufacturer.produce(mix2(self.seed, 0xD0_00E5), TestStatus::Accept)?;
            let donor_bits = CloneData::harvest(&mut donor, 3)?;
            for _ in 0..self.clones {
                let id = chips.len() as u64;
                let mut chip = Chip::fresh(Msp430Variant::F5438, chip_seed(id), Provenance::Clone);
                CloneData {
                    config: config.clone(),
                    donor_bits: donor_bits.clone(),
                }
                .apply(&mut chip)?;
                chips.push(EnrolledChip {
                    chip_id: id,
                    class: class::CLONE,
                    chip,
                });
            }
        }
        for _ in 0..self.rebranded {
            let id = chips.len() as u64;
            let chip = Chip::fresh(Msp430Variant::F5529, chip_seed(id), Provenance::Rebranded);
            chips.push(EnrolledChip {
                chip_id: id,
                class: class::REBRANDED,
                chip,
            });
        }
        Ok(Population { chips })
    }
}

/// The enrolled population, indexed by `chip_id`.
#[derive(Debug, Clone)]
pub struct Population {
    chips: Vec<EnrolledChip>,
}

impl Population {
    /// Number of enrolled chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// True when nothing is enrolled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// The enrolled chip with identity `chip_id`, if any.
    #[must_use]
    pub fn get(&self, chip_id: u64) -> Option<&EnrolledChip> {
        self.chips.get(chip_id as usize)
    }

    /// All enrolled chips in `chip_id` order.
    #[must_use]
    pub fn chips(&self) -> &[EnrolledChip] {
        &self.chips
    }

    /// Chips per class label, in `chip_id` order.
    #[must_use]
    pub fn class_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for c in &self.chips {
            *counts.entry(c.class).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_core::FlashmarkConfig;

    fn config() -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(60_000)
            .replicas(5)
            .reads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn tiny_population_enrolls_every_class() {
        let spec = PopulationSpec::tiny(0xF0F0);
        let pop = spec.build(&config(), 0x7C01).unwrap();
        assert_eq!(pop.len(), spec.total());
        let counts = pop.class_counts();
        assert_eq!(
            counts,
            vec![
                (class::CLONE, 1),
                (class::FALLOUT, 1),
                (class::GENUINE, 2),
                (class::REBRANDED, 1),
                (class::RECYCLED, 1),
            ]
        );
        // Identities are dense and match positions.
        for (i, c) in pop.chips().iter().enumerate() {
            assert_eq!(c.chip_id, i as u64);
        }
    }

    #[test]
    fn population_is_a_pure_function_of_the_spec() {
        let a = PopulationSpec::tiny(7).build(&config(), 0x7C01).unwrap();
        let b = PopulationSpec::tiny(7).build(&config(), 0x7C01).unwrap();
        for (x, y) in a.chips().iter().zip(b.chips()) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.chip.provenance, y.chip.provenance);
        }
    }
}
