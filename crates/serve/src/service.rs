//! The verification service: channel front end, sharded batch processing,
//! registry recording.
//!
//! Requests enter through a cloneable [`RequestSender`] into an in-process
//! channel; [`VerificationService::drain`] collects the pending batch in
//! arrival (FIFO) order, and [`VerificationService::process_batch`] fans
//! the batch across per-chip shards via `flashmark_par`:
//!
//! * shard assignment is `chip_id % shards` — a pure function of the
//!   request, independent of thread count;
//! * each shard handles its requests in arrival order, verifying a fresh
//!   copy of the chip's enrolled as-received state (repeated incoming
//!   inspection of parts from one lot — the inspector's own destructive
//!   extractions must not accumulate on a single simulated die);
//! * draft records come back in shard order, are re-merged by global
//!   arrival index, and are appended to the [`Registry`] serially — so any
//!   `--threads N` produces a byte-identical registry log.

use std::sync::mpsc::{channel, Receiver, Sender};

use flashmark_core::CoreError;
use flashmark_core::{
    CounterfeitReason, FlashmarkConfig, InconclusiveReason, SegmentCondition, StressDetector,
    Verdict, Verifier,
};
use flashmark_obs::{install, take, virtual_latency_of, Collector, Metrics, Snapshot, GLOBAL};
use flashmark_par::TrialRunner;
use flashmark_physics::rng::mix2;
use flashmark_physics::Micros;
use flashmark_registry::{
    json_string, Record, RecordVerdict, Registry, RegistryOptions, ServiceStats,
};
use flashmark_supply::sampled_probe_segments;

use crate::population::Population;

/// Segments `0..PROBE_WINDOW_SEGMENTS` form the published recycled-wear
/// probe window: the low code/data region a first life wears hardest. Wear
/// probes sample inside it; the watermark segment (top of the array) is
/// never probed.
pub const PROBE_WINDOW_SEGMENTS: u32 = 64;

/// Verifier commit tag written into every registry record.
pub const COMMIT_TAG: &str = concat!("flashmark-serve/", env!("CARGO_PKG_VERSION"));

/// Watermark scheme the serving layer runs (`WatermarkScheme::name`
/// vocabulary); stamped into every registry record so fleet logs from
/// different backends stay distinguishable.
pub const SCHEME: &str = "nor_tpew";

/// One incoming-inspection request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyRequest {
    /// Idempotency key; the registry rejects replays of the same id.
    pub request_id: u64,
    /// Which enrolled chip to inspect.
    pub chip_id: u64,
    /// Also run a destructive recycled-wear probe on one sampled segment
    /// of the probe window.
    pub probe: bool,
}

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Extraction recipe the verifier publishes.
    pub config: FlashmarkConfig,
    /// Manufacturer ID the verifier expects in decoded records.
    pub manufacturer_id: u16,
    /// Seed for probe-segment sampling (`mix2(seed, request_id)` per
    /// request).
    pub seed: u64,
    /// Per-chip state shards (fixed in config, independent of threads).
    pub shards: usize,
    /// Reads per cell for the wear probe detector (must be odd).
    pub probe_reads: usize,
    /// Registry options.
    pub registry: RegistryOptions,
}

impl ServiceConfig {
    /// Defaults: 16 shards, single-read wear probe, default registry.
    #[must_use]
    pub fn new(config: FlashmarkConfig, manufacturer_id: u16, seed: u64) -> Self {
        Self {
            config,
            manufacturer_id,
            seed,
            shards: 16,
            probe_reads: 1,
            registry: RegistryOptions::default(),
        }
    }
}

/// Cloneable submission handle into the service's request channel.
#[derive(Debug, Clone)]
pub struct RequestSender {
    tx: Sender<VerifyRequest>,
}

impl RequestSender {
    /// Enqueues one request.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] when the service side has been dropped.
    pub fn submit(&self, request: VerifyRequest) -> Result<(), CoreError> {
        self.tx
            .send(request)
            .map_err(|_| CoreError::Config("verification service is gone"))
    }
}

/// Outcome of one processed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Requests in the batch.
    pub submitted: u64,
    /// New records appended to the registry.
    pub recorded: u64,
    /// Requests rejected as replays of an already-recorded `request_id`.
    pub duplicates: u64,
    /// This batch's aggregates, merged shard-by-shard in shard order.
    pub stats: ServiceStats,
}

/// One draft record plus its global arrival index, produced inside a shard.
type Draft = (usize, Record);

/// Everything one shard hands back from a drain: its drafts, its stats
/// aggregate, and its telemetry snapshot.
type ShardYield = Result<(Vec<Draft>, ServiceStats, Snapshot), CoreError>;

/// The verification service.
#[derive(Debug)]
pub struct VerificationService {
    population: Population,
    verifier: Verifier,
    detector: StressDetector,
    cfg: ServiceConfig,
    params: String,
    registry: Registry,
    telemetry: Snapshot,
    tx: Sender<VerifyRequest>,
    rx: Receiver<VerifyRequest>,
}

impl VerificationService {
    /// Builds the service around an enrolled population.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for an invalid probe detector configuration.
    pub fn new(population: Population, cfg: ServiceConfig) -> Result<Self, CoreError> {
        let verifier = Verifier::new(cfg.config.clone(), cfg.manufacturer_id);
        let detector = StressDetector::new(Micros::new(23.0), cfg.probe_reads, 0.5)?;
        let params = canonical_params(&cfg.config);
        let registry = Registry::new(cfg.registry);
        let (tx, rx) = channel();
        Ok(Self {
            population,
            verifier,
            detector,
            cfg,
            params,
            registry,
            telemetry: Snapshot::new(),
            tx,
            rx,
        })
    }

    /// A new submission handle into the request channel.
    #[must_use]
    pub fn handle(&self) -> RequestSender {
        RequestSender {
            tx: self.tx.clone(),
        }
    }

    /// The enrolled population.
    #[must_use]
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Canonical recipe-parameter JSON stamped into every record.
    #[must_use]
    pub fn params(&self) -> &str {
        &self.params
    }

    /// The provenance registry accumulated so far.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The service-telemetry snapshot accumulated so far: per-shard queue
    /// depths, request/probe counters, virtual-latency and ladder-depth
    /// histograms, and the global batch-occupancy high watermark. Shard
    /// snapshots merge commutatively in shard order, so the snapshot is
    /// byte-identical at any `--threads` count.
    #[must_use]
    pub fn telemetry(&self) -> &Snapshot {
        &self.telemetry
    }

    /// Consumes the service, yielding the registry.
    #[must_use]
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    /// Collects every request currently queued, in arrival order.
    #[must_use]
    pub fn drain(&mut self) -> Vec<VerifyRequest> {
        let mut batch = Vec::new();
        while let Ok(req) = self.rx.try_recv() {
            batch.push(req);
        }
        batch
    }

    /// Drains the queue and processes the batch across `threads` workers.
    ///
    /// # Errors
    ///
    /// Flash/layout errors from verification.
    pub fn serve_drained(&mut self, threads: usize) -> Result<BatchReport, CoreError> {
        let batch = self.drain();
        self.process_batch(&batch, threads)
    }

    /// Processes one batch: shards requests by `chip_id % shards`, runs the
    /// shards across `threads` workers, re-merges draft records by global
    /// arrival index, and appends them to the registry serially.
    ///
    /// # Errors
    ///
    /// Flash/layout errors from verification.
    pub fn process_batch(
        &mut self,
        batch: &[VerifyRequest],
        threads: usize,
    ) -> Result<BatchReport, CoreError> {
        let shards = self.cfg.shards.max(1);
        let mut per_shard: Vec<Vec<(usize, VerifyRequest)>> = vec![Vec::new(); shards];
        for (global, &req) in batch.iter().enumerate() {
            per_shard[(req.chip_id % shards as u64) as usize].push((global, req));
        }

        // The shard closure must be `Sync`; the service itself is not (it
        // owns the channel receiver), so hand the workers a view holding
        // only the shared read-only state.
        let ctx = ShardCtx {
            population: &self.population,
            verifier: &self.verifier,
            detector: self.detector,
            seed: self.cfg.seed,
            params: &self.params,
        };
        let runner = TrialRunner::with_threads(self.cfg.seed, threads);
        let shard_results: Vec<ShardYield> = runner.run(shards, |trial| {
            ctx.run_shard(trial.index, &per_shard[trial.index])
        });

        self.telemetry
            .gauge_max("service_batch_occupancy", GLOBAL, batch.len() as u64);
        let mut stats = ServiceStats::new();
        let mut drafts: Vec<Draft> = Vec::with_capacity(batch.len());
        for shard in shard_results {
            let (shard_drafts, shard_stats, shard_telemetry) = shard?;
            stats.absorb(&shard_stats);
            self.telemetry.merge(&shard_telemetry);
            drafts.extend(shard_drafts);
        }
        drafts.sort_by_key(|&(global, _)| global);

        let mut recorded = 0u64;
        let mut duplicates = 0u64;
        for (_, record) in drafts {
            if self.registry.append(record).recorded() {
                recorded += 1;
            } else {
                duplicates += 1;
            }
        }
        Ok(BatchReport {
            submitted: batch.len() as u64,
            recorded,
            duplicates,
            stats,
        })
    }
}

/// The read-only state one shard worker needs: everything [`Sync`] the
/// service owns, minus the channel.
struct ShardCtx<'a> {
    population: &'a Population,
    verifier: &'a Verifier,
    detector: StressDetector,
    seed: u64,
    params: &'a str,
}

impl ShardCtx<'_> {
    /// Processes one shard's requests in arrival order, folding per-shard
    /// telemetry: the queue-depth high watermark, request and probe
    /// counters, and per-request virtual-latency / ladder-depth
    /// histograms, all labeled with `shard_index`.
    fn run_shard(&self, shard_index: usize, requests: &[(usize, VerifyRequest)]) -> ShardYield {
        let shard = shard_index as u64;
        let mut drafts = Vec::with_capacity(requests.len());
        let mut stats = ServiceStats::new();
        let mut telemetry = Snapshot::new();
        telemetry.gauge_max("service_queue_depth", shard, requests.len() as u64);
        for &(global, req) in requests {
            let (record, virtual_latency) = self.serve_one(req)?;
            telemetry.add("service_requests_total", shard, 1);
            if req.probe {
                telemetry.add("service_probe_total", shard, 1);
            }
            telemetry.observe("service_virtual_latency_ops", shard, virtual_latency);
            telemetry.observe(
                "service_ladder_depth",
                shard,
                u64::from(record.ladder_depth),
            );
            stats.record(&record);
            drafts.push((global, record));
        }
        Ok((drafts, stats, telemetry))
    }

    /// Serves one request against a fresh copy of the chip's enrolled
    /// state, with a metrics-only collector installed around the work.
    /// Returns the draft record and the request's virtual latency in
    /// flash-op cost units (see [`virtual_latency_of`]).
    fn serve_one(&self, req: VerifyRequest) -> Result<(Record, u64), CoreError> {
        let Some(enrolled) = self.population.get(req.chip_id) else {
            return Ok((
                self.draft(
                    req,
                    "unenrolled",
                    RecordVerdict::Reject,
                    "unenrolled",
                    &Metrics::new(),
                    0,
                    0,
                ),
                0,
            ));
        };
        let mut flash = enrolled.chip.flash.clone();
        let seg = flash.watermark_segment();

        let prev = install(Collector::with_capacity(req.request_id, 0));
        let served = (|| -> Result<(RecordVerdict, &'static str), CoreError> {
            let report = self.verifier.verify(&mut flash, seg)?;
            let (mut verdict, mut reason) = map_verdict(report.verdict);
            if req.probe && verdict == RecordVerdict::Accept {
                let probe_seg = sampled_probe_segments(
                    PROBE_WINDOW_SEGMENTS,
                    1,
                    mix2(self.seed, req.request_id),
                )[0];
                let probe = self.detector.classify(&mut flash, probe_seg)?;
                if probe.verdict == SegmentCondition::Stressed {
                    verdict = RecordVerdict::Reject;
                    reason = "recycled_wear";
                }
            }
            Ok((verdict, reason))
        })();
        let collector = take().unwrap_or_else(|| Collector::with_capacity(req.request_id, 0));
        if let Some(p) = prev {
            install(p);
        }
        let (verdict, reason) = served?;

        let metrics = collector.metrics();
        let ladder_depth = metrics.group_total("ladder") as u32;
        let retries = metrics.group_total("retry") as u32;
        let virtual_latency = virtual_latency_of(metrics);
        Ok((
            self.draft(
                req,
                enrolled.class,
                verdict,
                reason,
                metrics,
                ladder_depth,
                retries,
            ),
            virtual_latency,
        ))
    }

    /// Assembles the registry record for one served request.
    #[allow(clippy::too_many_arguments)]
    fn draft(
        &self,
        req: VerifyRequest,
        class: &str,
        verdict: RecordVerdict,
        reason: &str,
        metrics: &Metrics,
        ladder_depth: u32,
        retries: u32,
    ) -> Record {
        Record {
            request_id: req.request_id,
            chip_id: req.chip_id,
            class: class.to_string(),
            scheme: SCHEME.to_string(),
            commit: COMMIT_TAG.to_string(),
            params: self.params.to_string(),
            verdict,
            reason: reason.to_string(),
            metrics: canonical_metrics(metrics),
            ladder_depth,
            retries,
        }
    }
}

/// Maps a core verdict into the registry's (verdict, reason) pair.
fn map_verdict(verdict: Verdict) -> (RecordVerdict, &'static str) {
    match verdict {
        Verdict::Genuine => (RecordVerdict::Accept, ""),
        Verdict::Counterfeit(reason) => (
            RecordVerdict::Reject,
            match reason {
                CounterfeitReason::NoWatermark => "no_watermark",
                CounterfeitReason::SignatureMismatch => "signature_mismatch",
                CounterfeitReason::RejectedDie => "rejected_die",
                CounterfeitReason::WrongManufacturer { .. } => "wrong_manufacturer",
            },
        ),
        Verdict::Inconclusive(reason) => (
            RecordVerdict::Inconclusive,
            match reason {
                InconclusiveReason::TransientFaults => "transient_faults",
                InconclusiveReason::RecharacterizationFailed => "recharacterization_failed",
                InconclusiveReason::FuzzyMatchMarginal => "fuzzy_match_marginal",
            },
        ),
    }
}

/// Canonical recipe-parameter JSON (fixed field order; part of the record
/// schema).
fn canonical_params(config: &FlashmarkConfig) -> String {
    let layout = match config.layout() {
        flashmark_core::ReplicaLayout::Contiguous => "contiguous",
        flashmark_core::ReplicaLayout::Interleaved => "interleaved",
    };
    format!(
        "{{\"n_pe\":{},\"t_pew_us\":{},\"replicas\":{},\"reads\":{},\"layout\":{},\"accelerated\":{}}}",
        config.n_pe(),
        config.t_pew().get(),
        config.replicas(),
        config.reads(),
        json_string(layout),
        config.accelerated()
    )
}

/// Canonical per-request metrics JSON: counters as `"group.name": n` in
/// BTreeMap (sorted) order.
fn canonical_metrics(metrics: &Metrics) -> String {
    let mut out = String::from("{");
    for (i, (group, name, n)) in metrics.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&format!("{group}.{name}")));
        out.push(':');
        out.push_str(&n.to_string());
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{class, PopulationSpec};

    fn cheap_config() -> FlashmarkConfig {
        FlashmarkConfig::builder()
            .n_pe(60_000)
            .replicas(5)
            .reads(1)
            .build()
            .unwrap()
    }

    fn service(threadsafe_seed: u64) -> VerificationService {
        let config = cheap_config();
        let pop = PopulationSpec::tiny(0xBEEF).build(&config, 0x7C01).unwrap();
        VerificationService::new(pop, ServiceConfig::new(config, 0x7C01, threadsafe_seed)).unwrap()
    }

    fn requests(svc: &VerificationService) -> Vec<VerifyRequest> {
        // Two passes over the whole population, no probes (verdict mapping
        // only).
        (0..2 * svc.population().len() as u64)
            .map(|i| VerifyRequest {
                request_id: i,
                chip_id: i % svc.population().len() as u64,
                probe: false,
            })
            .collect()
    }

    #[test]
    fn verdicts_follow_provenance_class() {
        let mut svc = service(1);
        let batch = requests(&svc);
        let report = svc.process_batch(&batch, 1).unwrap();
        assert_eq!(report.recorded, batch.len() as u64);
        assert_eq!(report.duplicates, 0);
        let stats = report.stats;
        // 2 genuine chips × 2 passes accepted.
        assert_eq!(stats.verdicts(class::GENUINE, RecordVerdict::Accept), 4);
        // Fall-out die decodes to a signed Reject record.
        assert_eq!(stats.verdicts(class::FALLOUT, RecordVerdict::Reject), 2);
        // Blank rebranded part: no watermark.
        assert_eq!(stats.verdicts(class::REBRANDED, RecordVerdict::Reject), 2);
        // Clone carries data, not wear: no watermark either.
        assert_eq!(stats.verdicts(class::CLONE, RecordVerdict::Reject), 2);
        // Recycled watermark itself is intact; without a probe it passes.
        assert_eq!(stats.verdicts(class::RECYCLED, RecordVerdict::Accept), 2);
    }

    #[test]
    fn thread_count_does_not_change_the_registry() {
        let mut serial = service(7);
        let mut parallel = service(7);
        let batch = requests(&serial);
        serial.process_batch(&batch, 1).unwrap();
        parallel.process_batch(&batch, 4).unwrap();
        assert_eq!(serial.registry().root(), parallel.registry().root());
        assert_eq!(serial.registry().contents(), parallel.registry().contents());
        assert_eq!(serial.telemetry(), parallel.telemetry());
        assert_eq!(
            serial.telemetry().expose(),
            parallel.telemetry().expose(),
            "telemetry exposition differs across thread counts"
        );
    }

    #[test]
    fn telemetry_counts_requests_probes_and_latency() {
        let mut svc = service(13);
        let n = svc.population().len() as u64;
        let batch: Vec<VerifyRequest> = (0..2 * n)
            .map(|i| VerifyRequest {
                request_id: i,
                chip_id: i % n,
                probe: i % 4 == 0,
            })
            .collect();
        svc.process_batch(&batch, 2).unwrap();
        let t = svc.telemetry();
        let shards = 16u64;
        let total: u64 = (0..shards)
            .map(|s| t.counter("service_requests_total", s))
            .sum();
        assert_eq!(total, 2 * n);
        let probes: u64 = (0..shards)
            .map(|s| t.counter("service_probe_total", s))
            .sum();
        assert_eq!(probes, batch.iter().filter(|r| r.probe).count() as u64);
        assert_eq!(t.gauge("service_batch_occupancy", GLOBAL), 2 * n);
        // Every served request lands one observation in each histogram,
        // and verification always performs flash work.
        let vlat_count: u64 = (0..shards)
            .map(|s| t.histogram_count("service_virtual_latency_ops", s))
            .sum();
        assert_eq!(vlat_count, 2 * n);
        let vlat_sum: u64 = (0..shards)
            .map(|s| t.histogram_sum("service_virtual_latency_ops", s))
            .sum();
        assert!(vlat_sum > 0, "no flash work attributed to any request");
        // Queue-depth gauges sum to at least the batch (each request
        // queued in exactly one shard).
        let queued: u64 = (0..shards).map(|s| t.gauge("service_queue_depth", s)).sum();
        assert_eq!(queued, 2 * n);
    }

    #[test]
    fn replaying_a_batch_is_idempotent() {
        let mut svc = service(3);
        let batch = requests(&svc);
        let first = svc.process_batch(&batch, 2).unwrap();
        let root = svc.registry().root();
        let contents = svc.registry().contents();
        let second = svc.process_batch(&batch, 2).unwrap();
        assert_eq!(first.recorded, batch.len() as u64);
        assert_eq!(second.recorded, 0);
        assert_eq!(second.duplicates, batch.len() as u64);
        assert_eq!(svc.registry().root(), root);
        assert_eq!(svc.registry().contents(), contents);
    }

    #[test]
    fn channel_front_end_preserves_arrival_order() {
        let mut svc = service(5);
        let h1 = svc.handle();
        let h2 = h1.clone();
        for i in 0..4u64 {
            let h = if i % 2 == 0 { &h1 } else { &h2 };
            h.submit(VerifyRequest {
                request_id: i,
                chip_id: i % svc.population().len() as u64,
                probe: false,
            })
            .unwrap();
        }
        let batch = svc.drain();
        let ids: Vec<u64> = batch.iter().map(|r| r.request_id).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
        assert!(svc.drain().is_empty());
        let report = svc.process_batch(&batch, 2).unwrap();
        assert_eq!(report.recorded, 4);
    }

    #[test]
    fn probed_recycled_chip_is_rejected_when_the_probe_lands_on_wear() {
        let config = cheap_config();
        let pop = PopulationSpec::tiny(0xBEEF).build(&config, 0x7C01).unwrap();
        let recycled_id = pop
            .chips()
            .iter()
            .find(|c| c.class == class::RECYCLED)
            .unwrap()
            .chip_id;
        let mut svc =
            VerificationService::new(pop, ServiceConfig::new(config, 0x7C01, 11)).unwrap();
        // Probe the recycled chip under many request ids; the sampled probe
        // window contains its worn segments, so some probe must land.
        let batch: Vec<VerifyRequest> = (0..32u64)
            .map(|i| VerifyRequest {
                request_id: i,
                chip_id: recycled_id,
                probe: true,
            })
            .collect();
        let report = svc.process_batch(&batch, 2).unwrap();
        assert!(
            report
                .stats
                .verdicts(class::RECYCLED, RecordVerdict::Reject)
                > 0,
            "no probe landed on a worn segment: {:?}",
            report.stats
        );
    }

    #[test]
    fn unenrolled_chip_is_rejected_not_an_error() {
        let mut svc = service(9);
        let report = svc
            .process_batch(
                &[VerifyRequest {
                    request_id: 0,
                    chip_id: 10_000,
                    probe: false,
                }],
                1,
            )
            .unwrap();
        assert_eq!(report.recorded, 1);
        assert_eq!(
            report.stats.verdicts("unenrolled", RecordVerdict::Reject),
            1
        );
    }
}
