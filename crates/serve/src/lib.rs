#![forbid(unsafe_code)]
//! Fleet-scale chip-verification service over the provenance registry.
//!
//! The paper positions Flashmark as an incoming-inspection check a system
//! integrator runs on purchased parts. At fleet scale that check is a
//! *service*: a stream of verification requests against an enrolled
//! population of chip identities, every outcome recorded in an append-only
//! provenance log. This crate provides both halves:
//!
//! * [`population`] — deterministic enrolled populations mixing honest and
//!   counterfeit provenance classes (genuine, forged fall-out, recycled,
//!   cloned, re-branded), each chip a pure function of a spec seed;
//! * [`service`] — a channel-fed front end plus a sharded batch processor:
//!   requests shard by `chip_id % shards`, shards fan across
//!   `flashmark_par` workers, and draft records re-merge in arrival order
//!   before the serial registry append — so any `--threads N` yields a
//!   byte-identical registry log.
//!
//! Every request verifies a fresh copy of the chip's enrolled as-received
//! state: Flashmark sensing is destructive, and the service models
//! repeated inspection of parts from a lot, not repeated sensing of one
//! die (which would wear out the watermark it is trying to read).

pub mod population;
pub mod service;

pub use population::{class, EnrolledChip, Population, PopulationSpec};
pub use service::{
    BatchReport, RequestSender, ServiceConfig, VerificationService, VerifyRequest, COMMIT_TAG,
    PROBE_WINDOW_SEGMENTS,
};
