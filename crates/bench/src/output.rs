//! Result rendering: aligned console tables, CSV, and JSON artifacts.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::json::ToJson;

/// Directory experiment artifacts are written into.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("FLASHMARK_RESULTS")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    let _ = fs::create_dir_all(&dir);
    dir
}

/// A simple fixed-width console table that doubles as a CSV writer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders an aligned console table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Serializes an experiment result as pretty JSON into the results dir.
///
/// # Errors
///
/// I/O or serialization errors.
pub fn write_json<T: ToJson>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    write_json_in(&results_dir(), name, value)
}

/// Serializes an experiment result as pretty JSON into an explicit
/// directory (created if missing) — the suite runner uses this to point
/// different runs at different artifact directories.
///
/// # Errors
///
/// I/O or serialization errors.
pub fn write_json_in<T: ToJson>(dir: &Path, name: &str, value: &T) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, value.to_json().pretty())?;
    Ok(path)
}

/// Formats a paper-vs-measured comparison line.
#[must_use]
pub fn compare_line(metric: &str, paper: f64, measured: f64, unit: &str) -> String {
    compare_line_labeled(metric, ("paper", paper), ("measured", measured), unit)
}

/// Formats a comparison line with caller-chosen labels (e.g.
/// `baseline` vs `current` for the perf gate).
#[must_use]
pub fn compare_line_labeled(
    metric: &str,
    (ref_label, reference): (&str, f64),
    (cur_label, current): (&str, f64),
    unit: &str,
) -> String {
    let ratio = if reference.abs() > 1e-12 {
        current / reference
    } else {
        f64::NAN
    };
    format!(
        "{metric:<42} {ref_label} {reference:>9.2} {unit:<4} {cur_label} {current:>9.2} {unit:<4} (x{ratio:.2})"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["tPE (us)", "cells_0"]);
        t.row(["0", "4096"]);
        t.row(["35", "0"]);
        let s = t.render();
        assert!(s.contains("tPE (us)"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let dir = std::env::temp_dir().join("flashmark_test_csv");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn compare_line_has_ratio() {
        let line = compare_line("min BER @40K", 11.8, 10.0, "%");
        assert!(line.contains("x0.85"));
    }

    #[test]
    fn labeled_compare_line_uses_the_labels() {
        let line = compare_line_labeled(
            "kernel/read_segment",
            ("baseline", 10.0),
            ("current", 30.0),
            "us",
        );
        assert!(line.contains("baseline"));
        assert!(line.contains("current"));
        assert!(line.contains("x3.00"));
    }
}
