#![forbid(unsafe_code)]
//! Experiment harness regenerating every quantitative figure and table of
//! the Flashmark paper.
//!
//! Each experiment is a library function (so integration tests can run
//! scaled-down versions) with a thin binary wrapper:
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Fig. 4 — cells vs `tPE` per stress level | [`experiments::fig04`] | `fig04_characterization` |
//! | Fig. 5 — fresh/50 K discrimination | [`experiments::fig05`] | `fig05_detection` |
//! | Fig. 9 — single-copy BER vs `tPE` | [`experiments::fig09`] | `fig09_ber_single` |
//! | Fig. 10 — 7-replica majority recovery | [`experiments::fig10`] | `fig10_replication_majority` |
//! | Fig. 11 — replication sweep | [`experiments::fig11`] | `fig11_replication_sweep` |
//! | §V timing | [`experiments::table1`] | `table1_timing` |
//! | ECC-vs-replication ablation | [`experiments::ecc_ablation`] | `ecc_ablation` |
//!
//! `run_all` executes everything and emits a Markdown report comparing
//! paper numbers with measured ones (the basis of `EXPERIMENTS.md`).
//!
//! Run binaries in release mode; the cell-level simulation is hot:
//!
//! ```text
//! cargo run --release -p flashmark-bench --bin fig09_ber_single
//! ```

pub mod backend_campaign;
pub mod experiments;
pub mod fault_campaign;
pub mod harness;
pub mod json;
pub mod microbench;
pub mod observability;
pub mod output;
pub mod paper;
pub mod service_campaign;
pub mod suite;
pub mod trend;
