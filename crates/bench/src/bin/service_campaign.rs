//! Deterministic verification-service load generator.
//!
//! Streams verify requests (1 M by default; 10 k with `--smoke`) through
//! the channel front end of the sharded verification service and writes
//! the registry summary:
//!
//! * `results/service_campaign.json` (or `service_campaign_smoke.json`
//!   with `--smoke`) — verdict mix per provenance class, retry-ladder,
//!   transient-retry and virtual-latency histograms, reason breakdown,
//!   telemetry gauges/counters, registry root digest. Byte-identical at
//!   any `--threads` count.
//! * `results/service_metrics.prom` (or `service_metrics_smoke.prom`) —
//!   the telemetry snapshot in Prometheus text exposition format (the
//!   `obs_top` bin renders it as a per-shard table).
//! * `results/trend_log.jsonl` + `results/trend_report.json` — the run is
//!   appended to the cross-run trend log and the drift report recomputed
//!   (the `trend_check` bin gates on it).
//! * `results/service_timings.json` — wall clock and throughput,
//!   quarantined so the campaign artifact stays deterministic.
//!
//! ```text
//! cargo run --release -p flashmark-bench --bin service_campaign -- \
//!     --threads 8 [--smoke] [--requests N]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use flashmark_bench::output::{results_dir, write_json, Table};
use flashmark_bench::service_campaign::{
    run_service_campaign, ServiceCampaignOptions, ServiceTimings,
};
use flashmark_bench::trend::{append_and_report, service_record};
use flashmark_par::threads_from_env_args;

fn parse_requests() -> Result<Option<u64>, String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--requests" {
            args.next().ok_or("missing value after --requests")?
        } else if let Some(v) = arg.strip_prefix("--requests=") {
            v.to_owned()
        } else {
            continue;
        };
        return value
            .parse()
            .map(Some)
            .map_err(|_| format!("bad --requests: {value:?}"));
    }
    Ok(None)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let threads = threads_from_env_args()?;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut opts = if smoke {
        ServiceCampaignOptions::smoke(threads)
    } else {
        ServiceCampaignOptions::full(threads)
    };
    if let Some(requests) = parse_requests()? {
        opts.requests = requests;
        opts.batch = opts.batch.min(requests.max(1));
    }
    let artifact = if smoke {
        "service_campaign_smoke"
    } else {
        "service_campaign"
    };
    eprintln!(
        "service_campaign: {} requests, seed {}, {} thread(s) ...",
        opts.requests, opts.seed, threads
    );

    let t0 = Instant::now();
    let mut last_pct = 0u64;
    let run = run_service_campaign(&opts, |done| {
        let pct = done * 100 / opts.requests.max(1);
        if pct >= last_pct + 10 || done == opts.requests {
            eprintln!("  {done}/{} ({pct}%)", opts.requests);
            last_pct = pct;
        }
    })?;
    let wall_s = t0.elapsed().as_secs_f64();
    let data = run.data;

    let mut table = Table::new(["class", "verdict", "count", "per 1M"]);
    for row in &data.verdict_mix {
        table.row([
            row.class.clone(),
            row.verdict.to_string(),
            row.count.to_string(),
            format!("{:.0}", row.per_million),
        ]);
    }
    println!("{}", table.render());
    println!(
        "registry root {} over {} records in {} seals; {} duplicates",
        data.registry_root, data.registry_records, data.registry_seals, data.duplicates
    );

    let path = write_json(artifact, &data)?;
    println!("wrote {}", path.display());

    let dir = results_dir();
    let prom = dir.join(if smoke {
        "service_metrics_smoke.prom"
    } else {
        "service_metrics.prom"
    });
    std::fs::write(&prom, &run.exposition)?;
    println!("wrote {}", prom.display());

    let report = append_and_report(&dir, service_record(&data))?;
    println!(
        "trend: {} run(s) on record; drift gates {} ({} failure(s), {} warning(s))",
        report.records,
        if report.passed() { "passed" } else { "FAILED" },
        report.failures.len(),
        report.warnings.len()
    );

    let timings = ServiceTimings {
        threads,
        requests: data.requests,
        wall_s,
        requests_per_s: data.requests as f64 / wall_s.max(1e-9),
    };
    let tpath = write_json("service_timings", &timings)?;
    println!(
        "wrote {} ({:.0} requests/s over {:.1} s)",
        tpath.display(),
        timings.requests_per_s,
        wall_s
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("service_campaign: {e}");
            ExitCode::FAILURE
        }
    }
}
