//! Family-consistency experiment: the paper states that "multiple chip
//! samples are used and we find that flash memories within the same family
//! show consistent behavior". We characterize several simulated chips of
//! the family and derive the publishable extraction recipe.

use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{derive_recipe, SweepSpec};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_physics::{Micros, PhysicsParams};

#[derive(Debug)]
struct FamilyReport {
    per_chip: Vec<(u64, f64, f64, f64, f64)>, // (seed, t_pew, separation, lo, hi)
    recipe_t_pew_us: f64,
    recipe_window: (f64, f64),
    optimum_spread_us: f64,
}
impl_to_json!(FamilyReport {
    per_chip,
    recipe_t_pew_us,
    recipe_window,
    optimum_spread_us
});

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CHIPS: u64 = 6;
    eprintln!("family_consistency: characterizing {CHIPS} sample chips ...");
    let seeds: Vec<u64> = (0..CHIPS).map(|i| 0xFA31 + i * 7).collect();
    let mut chips: Vec<FlashController> = seeds
        .iter()
        .map(|&s| {
            FlashController::new(
                PhysicsParams::msp430_like(),
                FlashGeometry::single_bank(4),
                FlashTimings::msp430(),
                s,
            )
        })
        .collect();

    let sweep = SweepSpec::new(Micros::new(14.0), Micros::new(50.0), Micros::new(2.0))?;
    let fam = derive_recipe(
        &mut chips,
        SegmentAddr::new(0),
        SegmentAddr::new(1),
        50.0,
        &sweep,
        260,
        7,
        3,
    )?;

    let mut table = Table::new([
        "chip seed",
        "optimal tPEW (us)",
        "separation %",
        "window (us)",
    ]);
    let mut per_chip = Vec::new();
    for (seed, w) in seeds.iter().zip(&fam.per_chip) {
        table.row([
            format!("{seed:#x}"),
            format!("{:.0}", w.t_pew.get()),
            format!("{:.1}", w.separation() * 100.0),
            format!("{:.0}..{:.0}", w.window_lo.get(), w.window_hi.get()),
        ]);
        per_chip.push((
            *seed,
            w.t_pew.get(),
            w.separation(),
            w.window_lo.get(),
            w.window_hi.get(),
        ));
    }
    println!("{}", table.render());
    println!(
        "\npublished recipe: tPEW = {} within window {} .. {} (optimum spread {} across chips)",
        fam.recipe.t_pew,
        fam.recipe.window_lo,
        fam.recipe.window_hi,
        fam.optimum_spread()
    );
    println!(
        "worst per-chip separation: {:.1} %",
        fam.worst_separation() * 100.0
    );

    let json = write_json(
        "family_consistency",
        &FamilyReport {
            per_chip,
            recipe_t_pew_us: fam.recipe.t_pew.get(),
            recipe_window: (fam.recipe.window_lo.get(), fam.recipe.window_hi.get()),
            optimum_spread_us: fam.optimum_spread().get(),
        },
    )?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
