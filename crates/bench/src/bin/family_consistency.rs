//! Family-consistency experiment: the paper states that "multiple chip
//! samples are used and we find that flash memories within the same family
//! show consistent behavior". We characterize several simulated chips of
//! the family and derive the publishable extraction recipe.
//!
//! Each sample chip's characterization is one independent trial; the
//! fused recipe is computed from the per-chip windows in chip order, so
//! the derived recipe is identical at any `--threads N`.

use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{characterize_sample, fuse_windows, SweepSpec};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::{Micros, PhysicsParams};

#[derive(Debug)]
struct FamilyReport {
    per_chip: Vec<(u64, f64, f64, f64, f64)>, // (seed, t_pew, separation, lo, hi)
    recipe_t_pew_us: f64,
    recipe_window: (f64, f64),
    optimum_spread_us: f64,
}
impl_to_json!(FamilyReport {
    per_chip,
    recipe_t_pew_us,
    recipe_window,
    optimum_spread_us
});

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const CHIPS: u64 = 6;
    let runner = TrialRunner::with_threads(0xFB01, threads_from_env_args()?);
    eprintln!(
        "family_consistency: characterizing {CHIPS} sample chips on {} thread(s) ...",
        runner.threads()
    );
    let seeds: Vec<u64> = (0..CHIPS).map(|i| 0xFB01 + i * 7).collect();
    let sweep = SweepSpec::new(Micros::new(14.0), Micros::new(50.0), Micros::new(2.0))?;

    let windows = runner.run(seeds.len(), |trial| {
        // Chip seeds are the family's fixed identities, not trial-derived.
        let mut chip = FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(4),
            FlashTimings::msp430(),
            seeds[trial.index],
        );
        chip.trace_mut().set_capacity(0);
        characterize_sample(
            &mut chip,
            SegmentAddr::new(0),
            SegmentAddr::new(1),
            50.0,
            &sweep,
            260,
            3,
        )
    });
    let windows = windows.into_iter().collect::<Result<Vec<_>, _>>()?;
    let fam = fuse_windows(windows, 50.0, 7, 3)?;

    let mut table = Table::new([
        "chip seed",
        "optimal tPEW (us)",
        "separation %",
        "window (us)",
    ]);
    let mut per_chip = Vec::new();
    for (seed, w) in seeds.iter().zip(&fam.per_chip) {
        table.row([
            format!("{seed:#x}"),
            format!("{:.0}", w.t_pew.get()),
            format!("{:.1}", w.separation() * 100.0),
            format!("{:.0}..{:.0}", w.window_lo.get(), w.window_hi.get()),
        ]);
        per_chip.push((
            *seed,
            w.t_pew.get(),
            w.separation(),
            w.window_lo.get(),
            w.window_hi.get(),
        ));
    }
    println!("{}", table.render());
    println!(
        "\npublished recipe: tPEW = {} within window {} .. {} (optimum spread {} across chips)",
        fam.recipe.t_pew,
        fam.recipe.window_lo,
        fam.recipe.window_hi,
        fam.optimum_spread()
    );
    println!(
        "worst per-chip separation: {:.1} %",
        fam.worst_separation() * 100.0
    );

    let json = write_json(
        "family_consistency",
        &FamilyReport {
            per_chip,
            recipe_t_pew_us: fam.recipe.t_pew.get(),
            recipe_window: (fam.recipe.window_lo.get(), fam.recipe.window_hi.get()),
            optimum_spread_us: fam.optimum_spread().get(),
        },
    )?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
