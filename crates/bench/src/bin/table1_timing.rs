//! Regenerates the paper's Section V timing results: imprint time
//! (baseline vs accelerated) at 40 K and 70 K cycles, and the extraction
//! time of a replicated watermark.

use flashmark_bench::experiments::table1;
use flashmark_bench::output::{compare_line, write_json, Table};
use flashmark_bench::paper;
use flashmark_par::{threads_from_env_args, TrialRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0xF1671, threads_from_env_args()?);
    eprintln!("table1: imprint/extract timing ...");
    let data = table1(&runner, &[40_000, 70_000])?;

    let mut table = Table::new(["NPE", "baseline (s)", "accelerated (s)", "speedup"]);
    for &(n, base, accel, speedup) in &data.imprint {
        table.row([
            format!("{n}"),
            format!("{base:.0}"),
            format!("{accel:.0}"),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{}", table.render());
    println!();

    let rows = [
        (
            "baseline imprint @40K",
            paper::IMPRINT_BASELINE_40K_S,
            data.imprint[0].1,
        ),
        (
            "accelerated imprint @40K",
            paper::IMPRINT_ACCEL_40K_S,
            data.imprint[0].2,
        ),
        (
            "baseline imprint @70K",
            paper::IMPRINT_BASELINE_70K_S,
            data.imprint[1].1,
        ),
        (
            "accelerated imprint @70K",
            paper::IMPRINT_ACCEL_70K_S,
            data.imprint[1].2,
        ),
    ];
    for (name, p, m) in rows {
        println!("{}", compare_line(name, p, m, "s"));
    }
    println!(
        "{}",
        compare_line(
            "extract (7 replicas)",
            paper::EXTRACT_MS,
            data.extract_s * 1000.0,
            "ms"
        )
    );
    println!("(the paper's 170 ms includes host-side I/O; ours is on-chip time only)");

    let json = write_json("table1", &data)?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
