//! Robustness ablation: how die temperature moves the extraction window.
//!
//! The published recipe's `tPEW` is calibrated at 25 °C. Erase runs faster
//! on a hot die, so a fixed `tPEW` drifts inside (or out of) the window.
//! This experiment quantifies the drift and shows that the verifier's
//! window-retry ladder absorbs realistic temperature excursions.
//!
//! Each temperature is one independent trial that re-creates the same
//! physical chip (fixed seed — it is the same die measured at different
//! temperatures), imprints it, and sweeps the extraction time.

use flashmark_bench::harness::uppercase_ascii_watermark;
use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{CoreError, Extractor, FlashmarkConfig, Imprinter, SweepSpec};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::{Micros, PhysicsParams};

#[derive(Debug)]
struct TempSweep {
    /// `(temp_c, best_t_pe_us, min_ber)` rows.
    rows: Vec<(f64, f64, f64)>,
    /// BER at the 25 °C-calibrated `tPEW` when extracted at each temp.
    fixed_t_pew_rows: Vec<(f64, f64)>,
}
impl_to_json!(TempSweep {
    rows,
    fixed_t_pew_rows
});

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0x7E3, threads_from_env_args()?);
    let wm = uppercase_ascii_watermark(512, 0x7E);
    let sweep = SweepSpec::new(Micros::new(10.0), Micros::new(60.0), Micros::new(2.0))?;
    let temps = [-20.0, 0.0, 25.0, 55.0, 85.0];
    eprintln!(
        "temperature_sweep: {} temperatures on {} thread(s) ...",
        temps.len(),
        runner.threads()
    );

    let per_temp = runner.run(temps.len(), |trial| {
        let temp = temps[trial.index];
        // The same die at every temperature: the chip seed is fixed, not
        // trial-derived.
        let mut flash = FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            FlashTimings::msp430(),
            0x7E3,
        );
        flash.trace_mut().set_capacity(0);
        let seg = SegmentAddr::new(0);
        let cfg = FlashmarkConfig::builder()
            .n_pe(60_000)
            .replicas(1)
            .reads(1)
            .build()?;
        Imprinter::new(&cfg).imprint(&mut flash, seg, &wm)?;

        flash.set_temperature_c(temp);
        let mut best = (0.0f64, f64::INFINITY);
        let mut at_ref = f64::NAN;
        for t in sweep.times() {
            let c = FlashmarkConfig::builder()
                .n_pe(1)
                .replicas(1)
                .reads(1)
                .t_pew(t)
                .build()?;
            let ber = Extractor::new(&c)
                .extract(&mut flash, seg, wm.len())?
                .ber_against(&wm);
            if ber < best.1 {
                best = (t.get(), ber);
            }
            if (t.get() - 28.0).abs() < 0.01 {
                at_ref = ber;
            }
        }
        Ok::<_, CoreError>(((temp, best.0, best.1), (temp, at_ref)))
    });
    let per_temp = per_temp.into_iter().collect::<Result<Vec<_>, _>>()?;
    let (rows, fixed): (Vec<(f64, f64, f64)>, Vec<(f64, f64)>) = per_temp.into_iter().unzip();
    let t_ref = rows
        .iter()
        .find(|&&(temp, _, _)| (temp - 25.0).abs() < 0.01)
        .map_or(0.0, |&(_, t, _)| t);

    let mut table = Table::new(["temp (C)", "best tPE (us)", "min BER %", "BER @28us %"]);
    for ((temp, t, ber), (_, f)) in rows.iter().zip(&fixed) {
        table.row([
            format!("{temp:.0}"),
            format!("{t:.0}"),
            format!("{:.1}", ber * 100.0),
            format!("{:.1}", f * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("\n25C-calibrated optimum: {t_ref:.0} us; the window drifts with temperature,");
    println!("matching the Arrhenius acceleration of Fowler-Nordheim erase.");
    println!(
        "verifiers should extract near the calibration temperature or rely on the retry ladder."
    );

    let json = write_json(
        "temperature_sweep",
        &TempSweep {
            rows,
            fixed_t_pew_rows: fixed,
        },
    )?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
