//! CI perf gate: re-times the segment kernels and fails (exit 1) if any
//! `kernel/*` entry regresses more than 2× against the committed
//! `results/BENCH_runtime.json` baseline, or if a baseline kernel is
//! missing from the current run entirely.
//!
//! Experiment wall times in the baseline are informational only — they
//! depend on trial counts and machine, so only the kernel entries gate.
//! The freshly measured report is written next to the baseline so CI can
//! upload it as an artifact.

use std::process::ExitCode;

use flashmark_bench::microbench::{kernel_suite, RuntimeReport};
use flashmark_bench::output::results_dir;
use flashmark_bench::trend::{append_and_report, perf_record};

/// Allowed slowdown vs the committed baseline before the gate fails.
const BUDGET_FACTOR: f64 = 2.0;

/// Absolute throughput floors (trials/s), independent of the committed
/// baseline: 5× the pre-arena figure of the stress-imprint kernel, so the
/// order-of-magnitude win of the SoA/counter-RNG rewrite can never silently
/// erode back even if the baseline file is regenerated on a slower run.
const KERNEL_FLOORS: [(&str, f64); 1] = [("kernel/bulk_stress_5k", 2_032.0)];

fn main() -> ExitCode {
    let current = kernel_suite();
    for e in &current.entries {
        println!("{:<28} {:>12.3} µs/iter", e.name, e.wall_s * 1e6);
    }

    // Append this run's kernel throughputs to the cross-run trend log
    // (perf drift there is advisory; the hard gate below stays the 2×
    // baseline comparison). A corrupt log fails loudly rather than being
    // silently skipped or overwritten.
    match append_and_report(&results_dir(), perf_record(&current)) {
        Ok(report) => println!(
            "trend: {} run(s) on record ({} perf warning(s))",
            report.records,
            report.warnings.len()
        ),
        Err(e) => {
            eprintln!("failed to append to the trend log: {e}");
            return ExitCode::FAILURE;
        }
    }

    let baseline_path = results_dir().join("BENCH_runtime.json");
    let baseline = match RuntimeReport::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "no usable baseline at {} ({e}); writing fresh report without gating",
                baseline_path.display()
            );
            if let Err(e) = current.write(&baseline_path) {
                eprintln!("failed to write {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
    };

    // Keep the baseline's experiment/* entries; replace kernel timings
    // with this machine's measurements for the uploaded artifact.
    let mut merged = RuntimeReport::new();
    merged.entries.extend(current.entries.iter().cloned());
    merged.entries.extend(
        baseline
            .entries
            .iter()
            .filter(|e| !e.name.starts_with("kernel/"))
            .cloned(),
    );
    if let Err(e) = merged.write(&baseline_path) {
        eprintln!("failed to write {}: {e}", baseline_path.display());
        return ExitCode::FAILURE;
    }

    // A baseline kernel absent from the current run is a loud failure, not
    // a silent skip — otherwise deleting (or renaming) a benchmark would
    // "fix" its regression.
    let missing = baseline.missing_from(&current, "kernel/");
    for name in &missing {
        eprintln!("MISSING KERNEL {name}: in baseline but not measured by this run");
    }

    // The reverse direction is informational: a freshly added benchmark has
    // no baseline row until the Full suite regenerates the artifact, and
    // that must not block the PR that introduces it.
    for e in &current.entries {
        if e.name.starts_with("kernel/") && baseline.get(&e.name).is_none() {
            eprintln!(
                "WARNING {}: measured ({:.1} trials/s) but absent from {}; \
                 not gated until this run's merged report is committed",
                e.name,
                e.trials_per_s,
                baseline_path.display()
            );
        }
    }

    let regressions = baseline.regressions(&current, BUDGET_FACTOR, "kernel/");
    for r in &regressions {
        eprintln!("PERF REGRESSION {r}");
    }

    // Machine-independent floors on the kernels whose speedups the docs
    // advertise.
    let mut floor_failures = 0usize;
    for (name, floor) in KERNEL_FLOORS {
        match current.get(name) {
            Some(e) if e.trials_per_s >= floor => {}
            Some(e) => {
                eprintln!(
                    "KERNEL FLOOR {name}: {:.1} trials/s below the {floor} floor",
                    e.trials_per_s
                );
                floor_failures += 1;
            }
            None => {
                eprintln!("KERNEL FLOOR {name}: not measured by this run");
                floor_failures += 1;
            }
        }
    }

    if regressions.is_empty() && missing.is_empty() && floor_failures == 0 {
        println!(
            "perf smoke OK: no kernel regressed > {BUDGET_FACTOR}x, none missing, floors held"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
