//! Differential fault-injection campaign gate.
//!
//! Runs golden-vs-faulted verification over the fault grid and writes
//! `results/fault_campaign.json`. Exits nonzero if any fault schedule
//! flipped a reject into an accept, or made wear decrease — the two
//! invariants CI's `fault-smoke` job enforces.
//!
//! ```text
//! cargo run --release -p flashmark-bench --bin fault_campaign -- \
//!     --threads 8 --seed 42 [--smoke]
//! ```
//!
//! The artifact is a pure function of `--seed`: any `--threads` value
//! produces byte-identical JSON.

use std::process::ExitCode;

use flashmark_bench::fault_campaign::{fault_campaign, fault_campaign_trials};
use flashmark_bench::output::{write_json, Table};
use flashmark_bench::suite::Profile;
use flashmark_par::{threads_from_env_args, TrialRunner};

fn parse_seed() -> Result<u64, String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--seed" {
            args.next().ok_or("missing value after --seed")?
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            v.to_owned()
        } else {
            continue;
        };
        return value.parse().map_err(|_| format!("bad --seed: {value:?}"));
    }
    Ok(42)
}

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let threads = threads_from_env_args()?;
    let seed = parse_seed()?;
    let profile = if std::env::args().any(|a| a == "--smoke") {
        Profile::Smoke
    } else {
        Profile::Full
    };
    let runner = TrialRunner::with_threads(seed, threads);
    eprintln!(
        "fault_campaign: {} trials ({profile:?}), seed {seed}, {threads} thread(s) ...",
        fault_campaign_trials(profile)
    );

    let data = fault_campaign(&runner, profile)?;
    let mut table = Table::new([
        "scenario",
        "fault class",
        "golden OK",
        "faulted OK",
        "rej→acc",
        "acc→rej",
        "inconcl",
        "BER vs golden",
    ]);
    for r in &data.rows {
        table.row([
            r.scenario.to_string(),
            r.fault_class.to_string(),
            format!("{}/{}", r.golden_genuine, r.trials),
            format!("{}/{}", r.faulted_genuine, r.trials),
            r.reject_to_accept.to_string(),
            r.accept_to_reject.to_string(),
            r.inconclusive.to_string(),
            r.mean_ber_vs_golden
                .map_or_else(|| "—".into(), |b| format!("{:.3} %", b * 100.0)),
        ]);
    }
    println!("{}", table.render());

    let path = write_json("fault_campaign", &data)?;
    eprintln!("wrote {}", path.display());

    if data.invariants_hold() {
        println!(
            "fault campaign OK: 0 reject→accept flips, 0 wear decreases \
             across {} trials",
            fault_campaign_trials(profile)
        );
    } else {
        eprintln!(
            "FAULT CAMPAIGN INVARIANT VIOLATED: {} reject→accept flip(s), \
             {} wear decrease(s)",
            data.reject_to_accept_total, data.wear_decrease_total
        );
    }
    Ok(data.invariants_hold())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("fault_campaign failed: {e}");
            ExitCode::FAILURE
        }
    }
}
