//! Regenerates the paper's Fig. 11: impact of 3/5/7-way replication on the
//! bit error rate across the partial-erase window, for segments imprinted
//! 40 K / 50 K / 60 K / 70 K times.
//!
//! Pass `--layout interleaved` to run the replica-interleaving ablation.

use flashmark_bench::experiments::fig11;
use flashmark_bench::output::{compare_line, results_dir, write_json, Table};
use flashmark_bench::paper;
use flashmark_core::{ReplicaLayout, SweepSpec};
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0xF1611, threads_from_env_args()?);
    let layout = if std::env::args().any(|a| a == "--layout=interleaved" || a == "interleaved") {
        ReplicaLayout::Interleaved
    } else {
        ReplicaLayout::Contiguous
    };
    let levels = [40.0, 50.0, 60.0, 70.0];
    let reps = [3usize, 5, 7];
    let sweep = SweepSpec::new(Micros::new(20.0), Micros::new(56.0), Micros::new(2.0))?;
    eprintln!(
        "fig11: replication sweep ({layout:?} layout) on {} thread(s) ...",
        runner.threads()
    );
    let data = fig11(&runner, &levels, &reps, &sweep, layout)?;

    for &k in &levels {
        let mut table = Table::new(
            ["tPE (us)"]
                .into_iter()
                .map(String::from)
                .chain(reps.iter().map(|r| format!("BER% {r} replicas"))),
        );
        let series: Vec<_> = data.series.iter().filter(|s| s.kcycles == k).collect();
        for (i, &(t, _)) in series[0].points.iter().enumerate() {
            let mut row = vec![format!("{t:.0}")];
            for s in &series {
                row.push(format!("{:.2}", s.points[i].1 * 100.0));
            }
            table.row(row);
        }
        println!("--- imprint stress {k} K ---");
        println!("{}", table.render());
        println!();
        table.write_csv(&results_dir().join(format!("fig11_{k}k.csv")))?;
    }

    println!("minimum BER at 40 K (paper comparison):");
    for &(r, paper_ber) in paper::FIG11_40K_MIN_BER_PCT {
        let measured = data
            .series
            .iter()
            .find(|s| s.kcycles == 40.0 && s.replicas == r)
            .and_then(|s| s.minimum())
            .map_or(f64::NAN, |(_, b)| b * 100.0);
        println!(
            "{}",
            compare_line(
                &format!("  min BER @40K, {r} replicas"),
                paper_ber,
                measured,
                "%"
            )
        );
    }
    let recovered_70k = data
        .series
        .iter()
        .find(|s| s.kcycles == 70.0 && s.replicas == paper::FIG11_70K_ZERO_BER_REPLICAS)
        .and_then(|s| s.minimum())
        .map_or(f64::NAN, |(_, b)| b * 100.0);
    println!(
        "  @70K with 3 replicas: measured min BER {recovered_70k:.2} % (paper: full recovery, 0 %)"
    );

    let json = write_json("fig11", &data)?;
    eprintln!("wrote {} and fig11_*.csv", json.display());
    Ok(())
}
