//! Replays one trial of the observability campaign and pretty-prints its
//! event timeline: flash ops, retry decisions, ladder rungs, fault
//! firings, and the verdict, in op order.
//!
//! Flags:
//!
//! - `--seed=N` — campaign seed (default 42, matching the committed
//!   `results/obs_report.json`).
//! - `--trial=N` — trial index to replay (default 0).
//! - `--full` / `--profile=full` — replay against the full fault grid
//!   (default: smoke).
//!
//! The replay is serial and deterministic: the same seed, trial, and
//! profile always print the same timeline.

use std::process::ExitCode;

use flashmark_bench::observability::dump_trial;
use flashmark_bench::suite::Profile;

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut trial = 0usize;
    let mut profile = Profile::Smoke;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--seed=") {
            match v.parse() {
                Ok(s) => seed = s,
                Err(_) => return usage(&format!("bad --seed value {v:?}")),
            }
        } else if let Some(v) = arg.strip_prefix("--trial=") {
            match v.parse() {
                Ok(t) => trial = t,
                Err(_) => return usage(&format!("bad --trial value {v:?}")),
            }
        } else if arg == "--full" || arg == "--profile=full" {
            profile = Profile::Full;
        } else if arg == "--smoke" || arg == "--profile=smoke" {
            profile = Profile::Smoke;
        } else {
            return usage(&format!("unknown argument {arg:?}"));
        }
    }
    match dump_trial(seed, trial, profile) {
        Ok(timeline) => {
            print!("{timeline}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_dump failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("{error}");
    eprintln!("usage: obs_dump [--seed=N] [--trial=N] [--full|--smoke]");
    ExitCode::FAILURE
}
