//! Replays one trial of the observability campaign and pretty-prints its
//! event timeline: flash ops, retry decisions, ladder rungs, fault
//! firings, and the verdict, in op order.
//!
//! Flags (values accept both `--flag=N` and `--flag N` forms):
//!
//! - `--seed N` — campaign seed (default 42, matching the committed
//!   `results/obs_report.json`).
//! - `--trial N` — trial index to replay (default 0).
//! - `--full` / `--profile=full` — replay against the full fault grid
//!   (default: smoke).
//!
//! The replay is serial and deterministic: the same seed, trial, and
//! profile always print the same timeline. If the trial overflowed its
//! event ring, the header carries a truncation warning with the evicted
//! event count.

use std::process::ExitCode;

use flashmark_bench::observability::dump_trial;
use flashmark_bench::suite::Profile;

/// The value of `--flag=V` / `--flag V`, parsed; `None` when `arg` is not
/// this flag at all.
fn flag_value<T: std::str::FromStr>(
    arg: &str,
    name: &str,
    args: &mut impl Iterator<Item = String>,
) -> Option<Result<T, String>> {
    let raw = if arg == name {
        match args.next() {
            Some(v) => v,
            None => return Some(Err(format!("missing value after {name}"))),
        }
    } else {
        arg.strip_prefix(name)?.strip_prefix('=')?.to_string()
    };
    Some(raw.parse().map_err(|_| format!("bad {name} value {raw:?}")))
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut trial = 0usize;
    let mut profile = Profile::Smoke;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = flag_value(&arg, "--seed", &mut args) {
            match v {
                Ok(s) => seed = s,
                Err(e) => return usage(&e),
            }
        } else if let Some(v) = flag_value(&arg, "--trial", &mut args) {
            match v {
                Ok(t) => trial = t,
                Err(e) => return usage(&e),
            }
        } else if arg == "--full" || arg == "--profile=full" {
            profile = Profile::Full;
        } else if arg == "--smoke" || arg == "--profile=smoke" {
            profile = Profile::Smoke;
        } else {
            return usage(&format!("unknown argument {arg:?}"));
        }
    }
    match dump_trial(seed, trial, profile) {
        Ok(timeline) => {
            print!("{timeline}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_dump failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("{error}");
    eprintln!("usage: obs_dump [--seed N] [--trial N] [--full|--smoke]");
    ExitCode::FAILURE
}
