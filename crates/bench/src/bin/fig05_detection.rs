//! Regenerates the paper's Fig. 5: one-round discrimination of a fresh
//! segment from a 50 K-stressed one at `tPEW` = 23 µs.

use flashmark_bench::experiments::fig05;
use flashmark_bench::output::{compare_line, write_json};
use flashmark_bench::paper;
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0xF1605, threads_from_env_args()?);
    eprintln!("fig05: fresh vs 50K discrimination ...");
    let data = fig05(&runner, 50.0, Micros::new(paper::FIG5_T_PEW_US))?;

    println!(
        "at tPEW = {:.0} us: fresh segment has {} programmed cells, 50K segment {}",
        data.t_pew_us, data.programmed_at_t_pew.0, data.programmed_at_t_pew.1
    );
    println!(
        "{}",
        compare_line(
            "distinguishable bits @23 us",
            paper::FIG5_DISTINGUISHABLE as f64,
            data.distinguishable as f64,
            "bits",
        )
    );
    println!(
        "window-search optimum: tPEW = {:.1} us with {} of {} bits distinguishable",
        data.best_t_pew_us, data.best_distinguishable, data.total
    );

    let json = write_json("fig05", &data)?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
