//! Per-shard service-telemetry viewer: renders the Prometheus-style
//! metrics exposition a service campaign writes
//! (`results/service_metrics.prom` by default, `service_metrics_smoke.prom`
//! with `--smoke`, any file with `--file PATH`) as an aligned per-shard
//! table — queue-depth high watermark, request and probe totals, mean
//! virtual latency and mean retry-ladder depth per shard — plus the
//! service-wide batch-occupancy watermark.
//!
//! The exposition is deterministic (virtual latency is ops-weighted, not
//! wall clock), so the rendered table is byte-identical for campaigns run
//! at any `--threads` count.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use flashmark_bench::output::{results_dir, Table};

/// One shard's accumulated series.
#[derive(Debug, Clone, Copy, Default)]
struct ShardRow {
    queue_depth: u64,
    requests: u64,
    probes: u64,
    vlat_count: u64,
    vlat_sum: u64,
    ladder_count: u64,
    ladder_sum: u64,
}

/// Everything the table needs, folded out of an exposition text.
#[derive(Debug, Clone, Default)]
struct TopData {
    shards: BTreeMap<u64, ShardRow>,
    batch_occupancy: u64,
}

/// Parses one sample line into `(metric, shard label, value)`; `None` for
/// comments, blank lines, and anything non-numeric.
fn parse_sample(line: &str) -> Option<(&str, Option<u64>, u64)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (series, value) = line.rsplit_once(' ')?;
    let value: u64 = value.parse().ok()?;
    let (name, labels) = match series.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}')?),
        None => (series, ""),
    };
    let mut shard = None;
    for pair in labels.split(',').filter(|p| !p.is_empty()) {
        let (key, v) = pair.split_once('=')?;
        let v = v.strip_prefix('"')?.strip_suffix('"')?;
        if key == "shard" {
            shard = Some(v.parse().ok()?);
        }
    }
    Some((name, shard, value))
}

/// Folds an exposition text into the per-shard table data.
fn fold(text: &str) -> TopData {
    let mut data = TopData::default();
    for (name, shard, value) in text.lines().filter_map(parse_sample) {
        if name == "service_batch_occupancy" && shard.is_none() {
            data.batch_occupancy = data.batch_occupancy.max(value);
            continue;
        }
        let Some(shard) = shard else { continue };
        let row = data.shards.entry(shard).or_default();
        match name {
            "service_queue_depth" => row.queue_depth = row.queue_depth.max(value),
            "service_requests_total" => row.requests += value,
            "service_probe_total" => row.probes += value,
            "service_virtual_latency_ops_count" => row.vlat_count += value,
            "service_virtual_latency_ops_sum" => row.vlat_sum += value,
            "service_ladder_depth_count" => row.ladder_count += value,
            "service_ladder_depth_sum" => row.ladder_sum += value,
            _ => {}
        }
    }
    data
}

fn mean(sum: u64, count: u64) -> String {
    if count == 0 {
        "-".to_string()
    } else {
        format!("{:.1}", sum as f64 / count as f64)
    }
}

/// Renders the folded data as the aligned table plus footer lines.
fn render(data: &TopData) -> String {
    let mut table = Table::new([
        "shard",
        "queue depth",
        "requests",
        "probes",
        "mean vlat (ops)",
        "mean ladder",
    ]);
    let mut requests = 0u64;
    let mut probes = 0u64;
    for (shard, row) in &data.shards {
        requests += row.requests;
        probes += row.probes;
        table.row([
            shard.to_string(),
            row.queue_depth.to_string(),
            row.requests.to_string(),
            row.probes.to_string(),
            mean(row.vlat_sum, row.vlat_count),
            mean(row.ladder_sum, row.ladder_count),
        ]);
    }
    format!(
        "{}\n{} shard(s), {requests} request(s), {probes} probe(s); \
         batch occupancy high watermark {}\n",
        table.render(),
        data.shards.len(),
        data.batch_occupancy
    )
}

fn main() -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--file" {
            match args.next() {
                Some(v) => file = Some(PathBuf::from(v)),
                None => return usage("missing value after --file"),
            }
        } else if let Some(v) = arg.strip_prefix("--file=") {
            file = Some(PathBuf::from(v));
        } else if arg == "--smoke" {
            smoke = true;
        } else {
            return usage(&format!("unknown argument {arg:?}"));
        }
    }
    let path = file.unwrap_or_else(|| {
        results_dir().join(if smoke {
            "service_metrics_smoke.prom"
        } else {
            "service_metrics.prom"
        })
    });
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "obs_top: cannot read {} ({e}); run the service_campaign bin (or the suite) first",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{}", path.display());
    print!("{}", render(&fold(&text)));
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    eprintln!("{error}");
    eprintln!("usage: obs_top [--file PATH] [--smoke]");
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# TYPE service_batch_occupancy gauge
service_batch_occupancy 250
# TYPE service_queue_depth gauge
service_queue_depth{shard=\"0\"} 17
service_queue_depth{shard=\"3\"} 11
# TYPE service_requests_total counter
service_requests_total{shard=\"0\"} 120
service_requests_total{shard=\"3\"} 130
# TYPE service_probe_total counter
service_probe_total{shard=\"0\"} 30
# TYPE service_virtual_latency_ops histogram
service_virtual_latency_ops_bucket{shard=\"0\",le=\"256\"} 119
service_virtual_latency_ops_bucket{shard=\"0\",le=\"+Inf\"} 120
service_virtual_latency_ops_sum{shard=\"0\"} 24000
service_virtual_latency_ops_count{shard=\"0\"} 120
";

    #[test]
    fn samples_parse_with_and_without_labels() {
        assert_eq!(
            parse_sample("service_batch_occupancy 250"),
            Some(("service_batch_occupancy", None, 250))
        );
        assert_eq!(
            parse_sample("service_queue_depth{shard=\"3\"} 11"),
            Some(("service_queue_depth", Some(3), 11))
        );
        // le labels are carried but ignored; comments and blanks skip.
        assert_eq!(
            parse_sample("x_bucket{shard=\"1\",le=\"+Inf\"} 9"),
            Some(("x_bucket", Some(1), 9))
        );
        assert_eq!(parse_sample("# TYPE x gauge"), None);
        assert_eq!(parse_sample(""), None);
    }

    #[test]
    fn fold_and_render_summarize_per_shard() {
        let data = fold(SAMPLE);
        assert_eq!(data.batch_occupancy, 250);
        assert_eq!(data.shards.len(), 2);
        assert_eq!(data.shards[&0].requests, 120);
        assert_eq!(data.shards[&0].vlat_sum, 24000);
        let text = render(&data);
        assert!(
            text.contains("2 shard(s), 250 request(s), 30 probe(s)"),
            "{text}"
        );
        assert!(text.contains("200.0"), "mean vlat missing: {text}");
        assert!(text.contains('-'), "empty ladder mean should dash: {text}");
    }
}
