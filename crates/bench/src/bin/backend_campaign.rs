//! Scheme-generic differential backend campaign.
//!
//! Runs the genuine / rejected-die / blank / cloned scenario grid through
//! every [`WatermarkScheme`] backend — NOR tPEW, intrinsic NAND PUF, and
//! ReRAM forming-voltage wear — and writes the comparison artifact:
//!
//! * `results/backend_campaign.json` (or `backend_campaign_smoke.json`
//!   with `--smoke`) — per-trial rows plus per-scheme summaries: verdict
//!   mix, genuine-vs-forgery mismatch asymmetry, imprint cost, and the
//!   per-scheme provenance-registry root. Byte-identical at any
//!   `--threads` count.
//! * `results/trend_log.jsonl` + `results/trend_report.json` — one
//!   `"backend"` record per scheme is appended so `trend_check` gates
//!   detection drift per backend independently.
//!
//! Wall clock goes to stderr only; the artifact stays deterministic.
//!
//! ```text
//! cargo run --release -p flashmark-bench --bin backend_campaign -- \
//!     --threads 8 [--smoke]
//! ```
//!
//! [`WatermarkScheme`]: flashmark_core::WatermarkScheme

use std::process::ExitCode;
use std::time::Instant;

use flashmark_bench::backend_campaign::{run_backend_campaign, BackendCampaignOptions};
use flashmark_bench::output::{results_dir, write_json, Table};
use flashmark_bench::trend::{append_and_report, backend_trend_record};
use flashmark_par::threads_from_env_args;

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let threads = threads_from_env_args()?;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let opts = if smoke {
        BackendCampaignOptions::smoke(threads)
    } else {
        BackendCampaignOptions::full(threads)
    };
    let artifact = if smoke {
        "backend_campaign_smoke"
    } else {
        "backend_campaign"
    };
    eprintln!(
        "backend_campaign: {} trials/scenario, seed {}, {} thread(s) ...",
        opts.trials, opts.seed, threads
    );

    let t0 = Instant::now();
    let data = run_backend_campaign(&opts)?;
    let wall_s = t0.elapsed().as_secs_f64();

    let mut table = Table::new([
        "scheme",
        "imprints",
        "expected",
        "genuine mism",
        "forgery mism",
        "margin",
        "imprint cycles",
    ]);
    for s in &data.schemes {
        table.row([
            s.scheme.clone(),
            if s.imprints { "yes" } else { "no" }.into(),
            format!("{}/{}", s.expected_matches, s.trials),
            format!("{:.4}", s.mean_genuine_mismatch),
            format!("{:.4}", s.mean_counterfeit_mismatch),
            format!("{:.4}", s.forgery_margin),
            s.imprint_cycles.to_string(),
        ]);
    }
    println!("{}", table.render());
    for s in &data.schemes {
        println!(
            "{}: registry root {} over {} records",
            s.scheme, s.registry_root, s.registry_records
        );
    }

    let path = write_json(artifact, &data)?;
    println!("wrote {}", path.display());

    let dir = results_dir();
    let mut report = None;
    for summary in &data.schemes {
        report = Some(append_and_report(
            &dir,
            backend_trend_record(&data, summary),
        )?);
    }
    if let Some(report) = report {
        println!(
            "trend: {} run(s) on record; drift gates {} ({} failure(s), {} warning(s))",
            report.records,
            if report.passed() { "passed" } else { "FAILED" },
            report.failures.len(),
            report.warnings.len()
        );
    }
    eprintln!("backend_campaign: done in {wall_s:.1} s");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("backend_campaign: {e}");
            ExitCode::FAILURE
        }
    }
}
