//! Regenerates the paper's Fig. 4: flash-cell state vs partial-erase time
//! for stress levels 0 K … 100 K, plus the all-cells-erased times.

use flashmark_bench::experiments::fig04;
use flashmark_bench::output::{compare_line, results_dir, write_json, Table};
use flashmark_bench::paper;
use flashmark_core::SweepSpec;
use flashmark_par::{threads_from_env_args, TrialRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0xF1604, threads_from_env_args()?);
    let levels: Vec<f64> = paper::FIG4_ALL_ERASED_US.iter().map(|&(k, _)| k).collect();
    let sweep = SweepSpec::fig4();
    eprintln!(
        "fig04: characterizing {} stress levels (0-120 us sweep) on {} thread(s) ...",
        levels.len(),
        runner.threads()
    );
    let data = fig04(&runner, &levels, &sweep, 3)?;

    let mut table = Table::new(
        ["tPE (us)"].into_iter().map(String::from).chain(
            data.curves
                .iter()
                .map(|c| format!("cells_0 @{}K", c.kcycles)),
        ),
    );
    for (i, &(t, _, _)) in data.curves[0].points.iter().enumerate() {
        let mut row = vec![format!("{t:.0}")];
        for c in &data.curves {
            row.push(format!("{}", c.points[i].1));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!();

    println!("all-cells-erased times (paper Fig. 4 anchors):");
    for c in &data.curves {
        let paper_t = paper::FIG4_ALL_ERASED_US
            .iter()
            .find(|&&(k, _)| k == c.kcycles)
            .map_or(f64::NAN, |&(_, t)| t);
        println!(
            "{}",
            compare_line(
                &format!("  all erased @{:>3}K", c.kcycles),
                paper_t,
                c.all_erased_us,
                "us"
            )
        );
    }
    if let Some(onset) = data.curves[0].onset_us {
        println!(
            "{}",
            compare_line(
                "  fresh erase onset",
                paper::FIG4_FRESH_ONSET_US,
                onset,
                "us"
            )
        );
    }

    table.write_csv(&results_dir().join("fig04.csv"))?;
    let json = write_json("fig04", &data)?;
    eprintln!("wrote {} and fig04.csv", json.display());
    Ok(())
}
