//! Regenerates the paper's Fig. 9: bit error rate of a single-read,
//! single-copy 512-byte watermark extraction as a function of the partial
//! erase time, for imprint stress levels 0 K … 100 K.

use flashmark_bench::experiments::fig09;
use flashmark_bench::output::{compare_line, results_dir, write_json, Table};
use flashmark_bench::paper;
use flashmark_core::SweepSpec;
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0xF1609, threads_from_env_args()?);
    let levels = [0.0, 20.0, 40.0, 60.0, 80.0, 100.0];
    let sweep = SweepSpec::new(Micros::new(2.0), Micros::new(80.0), Micros::new(2.0))?;
    eprintln!(
        "fig09: BER sweep over {} stress levels on {} thread(s) ...",
        levels.len(),
        runner.threads()
    );
    let data = fig09(&runner, &levels, &sweep)?;

    println!(
        "watermark 1-bit fraction: {:.3} (small-tPE plateau)",
        data.ones_fraction
    );
    let mut table = Table::new(
        ["tPE (us)"]
            .into_iter()
            .map(String::from)
            .chain(data.series.iter().map(|s| format!("BER% @{}K", s.kcycles))),
    );
    for (i, &(t, _)) in data.series[0].points.iter().enumerate() {
        let mut row = vec![format!("{t:.0}")];
        for s in &data.series {
            row.push(format!("{:.1}", s.points[i].1 * 100.0));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!();

    println!("minimum BER per stress level:");
    for s in &data.series {
        let (t_min, ber_min) = s.minimum().expect("non-empty sweep");
        let paper_min = paper::FIG9_MIN_BER_PCT
            .iter()
            .find(|&&(k, _)| k == s.kcycles)
            .map(|&(_, b)| b);
        match paper_min {
            Some(p) => println!(
                "{}  (at tPE {:.0} us)",
                compare_line(&format!("  min BER @{:>3}K", s.kcycles), p, ber_min * 100.0, "%"),
                t_min
            ),
            None => println!(
                "  min BER @{:>3}K                              measured {:>8.2} %    (at tPE {:.0} us)",
                s.kcycles,
                ber_min * 100.0,
                t_min
            ),
        }
    }

    table.write_csv(&results_dir().join("fig09.csv"))?;
    let json = write_json("fig09", &data)?;
    eprintln!("wrote {} and fig09.csv", json.display());
    Ok(())
}
