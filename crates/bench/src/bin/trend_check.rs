//! CI drift gate over the cross-run trend log.
//!
//! Loads and chain-verifies `results/trend_log.jsonl` (or `--log PATH`),
//! recomputes the drift report, rewrites `trend_report.json` next to the
//! log, and exits nonzero on any detection-rate drift: a provenance class
//! moving toward acceptance between consecutive comparable runs, or a
//! recorded fault-campaign flip count above zero. Perf drift (kernel
//! trials/s below the windowed median) is printed as a warning and never
//! gates — wall clock varies across machines; detection rates must not.
//!
//! ```text
//! cargo run --release -p flashmark-bench --bin trend_check -- [--log PATH]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use flashmark_bench::output::{results_dir, write_json_in};
use flashmark_bench::trend::{report_data, TREND_LOG_NAME, TREND_REPORT_NAME};
use flashmark_trend::{compute_drift, DriftOptions, TrendLog};

fn main() -> ExitCode {
    let mut log_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--log" {
            match args.next() {
                Some(v) => log_path = Some(PathBuf::from(v)),
                None => return usage("missing value after --log"),
            }
        } else if let Some(v) = arg.strip_prefix("--log=") {
            log_path = Some(PathBuf::from(v));
        } else {
            return usage(&format!("unknown argument {arg:?}"));
        }
    }
    let log_path = log_path.unwrap_or_else(|| results_dir().join(TREND_LOG_NAME));

    let log = match TrendLog::load(&log_path) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("trend_check: {} is unusable: {e}", log_path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = compute_drift(&log, &DriftOptions::default());

    let dir = log_path.parent().map_or_else(results_dir, PathBuf::from);
    match write_json_in(&dir, TREND_REPORT_NAME, &report_data(&report)) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("trend_check: cannot write report: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "{}: {} record(s), chain root {}, {} comparable group(s)",
        log_path.display(),
        report.records,
        log.root(),
        report.checks.len()
    );
    for check in &report.checks {
        println!(
            "  {}@{} seed {}: {} run(s)",
            check.kind, check.params, check.seed, check.runs
        );
    }
    for warning in &report.warnings {
        eprintln!("WARNING {warning}");
    }
    for failure in &report.failures {
        eprintln!("DETECTION DRIFT {failure}");
    }
    if report.passed() {
        println!(
            "trend check OK: no detection drift across {} record(s) ({} warning(s))",
            report.records,
            report.warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "trend check FAILED: {} detection drift failure(s)",
            report.failures.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("{error}");
    eprintln!("usage: trend_check [--log PATH]");
    ExitCode::FAILURE
}
