//! Design-space trade-off the paper motivates in Section V: "Ideally, we
//! would like to have a minimum number of P/E stresses and thus reduce
//! imprint time and to have no bit errors during extraction ... these two
//! are conflicting requirements."
//!
//! This experiment quantifies the conflict for the full record workflow:
//! at each `NPE`, several chips are manufactured and verified; we report
//! the verification pass rate and the (accelerated) imprint time.

use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{FlashmarkConfig, TestStatus, Verdict, Verifier};
use flashmark_msp430::Msp430Variant;
use flashmark_nor::interface::FlashInterface;
use flashmark_physics::Micros;
use flashmark_supply::Manufacturer;

#[derive(Debug)]
struct NpeSweep {
    /// `(n_pe, chips, passed, imprint_s)` rows.
    rows: Vec<(u64, usize, usize, f64)>,
}
impl_to_json!(NpeSweep { rows });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MFG: u16 = 0x7C01;
    const CHIPS: usize = 6;
    let levels = [20_000u64, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000];
    eprintln!(
        "npe_sweep: {CHIPS} chips per level, {} levels ...",
        levels.len()
    );

    let mut rows = Vec::new();
    for &n_pe in &levels {
        let cfg = FlashmarkConfig::builder()
            .n_pe(n_pe)
            .replicas(7)
            .t_pew(Micros::new(28.0))
            .build()?;
        let mut fab = Manufacturer::new(MFG, Msp430Variant::F5438, cfg.clone());
        let verifier = Verifier::new(cfg, MFG);
        let mut passed = 0;
        let mut imprint_s = 0.0;
        for i in 0..CHIPS {
            let mut chip = fab.produce(0x59EE9 + n_pe + i as u64, TestStatus::Accept)?;
            imprint_s = chip.flash.main().elapsed().get(); // dominated by the imprint
            let seg = chip.flash.watermark_segment();
            if verifier.verify(&mut chip.flash, seg)?.verdict == Verdict::Genuine {
                passed += 1;
            }
        }
        rows.push((n_pe, CHIPS, passed, imprint_s));
    }

    let mut table = Table::new(["NPE", "chips", "verified genuine", "imprint (s, accel)"]);
    for &(n, c, p, t) in &rows {
        table.row([
            n.to_string(),
            c.to_string(),
            p.to_string(),
            format!("{t:.0}"),
        ]);
    }
    println!("{}", table.render());
    println!("\nthe conflict the paper describes: below ~40-50K cycles the record does not");
    println!("verify reliably even with 7 replicas + retries; above, verification is clean");
    println!("but imprint time grows linearly with NPE.");

    let json = write_json("npe_sweep", &NpeSweep { rows })?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
