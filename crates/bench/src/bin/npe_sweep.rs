//! Design-space trade-off the paper motivates in Section V: "Ideally, we
//! would like to have a minimum number of P/E stresses and thus reduce
//! imprint time and to have no bit errors during extraction ... these two
//! are conflicting requirements."
//!
//! This experiment quantifies the conflict for the full record workflow:
//! at each `NPE`, several chips are manufactured and verified; we report
//! the verification pass rate and the (accelerated) imprint time.
//!
//! Every (level, chip) pair is one independent trial — its own
//! manufacturer and verifier — so the sweep parallelizes across
//! `--threads N` with bit-identical results.

use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{FlashmarkConfig, TestStatus, Verdict, Verifier};
use flashmark_msp430::Msp430Variant;
use flashmark_nor::interface::FlashInterface;
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::Micros;
use flashmark_supply::Manufacturer;

#[derive(Debug)]
struct NpeSweep {
    /// `(n_pe, chips, passed, imprint_s)` rows.
    rows: Vec<(u64, usize, usize, f64)>,
}
impl_to_json!(NpeSweep { rows });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const MFG: u16 = 0x7C01;
    const CHIPS: usize = 6;
    let runner = TrialRunner::with_threads(0x59EE9, threads_from_env_args()?);
    let levels = [20_000u64, 30_000, 40_000, 50_000, 60_000, 70_000, 80_000];
    eprintln!(
        "npe_sweep: {CHIPS} chips per level, {} levels, {} thread(s) ...",
        levels.len(),
        runner.threads()
    );

    let outcomes = runner.run(levels.len() * CHIPS, |trial| {
        let n_pe = levels[trial.index / CHIPS];
        let i = trial.index % CHIPS;
        let cfg = FlashmarkConfig::builder()
            .n_pe(n_pe)
            .replicas(7)
            .t_pew(Micros::new(28.0))
            .build()?;
        let mut fab = Manufacturer::new(MFG, Msp430Variant::F5438, cfg.clone());
        let verifier = Verifier::new(cfg, MFG);
        // Chip seeds match the historical serial sweep, so the family is
        // the same regardless of the thread count.
        let mut chip = fab.produce(0x59EE9 + n_pe + i as u64, TestStatus::Accept)?;
        let imprint_s = chip.flash.main().elapsed().get(); // dominated by the imprint
        let seg = chip.flash.watermark_segment();
        let genuine = verifier.verify(&mut chip.flash, seg)?.verdict == Verdict::Genuine;
        Ok::<_, flashmark_core::CoreError>((genuine, imprint_s))
    });
    let outcomes = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;

    let rows: Vec<(u64, usize, usize, f64)> = levels
        .iter()
        .enumerate()
        .map(|(li, &n_pe)| {
            let per_level = &outcomes[li * CHIPS..(li + 1) * CHIPS];
            let passed = per_level.iter().filter(|&&(ok, _)| ok).count();
            let imprint_s = per_level.last().map_or(0.0, |&(_, s)| s);
            (n_pe, CHIPS, passed, imprint_s)
        })
        .collect();

    let mut table = Table::new(["NPE", "chips", "verified genuine", "imprint (s, accel)"]);
    for &(n, c, p, t) in &rows {
        table.row([
            n.to_string(),
            c.to_string(),
            p.to_string(),
            format!("{t:.0}"),
        ]);
    }
    println!("{}", table.render());
    println!("\nthe conflict the paper describes: below ~40-50K cycles the record does not");
    println!("verify reliably even with 7 replicas + retries; above, verification is clean");
    println!("but imprint time grows linearly with NPE.");

    let json = write_json("npe_sweep", &NpeSweep { rows })?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
