//! Ablation: the paper's replication scheme vs classic ECC (Hamming) at
//! the same record size — the "error correction techniques" alternative
//! Section V mentions.

use flashmark_bench::experiments::{ecc_ablation, read_majority_ablation};
use flashmark_bench::output::{write_json, Table};
use flashmark_core::SweepSpec;
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::Micros;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = threads_from_env_args()?;
    eprintln!("ecc_ablation: replication vs hamming at 50K ...");
    let data = ecc_ablation(
        &TrialRunner::with_threads(0xECC, threads),
        50.0,
        Micros::new(30.0),
    )?;
    let mut table = Table::new(["scheme", "channel bits", "post-decode BER %", "clean?"]);
    for (name, bits, ber, ok) in &data.rows {
        table.row([
            name.clone(),
            bits.to_string(),
            format!("{:.2}", ber * 100.0),
            ok.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!();

    eprintln!("read-majority ablation at 40K ...");
    let sweep = SweepSpec::new(Micros::new(24.0), Micros::new(44.0), Micros::new(2.0))?;
    let rm = read_majority_ablation(
        &TrialRunner::with_threads(0xECC2, threads),
        40.0,
        &sweep,
        &[1, 3, 5],
    )?;
    let mut table = Table::new(["reads (N)", "min single-copy BER %"]);
    for &(n, ber) in &rm.rows {
        table.row([n.to_string(), format!("{:.2}", ber * 100.0)]);
    }
    println!("{}", table.render());

    write_json("ecc_ablation", &data)?;
    let json = write_json("read_majority", &rm)?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
