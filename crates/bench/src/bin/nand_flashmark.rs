//! Flashmark on NAND (the paper's conclusion claims broad applicability):
//! runs the full imprint/extract pipeline on a simulated SLC NAND part and
//! compares imprint times against the MSP430 embedded NOR.

use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{Extractor, FlashmarkConfig, Imprinter, Watermark};
use flashmark_msp430::Msp430Flash;
use flashmark_nand::{NandChip, NandGeometry, NandWordAdapter};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

#[derive(Debug)]
struct NandDemo {
    rows: Vec<(String, u64, f64, f64)>, // (device, n_pe, imprint_s, ber)
}
impl_to_json!(NandDemo { rows });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wm = Watermark::from_ascii("NAND-TOO")?;
    let mut rows = Vec::new();

    for n_pe in [40_000u64, 70_000] {
        let cfg = FlashmarkConfig::builder()
            .n_pe(n_pe)
            .replicas(7)
            .t_pew(Micros::new(28.0))
            .build()?;

        // MSP430 embedded NOR.
        let mut nor = Msp430Flash::f5438(0x0A0);
        let seg = nor.watermark_segment();
        let report = Imprinter::new(&cfg).imprint(&mut nor, seg, &wm)?;
        let e = Extractor::new(&cfg).extract(&mut nor, seg, wm.len())?;
        rows.push((
            "MSP430 NOR".to_string(),
            n_pe,
            report.elapsed.get(),
            e.ber_against(&wm),
        ));

        // SLC NAND through the adapter — identical code path.
        let mut nand = NandWordAdapter::new(NandChip::new(NandGeometry::tiny(), 0x0A1));
        let seg = SegmentAddr::new(0);
        let report = Imprinter::new(&cfg).imprint(&mut nand, seg, &wm)?;
        let e = Extractor::new(&cfg).extract(&mut nand, seg, wm.len())?;
        rows.push((
            "SLC NAND".to_string(),
            n_pe,
            report.elapsed.get(),
            e.ber_against(&wm),
        ));
    }

    let mut table = Table::new(["device", "NPE", "imprint (s)", "post-vote BER %"]);
    for (dev, n, t, ber) in &rows {
        table.row([
            dev.clone(),
            n.to_string(),
            format!("{t:.0}"),
            format!("{:.2}", ber * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("\nsame Imprinter/Extractor code drove both devices (FlashInterface trait)");

    let json = write_json("nand_demo", &NandDemo { rows })?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
