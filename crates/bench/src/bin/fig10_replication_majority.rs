//! Regenerates the paper's Fig. 10: extracting a 30-bit watermark slice
//! from 7 replicas at 50 K stress (`tPEW` = 28 µs) and recovering it with
//! majority voting.

use flashmark_bench::experiments::fig10;
use flashmark_bench::output::write_json;
use flashmark_bench::paper;
use flashmark_par::{threads_from_env_args, TrialRunner};
use flashmark_physics::Micros;

fn bit_row(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '#' } else { '.' }).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runner = TrialRunner::with_threads(0xF1610, threads_from_env_args()?);
    eprintln!("fig10: 7-replica majority extraction at 50K ...");
    let data = fig10(
        &runner,
        paper::FIG10_BITS,
        paper::FIG10_REPLICAS,
        paper::FIG10_STRESS_KCYCLES,
        Micros::new(paper::FIG10_T_PEW_US),
    )?;

    println!("bit index:   123456789012345678901234567890  (# = logic 1, . = logic 0)");
    println!("reference:   {}", bit_row(&data.reference));
    for (i, replica) in data.replicas.iter().enumerate() {
        println!(
            "replica {}:   {}   ({} errors)",
            i + 1,
            bit_row(replica),
            data.replica_errors[i]
        );
    }
    println!(
        "recovered:   {}   ({} errors)",
        bit_row(&data.recovered),
        data.recovered_errors
    );
    println!();
    println!(
        "error asymmetry across replicas: bad→good {} vs good→bad {} (paper: bad→good dominates)",
        data.bad_to_good, data.good_to_bad
    );
    println!(
        "majority-voted BER = {} (paper: 0)",
        data.recovered_errors as f64 / data.recovered.len() as f64
    );

    let json = write_json("fig10", &data)?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
