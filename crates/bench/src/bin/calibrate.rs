//! Calibration tool: evaluates candidate wear-susceptibility tables and
//! erase-only wear weights against the paper's Fig. 9 BER minima and
//! Fig. 4 all-erased anchors.
//!
//! This is the tool that produced the default `SusceptibilityTable`; it is
//! kept in-tree so the calibration is reproducible when the physics model
//! changes.

use flashmark_core::{Extractor, FlashmarkConfig, Imprinter, SweepSpec};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_physics::{PhysicsParams, SusceptibilityTable};

use flashmark_bench::harness::uppercase_ascii_watermark;

fn min_ber(params: &PhysicsParams, seed: u64, kcycles: f64, sweep: &SweepSpec) -> (f64, f64) {
    let mut flash = FlashController::new(
        params.clone(),
        FlashGeometry::single_bank(2),
        FlashTimings::msp430(),
        seed,
    );
    let seg = SegmentAddr::new(0);
    let wm = uppercase_ascii_watermark(512, seed ^ 0x99);
    let cfg = FlashmarkConfig::builder()
        .n_pe((kcycles * 1000.0) as u64)
        .replicas(1)
        .reads(1)
        .build()
        .expect("valid");
    Imprinter::new(&cfg)
        .imprint(&mut flash, seg, &wm)
        .expect("imprint");
    let mut best = (0.0, f64::INFINITY);
    for t in sweep.times() {
        if t.get() <= 0.0 {
            continue;
        }
        let cfg_t = FlashmarkConfig::builder()
            .n_pe(1)
            .replicas(1)
            .reads(1)
            .t_pew(t)
            .build()
            .expect("valid");
        let e = Extractor::new(&cfg_t)
            .extract(&mut flash, seg, wm.len())
            .expect("extract");
        let ber = e.ber_against(&wm);
        if ber < best.1 {
            best = (t.get(), ber);
        }
    }
    best
}

fn evaluate(label: &str, params: &PhysicsParams) {
    let paper = [(20.0, 19.9), (40.0, 11.8), (60.0, 7.6), (80.0, 2.3)];
    let sweep = SweepSpec::new(
        flashmark_physics::Micros::new(2.0),
        flashmark_physics::Micros::new(80.0),
        flashmark_physics::Micros::new(2.0),
    )
    .expect("valid");
    print!("{label:<28}");
    for (k, target) in paper {
        let (t, ber) = min_ber(params, 0xCA11B, k, &sweep);
        print!(
            "  {k:>3.0}K: {:>5.1}%/{target:<4.1} @{t:>2.0}us",
            ber * 100.0
        );
    }
    println!();
}

fn with_table(quantiles: &[(f64, f64)], erase_only: f64) -> PhysicsParams {
    let mut p = PhysicsParams::msp430_like();
    p.susceptibility =
        SusceptibilityTable::from_quantiles(quantiles.to_vec()).expect("candidate table valid");
    p.wear.erase_only = erase_only;
    p
}

fn main() {
    println!("candidate                     min BER (measured/paper target)");
    evaluate("default", &PhysicsParams::msp430_like());

    // Steep low-S cluster: weak responders concentrated at S in 0.02-0.10
    // so each stress level samples a different CDF slice.
    let steep: [(f64, f64); 12] = [
        (0.000, 0.018),
        (0.020, 0.024),
        (0.050, 0.028),
        (0.122, 0.036),
        (0.190, 0.046),
        (0.320, 0.092),
        (0.400, 0.250),
        (0.470, 0.700),
        (0.520, 1.000),
        (0.560, 1.020),
        (0.900, 1.060),
        (1.000, 1.150),
    ];
    evaluate("steep cluster, eo 0.02", &with_table(&steep, 0.02));
    // Same idea but with the cluster shifted up to S in 0.03-0.15, thinning
    // the floor shared by all levels.
    let shifted: [(f64, f64); 11] = [
        (0.000, 0.018),
        (0.015, 0.030),
        (0.060, 0.040),
        (0.150, 0.055),
        (0.260, 0.090),
        (0.340, 0.150),
        (0.400, 0.250),
        (0.470, 0.700),
        (0.520, 1.000),
        (0.900, 1.060),
        (1.000, 1.150),
    ];
    evaluate("shifted cluster, eo 0.02", &with_table(&shifted, 0.02));
    let lighter: Vec<(f64, f64)> = shifted
        .iter()
        .map(|&(u, s)| {
            if s < 0.5 && u > 0.0 {
                (u * 0.8, s)
            } else {
                (u, s)
            }
        })
        .collect();
    evaluate("shifted x0.8, eo 0.02", &with_table(&lighter, 0.02));

    // Endpoint-matched: thin the sub-0.05 floor for the 80K target while
    // keeping the 20K mass.
    let endpoint: [(f64, f64); 11] = [
        (0.000, 0.018),
        (0.010, 0.035),
        (0.040, 0.048),
        (0.110, 0.058),
        (0.240, 0.090),
        (0.330, 0.150),
        (0.400, 0.250),
        (0.470, 0.700),
        (0.520, 1.000),
        (0.900, 1.060),
        (1.000, 1.150),
    ];
    evaluate("endpoint, eo 0.02", &with_table(&endpoint, 0.02));
    // Midpoint between `shifted` and `endpoint` in the 0.04-0.06 band.
    let mid: [(f64, f64); 11] = [
        (0.000, 0.018),
        (0.012, 0.032),
        (0.050, 0.044),
        (0.130, 0.056),
        (0.250, 0.090),
        (0.335, 0.150),
        (0.400, 0.250),
        (0.470, 0.700),
        (0.520, 1.000),
        (0.900, 1.060),
        (1.000, 1.150),
    ];
    evaluate("mid, eo 0.02", &with_table(&mid, 0.02));
    // Endpoint with a fattened 0.09-0.25 band to lift the 20K minimum.
    let endpoint_fat: [(f64, f64); 11] = [
        (0.000, 0.018),
        (0.010, 0.035),
        (0.040, 0.048),
        (0.110, 0.058),
        (0.300, 0.090),
        (0.390, 0.150),
        (0.450, 0.250),
        (0.490, 0.700),
        (0.530, 1.000),
        (0.900, 1.060),
        (1.000, 1.150),
    ];
    evaluate("endpoint fat, eo 0.02", &with_table(&endpoint_fat, 0.02));

    // Candidate grid: scale the weak-responder mass and good-cell wear.
    for &(label, scale, erase_only) in &[
        ("weak x1.4, eo 0.02", 1.4, 0.02),
        ("weak x1.8, eo 0.02", 1.8, 0.02),
        ("weak x1.8, eo 0.06", 1.8, 0.06),
        ("weak x2.2, eo 0.06", 2.2, 0.06),
        ("weak x2.6, eo 0.10", 2.6, 0.10),
    ] {
        let base: [(f64, f64); 10] = [
            (0.000, 0.020),
            (0.015, 0.045),
            (0.045, 0.065),
            (0.150, 0.085),
            (0.240, 0.125),
            (0.400, 0.250),
            (0.470, 0.700),
            (0.520, 1.000),
            (0.900, 1.060),
            (1.000, 1.150),
        ];
        let scaled: Vec<(f64, f64)> = base
            .iter()
            .map(|&(u, s)| {
                if s < 0.5 {
                    ((u * scale).min(0.52), s)
                } else {
                    (u, s)
                }
            })
            .collect();
        // Re-monotonize the probability column after scaling.
        let mut fixed = scaled;
        for i in 1..fixed.len() {
            if fixed[i].0 < fixed[i - 1].0 {
                fixed[i].0 = fixed[i - 1].0;
            }
        }
        evaluate(label, &with_table(&fixed, erase_only));
    }
}
