//! Recycled-chip detector comparison: the paper's partial-erase primitive
//! (Fig. 5 / `StressDetector`) against the FFD/timing-style partial-program
//! baseline (related work \[6\]/\[7\], `ProgramTimeDetector`), swept over prior
//! wear levels.

use flashmark_bench::harness::{precondition_segment, test_chip};
use flashmark_bench::impl_to_json;
use flashmark_bench::output::{write_json, Table};
use flashmark_core::{ProgramTimeDetector, SegmentCondition, StressDetector};
use flashmark_nor::SegmentAddr;

#[derive(Debug)]
struct DetectorComparison {
    /// `(prior_kcycles, erase_frac, erase_verdict, prog_frac, prog_verdict)`
    rows: Vec<(f64, f64, bool, f64, bool)>,
}
impl_to_json!(DetectorComparison { rows });

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let levels = [0.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    eprintln!(
        "detector_comparison: sweeping {} prior-wear levels ...",
        levels.len()
    );
    let mut flash = test_chip(0xDE7E);
    let erase_det = StressDetector::fig5();
    let prog_det = ProgramTimeDetector::default_for_msp430();

    let mut rows = Vec::new();
    for (i, &k) in levels.iter().enumerate() {
        let seg = SegmentAddr::new(i as u32);
        precondition_segment(&mut flash, seg, (k * 1000.0) as u64)?;
        let e = erase_det.classify(&mut flash, seg)?;
        let p = prog_det.classify(&mut flash, seg)?;
        rows.push((
            k,
            e.programmed_fraction(),
            e.verdict == SegmentCondition::Stressed,
            p.programmed_fraction(),
            p.verdict == SegmentCondition::Stressed,
        ));
    }

    let mut table = Table::new([
        "prior wear (K)",
        "partial-erase frac",
        "flags?",
        "partial-program frac",
        "flags?",
    ]);
    for &(k, ef, ev, pf, pv) in &rows {
        table.row([
            format!("{k:.0}"),
            format!("{ef:.2}"),
            ev.to_string(),
            format!("{pf:.2}"),
            pv.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("\nboth primitives expose prior use; the partial-erase detector saturates");
    println!("earlier (higher sensitivity at low wear), consistent with the paper's choice.");

    let json = write_json("detector_comparison", &DetectorComparison { rows })?;
    eprintln!("wrote {}", json.display());
    Ok(())
}
