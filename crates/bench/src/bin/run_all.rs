//! Runs every experiment and writes a paper-vs-measured Markdown report
//! (`results/experiments_report.md`) — the data behind `EXPERIMENTS.md`.
//!
//! Flags:
//!
//! - `--threads N` — worker threads (default: available parallelism;
//!   `1` runs the exact legacy serial path). Results are bit-identical
//!   at any thread count.
//! - `--smoke` / `--profile=smoke` — reduced trial counts for CI.
//!
//! Exits nonzero if any experiment fails; the report still covers every
//! experiment that ran.

use std::process::ExitCode;

use flashmark_bench::output::results_dir;
use flashmark_bench::suite::{run_suite, Profile, SuiteOptions};
use flashmark_par::threads_from_env_args;

fn main() -> ExitCode {
    let threads = match threads_from_env_args() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let smoke = std::env::args()
        .skip(1)
        .any(|a| a == "--smoke" || a == "--profile=smoke");
    let opts = SuiteOptions {
        threads,
        profile: if smoke { Profile::Smoke } else { Profile::Full },
        results_dir: results_dir(),
    };
    let report = match run_suite(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.markdown);
    eprintln!(
        "wrote {}",
        opts.results_dir.join("experiments_report.md").display()
    );
    let failures = report.failures();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in failures {
            eprintln!(
                "experiment {} failed: {}",
                f.name,
                f.error.as_deref().unwrap_or("unknown")
            );
        }
        ExitCode::FAILURE
    }
}
