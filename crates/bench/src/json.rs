//! A tiny JSON value model and serializer.
//!
//! The build environment is fully offline, so `serde`/`serde_json` are not
//! available; experiment artifacts only need one-way serialization of plain
//! result structs, which this module covers in ~150 lines. Structs opt in
//! with the [`impl_to_json!`](crate::impl_to_json) field-listing macro.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite floats serialize as `null`).
    Num(f64),
    /// An integer kept exact (u64 range).
    UInt(u64),
    /// A signed integer kept exact (i64 range).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with two-space indentation (the `serde_json` style the
    /// result artifacts were originally written in).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Num(x) => {
                if x.is_finite() {
                    // Keep integral floats readable (`1.0` not `1`), like
                    // serde_json does for f64.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Self::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Self::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Self::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value (the serialization half of `Serialize`).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
to_json_int!(i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
        ])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson, E: ToJson> ToJson for (A, B, C, D, E) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
            self.4.to_json(),
        ])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields, keeping the
/// result-struct definitions as close to the old `#[derive(Serialize)]`
/// form as possible:
///
/// ```ignore
/// impl_to_json!(Fig05Data { t_pew_us, distinguishable, total });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)) ),*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nesting() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\n".into())),
            (
                "xs".into(),
                Json::Arr(vec![Json::UInt(1), Json::Num(2.5), Json::Null]),
            ),
        ]);
        let s = v.pretty();
        assert!(s.contains("\\\"b\\\\c\\n"));
        assert!(s.contains("2.5"));
        assert!(s.contains("null"));
    }

    #[test]
    fn integral_floats_keep_a_decimal() {
        assert_eq!(Json::Num(3.0).pretty(), "3.0");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
    }

    #[test]
    fn signed_integers_stay_exact() {
        assert_eq!((-3i64).to_json().pretty(), "-3");
        assert_eq!(7i32.to_json().pretty(), "7");
    }

    struct Demo {
        a: u32,
        b: Vec<(f64, usize)>,
        c: Option<f64>,
    }
    impl_to_json!(Demo { a, b, c });

    #[test]
    fn derive_macro_lists_fields_in_order() {
        let d = Demo {
            a: 7,
            b: vec![(1.5, 2)],
            c: None,
        };
        let s = d.to_json().pretty();
        let (ia, ib, ic) = (
            s.find("\"a\"").unwrap(),
            s.find("\"b\"").unwrap(),
            s.find("\"c\"").unwrap(),
        );
        assert!(ia < ib && ib < ic, "{s}");
        assert!(s.contains("\"c\": null"));
    }
}
