//! The observability campaign behind `results/obs_report.json` and the
//! `obs_dump` timeline tool.
//!
//! [`obs_campaign`] re-runs the differential fault-injection grid of
//! [`crate::fault_campaign`] with a per-trial
//! [`Collector`](flashmark_obs::Collector) installed around every trial,
//! then merges the collectors **in trial order** into a deterministic
//! aggregate: counters, histograms, and per-trial summaries that are
//! byte-identical at any `--threads` count. Wall-clock timings never enter
//! the aggregate — the suite quarantines them into
//! `results/obs_timings.json`, which the determinism test skips.
//!
//! [`dump_trial`] replays a single trial of the same campaign serially
//! with a large event ring and renders its op-ordered event timeline —
//! flash operations, retry decisions, ladder rungs, fault firings, and the
//! final verdict, exactly as the instrumented stack emitted them.

use std::fmt::Write as _;

use flashmark_core::CoreError;
use flashmark_obs::run_instrumented;
use flashmark_par::TrialRunner;

use crate::fault_campaign::{fault_grid, run_trial, trials_per_cell, SCENARIOS};
use crate::impl_to_json;
use crate::suite::Profile;

/// One merged `(group, name)` counter of the campaign aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsCounterRow {
    /// Counter group, e.g. `flash`, `retry`, `verdict`.
    pub group: String,
    /// Counter name within the group, e.g. `erase_segment`.
    pub name: String,
    /// Merged count across all trials.
    pub count: u64,
}
impl_to_json!(ObsCounterRow { group, name, count });

/// One merged `(metric, bucket)` histogram bin of the campaign aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsHistogramRow {
    /// Histogram metric, e.g. `t_pe_us`.
    pub metric: String,
    /// Integer bucket (µs quantities are rounded at record time).
    pub bucket: i64,
    /// Merged observation count for the bucket.
    pub count: u64,
}
impl_to_json!(ObsHistogramRow {
    metric,
    bucket,
    count
});

/// One trial's bounded summary in the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsTrialRow {
    /// Trial index within the campaign.
    pub trial_index: u64,
    /// Events the trial emitted in total.
    pub ops: u64,
    /// Events still retained in the trial's ring at merge time.
    pub events_retained: u64,
    /// Events evicted from the ring.
    pub dropped: u64,
}
impl_to_json!(ObsTrialRow {
    trial_index,
    ops,
    events_retained,
    dropped
});

/// The `results/obs_report.json` artifact: the deterministic aggregate of
/// an instrumented fault-grid campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsCampaignData {
    /// Campaign seed all trial seeds derive from.
    pub seed: u64,
    /// Profile name (`full` / `smoke`).
    pub profile: &'static str,
    /// Independent trials instrumented.
    pub trials: u64,
    /// Events emitted across all trials.
    pub total_ops: u64,
    /// Ring evictions across all trials.
    pub events_dropped: u64,
    /// Merged counters in sorted `(group, name)` order.
    pub counters: Vec<ObsCounterRow>,
    /// Merged histogram bins in sorted `(metric, bucket)` order.
    pub histograms: Vec<ObsHistogramRow>,
    /// Per-trial summaries in trial order.
    pub per_trial: Vec<ObsTrialRow>,
}
impl_to_json!(ObsCampaignData {
    seed,
    profile,
    trials,
    total_ops,
    events_dropped,
    counters,
    histograms,
    per_trial
});

impl ObsCampaignData {
    /// The merged value of a counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, group: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.group == group && c.name == name)
            .map_or(0, |c| c.count)
    }

    /// Sum of all counters in a group.
    #[must_use]
    pub fn group_total(&self, group: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.group == group)
            .map(|c| c.count)
            .sum()
    }
}

/// Independent trials of a profile's observability campaign (identical to
/// the fault campaign's trial count — it is the same grid, instrumented).
#[must_use]
pub fn obs_campaign_trials(profile: Profile) -> usize {
    fault_grid(profile).len() * SCENARIOS.len() * trials_per_cell(profile)
}

const fn profile_name(profile: Profile) -> &'static str {
    match profile {
        Profile::Full => "full",
        Profile::Smoke => "smoke",
    }
}

/// Runs the instrumented campaign: every trial of the fault grid under a
/// fresh per-trial collector, merged in trial order.
///
/// # Errors
///
/// Configuration or flash errors from any trial.
pub fn obs_campaign(runner: &TrialRunner, profile: Profile) -> Result<ObsCampaignData, CoreError> {
    let grid = fault_grid(profile);
    let reps = trials_per_cell(profile);
    let n = SCENARIOS.len() * grid.len() * reps;

    let run = run_instrumented(runner, n, flashmark_obs::DEFAULT_EVENT_CAPACITY, |trial| {
        let cell = trial.index / reps;
        let scenario = SCENARIOS[cell / grid.len()];
        let class = &grid[cell % grid.len()];
        run_trial(trial.seed, scenario, class)
    });
    if let Some(err) = run.outputs.iter().find_map(|o| o.as_ref().err()) {
        return Err(err.clone());
    }

    let report = run.report();
    Ok(ObsCampaignData {
        seed: runner.experiment_seed(),
        profile: profile_name(profile),
        trials: report.trials(),
        total_ops: report.total_ops(),
        events_dropped: report.events_dropped(),
        counters: report
            .metrics()
            .counters()
            .map(|(group, name, count)| ObsCounterRow {
                group: group.to_string(),
                name: name.to_string(),
                count,
            })
            .collect(),
        histograms: report
            .metrics()
            .histograms()
            .map(|(metric, bucket, count)| ObsHistogramRow {
                metric: metric.to_string(),
                bucket,
                count,
            })
            .collect(),
        per_trial: report
            .per_trial()
            .iter()
            .map(|t| ObsTrialRow {
                trial_index: t.trial_index,
                ops: t.ops,
                events_retained: t.events_retained,
                dropped: t.dropped,
            })
            .collect(),
    })
}

/// Ring capacity for [`dump_trial`]: large enough that a single smoke
/// trial never evicts.
const DUMP_CAPACITY: usize = 1 << 16;

/// The loud header warning [`dump_trial`] prints when the trial's event
/// ring overflowed: the timeline then starts mid-trial, with the first
/// `dropped` events evicted. `None` when nothing was lost.
#[must_use]
pub fn truncation_note(dropped: u64) -> Option<String> {
    (dropped > 0).then(|| {
        format!(
            "WARNING: event ring overflowed; the first {dropped} event(s) \
             were evicted and the timeline below starts mid-trial"
        )
    })
}

/// Replays one trial of the seed-`seed` campaign serially and renders its
/// event timeline, one `op_index  description` line per retained event.
///
/// Only the requested trial's body runs (all other trials return
/// immediately), so the replay is cheap while the trial seed derivation
/// matches the full campaign exactly.
///
/// # Errors
///
/// A range error if `trial_index` is out of range for the profile's
/// campaign; configuration or flash errors from the replayed trial.
pub fn dump_trial(
    seed: u64,
    trial_index: usize,
    profile: Profile,
) -> Result<String, Box<dyn std::error::Error>> {
    let grid = fault_grid(profile);
    let reps = trials_per_cell(profile);
    let n = SCENARIOS.len() * grid.len() * reps;
    if trial_index >= n {
        return Err(format!(
            "trial {trial_index} out of range: the {} campaign has {n} trials (0..={})",
            profile_name(profile),
            n - 1
        )
        .into());
    }

    let runner = TrialRunner::with_threads(seed, 1);
    let run = run_instrumented(&runner, n, DUMP_CAPACITY, |trial| {
        if trial.index != trial_index {
            return Ok(None);
        }
        let cell = trial.index / reps;
        let scenario = SCENARIOS[cell / grid.len()];
        let class = &grid[cell % grid.len()];
        run_trial(trial.seed, scenario, class).map(Some)
    });
    if let Some(err) = run.outputs.iter().find_map(|o| o.as_ref().err()) {
        return Err(err.clone().into());
    }

    let cell = trial_index / reps;
    let scenario = SCENARIOS[cell / grid.len()];
    let class = &grid[cell % grid.len()];
    let collector = &run.collectors[trial_index];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trial {trial_index} of {n} (campaign seed {seed}, {} profile)",
        profile_name(profile)
    );
    let _ = writeln!(
        out,
        "scenario={} fault_class={}",
        scenario.name(),
        class.name
    );
    let _ = writeln!(
        out,
        "{} events emitted, {} retained, {} dropped\n",
        collector.ops(),
        collector.events().count(),
        collector.dropped()
    );
    if let Some(note) = truncation_note(collector.dropped()) {
        let _ = writeln!(out, "{note}\n");
    }
    let _ = writeln!(out, "{:>6}  event", "op");
    for (op, event) in collector.events() {
        let _ = writeln!(out, "{op:>6}  {}", event.describe());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_counts_verdicts_and_faults() {
        let runner = TrialRunner::with_threads(42, 2);
        let data = obs_campaign(&runner, Profile::Smoke).unwrap();
        assert_eq!(data.trials as usize, obs_campaign_trials(Profile::Smoke));
        assert_eq!(data.per_trial.len(), data.trials as usize);
        // Every trial runs a golden and a faulted verify — two verdicts.
        assert_eq!(data.group_total("verdict"), 2 * data.trials);
        // The fault grid injects by construction.
        assert!(data.group_total("fault") > 0, "no fault firings observed");
        assert!(data.counter("span", "verify_resilient") >= 2 * data.trials);
        assert!(data.total_ops > 0);
    }

    #[test]
    fn campaign_is_identical_across_thread_counts() {
        let serial = obs_campaign(&TrialRunner::with_threads(42, 1), Profile::Smoke).unwrap();
        let parallel = obs_campaign(&TrialRunner::with_threads(42, 8), Profile::Smoke).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn dump_renders_an_op_ordered_timeline() {
        let text = dump_trial(42, 0, Profile::Smoke).unwrap();
        assert!(text.contains("scenario=accept"), "{text}");
        assert!(text.contains("enter verify_resilient"), "{text}");
        assert!(text.contains("verdict"), "{text}");
        let ops: Vec<u64> = text
            .lines()
            .skip_while(|l| !l.ends_with("  event"))
            .skip(1)
            .filter_map(|l| l.split_whitespace().next())
            .filter_map(|t| t.parse().ok())
            .collect();
        assert!(ops.len() > 10, "timeline too short: {text}");
        assert!(ops.windows(2).all(|w| w[0] < w[1]), "ops not in order");
    }

    #[test]
    fn truncation_note_fires_only_on_drops() {
        assert_eq!(truncation_note(0), None);
        let note = truncation_note(37).unwrap();
        assert!(note.contains("WARNING"), "{note}");
        assert!(note.contains("37"), "{note}");
    }

    #[test]
    fn dump_rejects_out_of_range_trials() {
        let n = obs_campaign_trials(Profile::Smoke);
        assert!(dump_trial(42, n, Profile::Smoke).is_err());
    }
}
