//! A self-contained micro-benchmark runner replacing `criterion` (offline
//! builds cannot fetch it).
//!
//! Bench targets keep `harness = false` and drive [`Bench`] from `main`.
//! The runner warms up, then takes per-iteration wall-clock samples and
//! reports min/median/mean. Wall-clock use is confined to this module and
//! the bench targets — `cargo xtask lint` bans `std::time` from the
//! simulation crates, where nondeterminism would corrupt experiments, not
//! from benchmark infrastructure whose entire job is timing.

use std::time::{Duration, Instant};

/// One benchmark group: a named collection of timed closures.
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples: usize,
    min_iters: u64,
}

/// Statistics of one benchmark function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Median sample, seconds per iteration.
    pub median_s: f64,
    /// Mean over all samples, seconds per iteration.
    pub mean_s: f64,
}

impl Bench {
    /// Creates a benchmark group.
    #[must_use]
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            samples: 20,
            min_iters: 1,
        }
    }

    /// Sets the number of timed samples (default 20).
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    /// Times `f`, with `setup` run outside the timed region before every
    /// iteration (the `iter_batched` pattern).
    pub fn bench_with_setup<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) -> BenchStats
    where
        S: Sized,
    {
        // Warm-up: one untimed run.
        let input = setup();
        let _ = f(input);

        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            // Accumulate until the sample is long enough to time reliably.
            while iters < self.min_iters || elapsed < Duration::from_micros(200) {
                let input = setup();
                let t0 = Instant::now();
                let out = f(input);
                elapsed += t0.elapsed();
                std::hint::black_box(out);
                iters += 1;
            }
            per_iter.push(elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let stats = BenchStats {
            min_s: per_iter[0],
            median_s: per_iter[per_iter.len() / 2],
            mean_s: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        println!(
            "{}/{:<32} min {:>12}  median {:>12}  mean {:>12}",
            self.group,
            name,
            fmt_time(stats.min_s),
            fmt_time(stats.median_s),
            fmt_time(stats.mean_s)
        );
        stats
    }

    /// Times `f` with no per-iteration setup.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        self.bench_with_setup(name, || (), |()| f())
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_positive() {
        let b = Bench::new("test").samples(5);
        let s = b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(s.min_s > 0.0);
        assert!(s.min_s <= s.median_s);
        assert!(s.median_s <= s.mean_s * 3.0);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
