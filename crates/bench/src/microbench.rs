//! A self-contained micro-benchmark runner replacing `criterion` (offline
//! builds cannot fetch it).
//!
//! Bench targets keep `harness = false` and drive [`Bench`] from `main`.
//! The runner warms up, then takes per-iteration wall-clock samples and
//! reports min/median/mean. Wall-clock use is confined to this module and
//! the bench targets — `cargo xtask lint` bans `std::time` from the
//! simulation crates, where nondeterminism would corrupt experiments, not
//! from benchmark infrastructure whose entire job is timing.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_physics::{Micros, PhysicsParams};

use crate::impl_to_json;

/// One benchmark group: a named collection of timed closures.
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples: usize,
    min_iters: u64,
}

/// Statistics of one benchmark function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Median sample, seconds per iteration.
    pub median_s: f64,
    /// Mean over all samples, seconds per iteration.
    pub mean_s: f64,
}

impl Bench {
    /// Creates a benchmark group.
    #[must_use]
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            samples: 20,
            min_iters: 1,
        }
    }

    /// Sets the number of timed samples (default 20).
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    /// Times `f`, with `setup` run outside the timed region before every
    /// iteration (the `iter_batched` pattern).
    pub fn bench_with_setup<S, R>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) -> BenchStats
    where
        S: Sized,
    {
        // Warm-up: one untimed run.
        let input = setup();
        let _ = f(input);

        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            // Accumulate until the sample is long enough to time reliably.
            while iters < self.min_iters || elapsed < Duration::from_micros(200) {
                let input = setup();
                let t0 = Instant::now();
                let out = f(input);
                elapsed += t0.elapsed();
                std::hint::black_box(out);
                iters += 1;
            }
            per_iter.push(elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let stats = BenchStats {
            min_s: per_iter[0],
            median_s: per_iter[per_iter.len() / 2],
            mean_s: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        // flashmark-lint: allow(print-discipline) -- live micro-benchmark progress meter; the harness binary owns this stdout
        println!(
            "{}/{:<32} min {:>12}  median {:>12}  mean {:>12}",
            self.group,
            name,
            fmt_time(stats.min_s),
            fmt_time(stats.median_s),
            fmt_time(stats.mean_s)
        );
        stats
    }

    /// Times `f` with no per-iteration setup.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchStats {
        self.bench_with_setup(name, || (), |()| f())
    }
}

// ------------------------------------------------ runtime baseline -------

/// One named runtime measurement of the committed `BENCH_runtime.json`
/// baseline: a `kernel/*` micro-benchmark or an `experiment/*` wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeEntry {
    /// Entry name, e.g. `kernel/read_segment` or `experiment/fig09`.
    pub name: String,
    /// Wall-clock seconds for one run of the unit.
    pub wall_s: f64,
    /// True per-run work count: cell visits for kernel entries (from the
    /// obs `cells` counters installed around an untimed iteration), obs
    /// events otherwise; absent for entries that predate the
    /// instrumentation or are not instrumented.
    pub ops: Option<u64>,
    /// Nanoseconds per unit of `ops` (`wall_s / ops`), the
    /// machine-comparable per-cell cost; absent whenever `ops` is.
    pub ns_per_op: Option<f64>,
    /// Throughput: units (trials or kernel iterations) per second.
    pub trials_per_s: f64,
}

/// The `BENCH_runtime.json` artifact: wall time and throughput per kernel
/// and per experiment, written by `run_all` and compared by `perf_smoke`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeReport {
    /// All entries, in emission order.
    pub entries: Vec<RuntimeEntry>,
}

impl_to_json!(RuntimeEntry {
    name,
    wall_s,
    ops,
    ns_per_op,
    trials_per_s
});
impl_to_json!(RuntimeReport { entries });

impl RuntimeReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one entry; `units` is the trial/iteration count behind
    /// `wall_s` (throughput is derived from it).
    pub fn push(&mut self, name: &str, wall_s: f64, units: usize) {
        self.push_with_ops(name, wall_s, units, None);
    }

    /// Records one entry with its observed per-iteration work count
    /// (`ns_per_op` is derived from it).
    pub fn push_with_ops(&mut self, name: &str, wall_s: f64, units: usize, ops: Option<u64>) {
        self.entries.push(RuntimeEntry {
            name: name.to_string(),
            wall_s,
            ops,
            ns_per_op: ops.filter(|&o| o > 0).map(|o| wall_s * 1e9 / o as f64),
            trials_per_s: if wall_s > 0.0 {
                units as f64 / wall_s
            } else {
                f64::INFINITY
            },
        });
    }

    /// Looks an entry up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&RuntimeEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        use crate::json::ToJson as _;
        std::fs::write(path, self.to_json().pretty())
    }

    /// Parses a report previously written by [`RuntimeReport::write`]. The
    /// parser is line-oriented and only understands this module's own
    /// output shape, which is all the perf gate needs.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for a malformed file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut entries = Vec::new();
        let (mut name, mut wall_s): (Option<String>, Option<f64>) = (None, None);
        let mut ops: Option<u64> = None;
        let mut ns_per_op: Option<f64> = None;
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(v) = line.strip_prefix("\"name\": ") {
                name = Some(v.trim_matches('"').to_string());
            } else if let Some(v) = line.strip_prefix("\"wall_s\": ") {
                wall_s = Some(v.parse().map_err(|_| bad("bad wall_s"))?);
            } else if let Some(v) = line.strip_prefix("\"ops\": ") {
                // Optional: baselines written before the field existed (or
                // uninstrumented entries) have no/`null` ops.
                ops = match v {
                    "null" => None,
                    v => Some(v.parse().map_err(|_| bad("bad ops"))?),
                };
            } else if let Some(v) = line.strip_prefix("\"ns_per_op\": ") {
                ns_per_op = match v {
                    "null" => None,
                    v => Some(v.parse().map_err(|_| bad("bad ns_per_op"))?),
                };
            } else if let Some(v) = line.strip_prefix("\"trials_per_s\": ") {
                let trials_per_s = v.parse().map_err(|_| bad("bad trials_per_s"))?;
                entries.push(RuntimeEntry {
                    name: name.take().ok_or_else(|| bad("trials_per_s before name"))?,
                    wall_s: wall_s.take().ok_or_else(|| bad("missing wall_s"))?,
                    ops: ops.take(),
                    ns_per_op: ns_per_op.take(),
                    trials_per_s,
                });
            }
        }
        Ok(Self { entries })
    }

    /// Entries of `current` whose wall time regressed more than `factor`×
    /// against this baseline, restricted to names starting with `prefix`.
    /// Entries absent from the baseline are new, not regressions.
    ///
    /// Each line is rendered by
    /// [`compare_line_labeled`](crate::output::compare_line_labeled)
    /// (baseline vs current, µs, with the ratio) and carries the op counts
    /// from the obs collectors when both sides recorded them — a regressed
    /// kernel that also does more flash work is a behavior change, not
    /// just a slow machine.
    #[must_use]
    pub fn regressions(&self, current: &Self, factor: f64, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        for cur in &current.entries {
            if !cur.name.starts_with(prefix) {
                continue;
            }
            if let Some(base) = self.get(&cur.name) {
                if base.wall_s > 0.0 && cur.wall_s > base.wall_s * factor {
                    let mut line = crate::output::compare_line_labeled(
                        &cur.name,
                        ("baseline", base.wall_s * 1e6),
                        ("current", cur.wall_s * 1e6),
                        "us",
                    );
                    let _ = write!(line, " > {factor}x budget");
                    if let (Some(b), Some(c)) = (base.ops, cur.ops) {
                        let _ = write!(line, "; obs ops baseline {b} current {c}");
                    }
                    out.push(line);
                }
            }
        }
        out
    }

    /// Names of this baseline's entries starting with `prefix` that are
    /// absent from `current`. A kernel that silently vanished from the
    /// current run is a gate failure, not a pass — otherwise deleting a
    /// benchmark "fixes" its regression.
    #[must_use]
    pub fn missing_from(&self, current: &Self, prefix: &str) -> Vec<String> {
        self.entries
            .iter()
            .filter(|base| base.name.starts_with(prefix) && current.get(&base.name).is_none())
            .map(|base| base.name.clone())
            .collect()
    }
}

/// Runs the segment-kernel micro-benchmarks and reports them as
/// `kernel/*` runtime entries — the perf-smoke half of
/// `BENCH_runtime.json`.
///
/// # Panics
///
/// Panics if the simulated controller rejects one of the kernel
/// operations — impossible for the fixed in-range geometry used here.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn kernel_suite() -> RuntimeReport {
    const ENQUEUE_REQUESTS: u64 = 4096;
    const DRAIN_REQUESTS: u64 = 32;
    let bench = Bench::new("kernel").samples(10);
    let seg = SegmentAddr::new(0);
    let chip = || {
        let mut c = FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            FlashTimings::msp430(),
            0xBE7C,
        );
        c.trace_mut().set_capacity(0);
        c
    };
    let pattern: Vec<u16> = (0..256u32).map(|w| (w as u16).rotate_left(3)).collect();
    let mut report = RuntimeReport::new();
    let mut add = |name: &str, stats: BenchStats, ops: u64| {
        report.push_with_ops(&format!("kernel/{name}"), stats.median_s, 1, Some(ops));
    };
    // Setups pre-touch the segment: lazily materializing a segment's cell
    // arena is a one-time per-chip derivation, not part of the kernel under
    // test, so it runs in the untimed setup like the rest of the fixture.
    let touched = || {
        let mut c = chip();
        let _ = c.array_mut().segment(seg);
        c
    };
    let programmed = || {
        let mut c = touched();
        c.program_block(seg, &pattern).expect("program");
        c
    };

    let read = |mut c: FlashController| c.read_block(seg).expect("read");
    add(
        "read_segment",
        bench.bench_with_setup("read_segment", programmed, read),
        traced_ops(programmed, read),
    );
    let program = |mut c: FlashController| {
        c.program_block(seg, &pattern).expect("program");
    };
    add(
        "program_segment",
        bench.bench_with_setup("program_segment", touched, program),
        traced_ops(touched, program),
    );
    let partial = |mut c: FlashController| c.partial_erase(seg, Micros::new(30.0)).expect("erase");
    add(
        "partial_erase",
        bench.bench_with_setup("partial_erase", programmed, partial),
        traced_ops(programmed, partial),
    );
    let until_clean = |mut c: FlashController| c.erase_until_clean(seg).expect("erase");
    add(
        "erase_until_clean",
        bench.bench_with_setup("erase_until_clean", programmed, until_clean),
        traced_ops(programmed, until_clean),
    );
    let bulk = |mut c: FlashController| {
        c.bulk_imprint(seg, &pattern, 5_000, ImprintTiming::Accelerated)
            .expect("stress")
    };
    add(
        "bulk_stress_5k",
        bench.bench_with_setup("bulk_stress_5k", touched, bulk),
        traced_ops(touched, bulk),
    );

    // ReRAM kernels: the forming-pass imprint (the backend's decisive cost
    // advantage — one pass regardless of stress level) and the partial
    // reset the extraction ladder leans on.
    let reram = || {
        let mut c = flashmark_reram::ReramChip::new(FlashGeometry::single_bank(2), 0xBE7C);
        let _ = c.array_mut().segment(seg);
        c
    };
    let form = |mut c: flashmark_reram::ReramChip| {
        c.form_mark(seg, &pattern, 5_000).expect("form");
    };
    add(
        "reram_form_mark_5k",
        bench.bench_with_setup("reram_form_mark_5k", reram, form),
        traced_ops(reram, form),
    );
    let reram_set = || {
        let mut c = reram();
        c.set_block(seg, &pattern).expect("set");
        c
    };
    let reset = |mut c: flashmark_reram::ReramChip| {
        c.partial_reset(seg, Micros::new(30.0)).expect("reset");
    };
    add(
        "reram_partial_reset",
        bench.bench_with_setup("reram_partial_reset", reram_set, reset),
        traced_ops(reram_set, reset),
    );

    // Service-path kernels. Ops are passed explicitly instead of via
    // `traced_ops`: the service installs its own per-request collectors, so
    // an outer collector would see nothing.
    let service = || {
        let config = crate::service_campaign::campaign_config();
        let population = flashmark_serve::PopulationSpec::tiny(0xBE7C)
            .build(&config, crate::service_campaign::CAMPAIGN_MANUFACTURER)
            .expect("population");
        flashmark_serve::VerificationService::new(
            population,
            flashmark_serve::ServiceConfig::new(
                config,
                crate::service_campaign::CAMPAIGN_MANUFACTURER,
                0xBE7C,
            ),
        )
        .expect("service")
    };
    let enqueue = |mut svc: flashmark_serve::VerificationService| {
        let handle = svc.handle();
        let n = svc.population().len() as u64;
        for i in 0..ENQUEUE_REQUESTS {
            handle
                .submit(crate::service_campaign::campaign_request(0xBE7C, i, n))
                .expect("submit");
        }
        assert_eq!(svc.drain().len() as u64, ENQUEUE_REQUESTS);
    };
    add(
        "service_enqueue",
        bench.bench_with_setup("service_enqueue", service, enqueue),
        ENQUEUE_REQUESTS,
    );
    let drained = || {
        let svc = service();
        let handle = svc.handle();
        let n = svc.population().len() as u64;
        for i in 0..DRAIN_REQUESTS {
            handle
                .submit(crate::service_campaign::campaign_request(0xBE7C, i, n))
                .expect("submit");
        }
        svc
    };
    let drain = |mut svc: flashmark_serve::VerificationService| {
        let report = svc.serve_drained(1).expect("serve");
        assert_eq!(report.recorded, DRAIN_REQUESTS);
    };
    add(
        "service_shard_drain",
        bench.bench_with_setup("service_shard_drain", drained, drain),
        DRAIN_REQUESTS,
    );
    report
}

/// Runs one untimed iteration of a kernel under a metrics-only obs
/// collector (installed *after* setup, so setup traffic is excluded) and
/// returns the cell visits the iteration performed — the `cells` counter
/// group the batched kernels increment per chunk. Falls back to the raw
/// obs event count for operations that touch no cells.
fn traced_ops<S, R>(mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> R) -> u64 {
    use flashmark_obs::Collector;
    let input = setup();
    let prev = flashmark_obs::install(Collector::with_capacity(0, 0));
    std::hint::black_box(f(input));
    let collector = flashmark_obs::take().unwrap_or_else(|| Collector::with_capacity(0, 0));
    if let Some(p) = prev {
        flashmark_obs::install(p);
    }
    let cells = collector.metrics().group_total("cells");
    if cells > 0 {
        cells
    } else {
        collector.ops()
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_positive() {
        let b = Bench::new("test").samples(5);
        let s = b.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert!(s.min_s > 0.0);
        assert!(s.min_s <= s.median_s);
        assert!(s.median_s <= s.mean_s * 3.0);
    }

    #[test]
    fn runtime_report_roundtrips_and_gates() {
        let mut base = RuntimeReport::new();
        base.push_with_ops("kernel/read_segment", 0.010, 1, Some(7));
        base.push("experiment/fig09", 2.0, 6);
        let dir = std::env::temp_dir().join("flashmark_runtime_report");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt_{}.json", std::process::id()));
        base.write(&path).unwrap();
        let loaded = RuntimeReport::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.get("experiment/fig09").unwrap().trials_per_s, 3.0);
        // `ops` and the derived `ns_per_op` roundtrip, including absence.
        let kernel = loaded.get("kernel/read_segment").unwrap();
        assert_eq!(kernel.ops, Some(7));
        assert_eq!(kernel.ns_per_op, Some(0.010 * 1e9 / 7.0));
        assert_eq!(loaded.get("experiment/fig09").unwrap().ops, None);
        assert_eq!(loaded.get("experiment/fig09").unwrap().ns_per_op, None);

        let mut current = RuntimeReport::new();
        current.push_with_ops("kernel/read_segment", 0.030, 1, Some(9)); // 3x slower
        current.push("kernel/brand_new", 9.0, 1); // no baseline: not a regression
        current.push("experiment/fig09", 9.0, 6); // outside the kernel/ prefix
        let regs = loaded.regressions(&current, 2.0, "kernel/");
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("kernel/read_segment"));
        // The line is a labeled compare line with a ratio and both sides'
        // obs op counts, not a bare float dump.
        assert!(
            regs[0].contains("baseline") && regs[0].contains("current"),
            "{}",
            regs[0]
        );
        assert!(regs[0].contains("(x3.00)"), "{}", regs[0]);
        assert!(
            regs[0].contains("obs ops baseline 7 current 9"),
            "{}",
            regs[0]
        );
        assert!(loaded.regressions(&current, 4.0, "kernel/").is_empty());
    }

    #[test]
    fn missing_kernels_are_reported_not_ignored() {
        let mut base = RuntimeReport::new();
        base.push("kernel/read_segment", 0.010, 1);
        base.push("kernel/bulk_stress_5k", 0.020, 1);
        base.push("experiment/fig09", 2.0, 6);

        let mut current = RuntimeReport::new();
        current.push("kernel/read_segment", 0.010, 1);
        // bulk_stress_5k vanished; fig09 is outside the kernel/ prefix and
        // must not be flagged.
        let missing = base.missing_from(&current, "kernel/");
        assert_eq!(missing, vec!["kernel/bulk_stress_5k".to_string()]);
        assert!(base.missing_from(&base, "kernel/").is_empty());
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
