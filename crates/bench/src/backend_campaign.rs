//! Scheme-generic differential campaign across watermark backends.
//!
//! Runs the same four provenance scenarios — genuine, rejected die,
//! blank/foreign die, and a digital clone — through every
//! [`WatermarkScheme`] backend (NOR tPEW wear, intrinsic NAND PUF, ReRAM
//! forming stress) and compares what the paper's abstraction actually
//! buys per technology: bit error rate against the enrollment, imprint
//! cost (stress cycles and simulated manufacturing time), and the
//! forgery asymmetry (how far a data-level clone lands from the genuine
//! mismatch distribution).
//!
//! Every trial is a pure function of `(campaign seed, trial index)`:
//! chips are seeded from the trial seed, no wall clock enters the
//! artifact, and rows merge back in trial order — so
//! `results/backend_campaign.json` is byte-identical at any `--threads`
//! count. Each scheme's rows are additionally sealed into a provenance
//! [`Registry`] (tagged with the scheme name) whose root digest lands in
//! the artifact, and the `backend_campaign` bin appends one trend record
//! per scheme so `trend_check` gates cross-run drift per backend.
//!
//! The NOR rows double as the API-redesign no-drift proof: every NOR
//! trial re-runs the pre-redesign concrete pipeline
//! ([`Imprinter`]/[`Verifier`]) on identically-seeded chips and records
//! whether the verdicts matched ([`BackendRow::legacy_match`]).

use flashmark_core::{
    inspect, provision, CounterfeitReason, FlashmarkConfig, Imprinter, InconclusiveReason, NorTpew,
    NorTpewParams, SchemeError, TestStatus, Verdict, Verifier, WatermarkRecord, WatermarkScheme,
};
use flashmark_nand::{BlockAddr, NandChip, NandGeometry, NandPuf, NandPufConfig, NandPufParams};
use flashmark_nor::interface::FlashInterface;
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, NorError, SegmentAddr};
use flashmark_physics::rng::mix2;
use flashmark_physics::{Micros, PhysicsParams};
use flashmark_registry::{Record, RecordVerdict, Registry, RegistryOptions};
use flashmark_reram::{ReramChip, ReramParams, ReramScheme, ReramWordAdapter};

use crate::impl_to_json;

/// Manufacturer ID every backend's enrollment carries.
pub const BACKEND_MANUFACTURER: u16 = 0x7C02;

/// Commit tag stamped into the per-scheme registry records.
pub const BACKEND_COMMIT: &str = concat!("flashmark-bench/", env!("CARGO_PKG_VERSION"));

/// The stable scheme names, in campaign order.
pub const BACKEND_SCHEMES: [&str; 3] = ["nor_tpew", "nand_puf", "reram_forming"];

/// The NOR operating point: the paper's 60 K stress with 7-replica
/// majority voting at the 28 µs extraction window — the point every
/// pre-redesign campaign ran at, so the NOR rows stay comparable (and
/// `legacy_match` meaningful) across the API redesign.
///
/// # Panics
///
/// Never — the knobs are statically valid.
#[must_use]
pub fn backend_config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()
        .expect("valid backend config")
}

/// The ReRAM operating point. Forming-voltage stress is deposited in a
/// **single** pass whatever the level, so unlike NOR — where every extra
/// stress cycle costs manufacturing seconds — ReRAM cranks the stress
/// (90 K equivalent cycles) and the replica count (21 fits the segment
/// with room to spare) for free. That headroom is what absorbs the
/// 2–3× wider filament-geometry variation of the ReRAM population: at
/// the NOR point (60 K / 7 replicas) roughly one genuine ReRAM die in
/// twelve fails to decode, at this point fewer than one in five hundred.
///
/// # Panics
///
/// Never — the knobs are statically valid.
#[must_use]
pub fn reram_config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(90_000)
        .replicas(21)
        .t_pew(Micros::new(28.0))
        .build()
        .expect("valid reram config")
}

/// The four provenance scenarios every backend runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Enroll + imprint + verify the same die.
    Genuine,
    /// Genuine flow, but the enrollment record carries a `Reject` test
    /// status — the die-sort reject a counterfeiter would re-mark.
    RejectedDie,
    /// Verify a different (blank/foreign) die against the enrollment.
    Blank,
    /// A digital clone: copy every readable bit from the genuine die onto
    /// a blank die, then verify the clone. Wear (and process variation)
    /// cannot be copied through the digital interface — the asymmetry the
    /// paper's detection rests on.
    Cloned,
}

impl Scenario {
    /// Campaign order.
    pub const ALL: [Self; 4] = [Self::Genuine, Self::RejectedDie, Self::Blank, Self::Cloned];

    /// Stable lowercase label (the registry record's `class`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Genuine => "genuine",
            Self::RejectedDie => "rejected_die",
            Self::Blank => "blank",
            Self::Cloned => "cloned",
        }
    }

    /// Whether `verdict` is the outcome the scenario's ground truth calls
    /// for.
    #[must_use]
    pub fn expects(self, verdict: &Verdict) -> bool {
        match self {
            Self::Genuine => *verdict == Verdict::Genuine,
            Self::RejectedDie => *verdict == Verdict::Counterfeit(CounterfeitReason::RejectedDie),
            Self::Blank | Self::Cloned => matches!(verdict, Verdict::Counterfeit(_)),
        }
    }
}

/// Campaign shape.
#[derive(Debug, Clone, Copy)]
pub struct BackendCampaignOptions {
    /// Seed every trial derives from.
    pub seed: u64,
    /// Trials per (scheme, scenario) cell.
    pub trials: usize,
    /// Worker threads for the trial fan-out.
    pub threads: usize,
}

impl BackendCampaignOptions {
    /// The committed full campaign (`results/backend_campaign.json`).
    #[must_use]
    pub fn full(threads: usize) -> Self {
        Self {
            seed: 0xBACD,
            trials: 8,
            threads,
        }
    }

    /// The committed CI smoke campaign
    /// (`results/backend_campaign_smoke.json`).
    #[must_use]
    pub fn smoke(threads: usize) -> Self {
        Self {
            seed: 0xBACD,
            trials: 2,
            threads,
        }
    }

    /// The reduced shape the Smoke suite profile runs.
    #[must_use]
    pub fn tiny(threads: usize) -> Self {
        Self {
            seed: 0xBACD,
            trials: 1,
            threads,
        }
    }
}

/// One (scheme, scenario, trial) outcome row.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Scheme name ([`WatermarkScheme::name`]).
    pub scheme: String,
    /// Scenario label.
    pub scenario: String,
    /// Trial index within the (scheme, scenario) cell.
    pub trial: u64,
    /// Verdict class: `accept` / `reject` / `inconclusive`.
    pub verdict: String,
    /// Stable reason label (empty for accepts).
    pub reason: String,
    /// Resolution strategy label from the scheme verification.
    pub resolution: String,
    /// Mismatch against the enrollment (BER / fuzzy distance), when the
    /// scheme could compare evidence.
    pub mismatch: Option<f64>,
    /// Stress cycles the manufacturer spent on this die (0 outside the
    /// genuine/rejected-die provisioning flows and for intrinsic schemes).
    pub imprint_cycles: u64,
    /// Simulated manufacturing time of the imprint (seconds).
    pub imprint_sim_s: f64,
    /// Mean equivalent wear cycles of the inspected region after the
    /// verdict.
    pub wear_mean_cycles: f64,
    /// Whether the verdict matched the scenario's ground truth.
    pub expected: bool,
    /// NOR rows only: whether the pre-redesign concrete pipeline produced
    /// the identical verdict on identically-seeded chips.
    pub legacy_match: Option<bool>,
}
impl_to_json!(BackendRow {
    scheme,
    scenario,
    trial,
    verdict,
    reason,
    resolution,
    mismatch,
    imprint_cycles,
    imprint_sim_s,
    wear_mean_cycles,
    expected,
    legacy_match
});

/// One (scenario, verdict, reason) count in a scheme's verdict mix.
#[derive(Debug, Clone)]
pub struct BackendMixRow {
    /// Scenario label.
    pub scenario: String,
    /// Verdict class.
    pub verdict: String,
    /// Reason label (empty for accepts).
    pub reason: String,
    /// Rows with this (scenario, verdict, reason).
    pub count: u64,
}
impl_to_json!(BackendMixRow {
    scenario,
    verdict,
    reason,
    count
});

/// Per-scheme aggregate of the campaign.
#[derive(Debug, Clone)]
pub struct BackendSchemeSummary {
    /// Scheme name.
    pub scheme: String,
    /// Whether the scheme has a physical imprint step.
    pub imprints: bool,
    /// Total rows for this scheme.
    pub trials: u64,
    /// Rows whose verdict matched the scenario's ground truth.
    pub expected_matches: u64,
    /// NOR only: rows where the legacy pipeline agreed.
    pub legacy_matches: Option<u64>,
    /// Mean mismatch over genuine rows (the scheme's operating-point BER).
    pub mean_genuine_mismatch: f64,
    /// Mean mismatch over blank + cloned rows where evidence compared.
    pub mean_counterfeit_mismatch: f64,
    /// `mean_counterfeit_mismatch - mean_genuine_mismatch`: how far a
    /// forgery lands from the genuine distribution.
    pub forgery_margin: f64,
    /// Stress cycles per genuine die.
    pub imprint_cycles: u64,
    /// Mean simulated imprint seconds per genuine die.
    pub imprint_sim_s: f64,
    /// Root digest of the scheme's sealed registry segment.
    pub registry_root: String,
    /// Records sealed for this scheme.
    pub registry_records: u64,
    /// Verdict mix per scenario.
    pub verdict_mix: Vec<BackendMixRow>,
}
impl_to_json!(BackendSchemeSummary {
    scheme,
    imprints,
    trials,
    expected_matches,
    legacy_matches,
    mean_genuine_mismatch,
    mean_counterfeit_mismatch,
    forgery_margin,
    imprint_cycles,
    imprint_sim_s,
    registry_root,
    registry_records,
    verdict_mix
});

/// The `backend_campaign.json` artifact.
#[derive(Debug, Clone)]
pub struct BackendCampaignData {
    /// Campaign seed.
    pub seed: u64,
    /// Trials per (scheme, scenario) cell.
    pub trials_per_scenario: u64,
    /// Scenario labels, in campaign order.
    pub scenarios: Vec<String>,
    /// Per-scheme aggregates, in campaign order.
    pub schemes: Vec<BackendSchemeSummary>,
    /// Every row, in trial order.
    pub rows: Vec<BackendRow>,
}
impl_to_json!(BackendCampaignData {
    seed,
    trials_per_scenario,
    scenarios,
    schemes,
    rows
});

/// Maps the shared verdict vocabulary onto stable (class, reason) labels —
/// the same labels the serving layer archives.
#[must_use]
pub fn verdict_labels(verdict: &Verdict) -> (&'static str, &'static str) {
    match verdict {
        Verdict::Genuine => ("accept", ""),
        Verdict::Counterfeit(reason) => (
            "reject",
            match reason {
                CounterfeitReason::NoWatermark => "no_watermark",
                CounterfeitReason::SignatureMismatch => "signature_mismatch",
                CounterfeitReason::RejectedDie => "rejected_die",
                CounterfeitReason::WrongManufacturer { .. } => "wrong_manufacturer",
            },
        ),
        Verdict::Inconclusive(reason) => (
            "inconclusive",
            match reason {
                InconclusiveReason::TransientFaults => "transient_faults",
                InconclusiveReason::RecharacterizationFailed => "recharacterization_failed",
                InconclusiveReason::FuzzyMatchMarginal => "fuzzy_match_marginal",
            },
        ),
    }
}

/// One generic trial's measured outcome, before row labeling.
struct TrialOutcome {
    verdict: Verdict,
    resolution: &'static str,
    mismatch: Option<f64>,
    cycles: u64,
    sim_s: f64,
    wear: f64,
}

/// Runs one scenario through a scheme, written once against
/// [`WatermarkScheme`]. `mk(salt)` builds a chip whose identity derives
/// from the trial seed and `salt` (0 = the enrolled die, 1 = the
/// foreign/clone die); `clone_data` copies everything digitally readable
/// from the genuine die onto the clone.
fn run_scenario<S, MK, CL>(
    scheme: &S,
    params: &S::Params,
    scenario: Scenario,
    mut mk: MK,
    clone_data: CL,
) -> Result<TrialOutcome, SchemeError>
where
    S: WatermarkScheme,
    MK: FnMut(u64) -> S::Chip,
    CL: FnOnce(&mut S::Chip, &mut S::Chip) -> Result<(), SchemeError>,
{
    match scenario {
        Scenario::Genuine | Scenario::RejectedDie => {
            let mut die = mk(0);
            let (enrollment, cost) = provision(scheme, &mut die, params)?;
            let v = inspect(scheme, &mut die, params, &enrollment)?;
            Ok(TrialOutcome {
                verdict: v.verdict,
                resolution: v.resolution,
                mismatch: v.mismatch,
                cycles: cost.cycles,
                sim_s: cost.elapsed.get(),
                wear: scheme.wear_estimate(&mut die, params),
            })
        }
        Scenario::Blank => {
            let mut reference = mk(0);
            let enrollment = scheme.enroll(&mut reference, params)?;
            let mut foreign = mk(1);
            let v = inspect(scheme, &mut foreign, params, &enrollment)?;
            Ok(TrialOutcome {
                verdict: v.verdict,
                resolution: v.resolution,
                mismatch: v.mismatch,
                cycles: 0,
                sim_s: 0.0,
                wear: scheme.wear_estimate(&mut foreign, params),
            })
        }
        Scenario::Cloned => {
            let mut genuine = mk(0);
            let (enrollment, _) = provision(scheme, &mut genuine, params)?;
            let mut clone = mk(1);
            clone_data(&mut genuine, &mut clone)?;
            let v = inspect(scheme, &mut clone, params, &enrollment)?;
            Ok(TrialOutcome {
                verdict: v.verdict,
                resolution: v.resolution,
                mismatch: v.mismatch,
                cycles: 0,
                sim_s: 0.0,
                wear: scheme.wear_estimate(&mut clone, params),
            })
        }
    }
}

/// Copies every readable word of `seg` from `src` onto `dst` — the
/// strongest digital-interface clone attack available against the
/// word-addressable backends.
fn clone_segment<F: FlashInterface>(
    src: &mut F,
    dst: &mut F,
    seg: SegmentAddr,
) -> Result<(), NorError> {
    let words = src.read_block(seg)?;
    dst.program_block(seg, &words)
}

/// The enrollment record each scenario publishes.
fn backend_record(scenario: Scenario) -> WatermarkRecord {
    WatermarkRecord {
        manufacturer_id: BACKEND_MANUFACTURER,
        die_id: 7,
        speed_grade: 2,
        status: if scenario == Scenario::RejectedDie {
            TestStatus::Reject
        } else {
            TestStatus::Accept
        },
        year_week: 2033,
    }
}

fn nor_chip(seed: u64, salt: u64) -> FlashController {
    FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(8),
        FlashTimings::msp430(),
        mix2(seed, salt),
    )
}

/// The legacy (pre-redesign) concrete-NOR verdict for the same scenario on
/// identically-seeded chips — the no-behavior-drift cross-check.
fn nor_legacy_verdict(
    params: &NorTpewParams,
    seed: u64,
    scenario: Scenario,
) -> Result<(Verdict, &'static str), SchemeError> {
    let verifier = Verifier::new(params.config.clone(), params.manufacturer_id);
    let report = match scenario {
        Scenario::Genuine | Scenario::RejectedDie => {
            let mut die = nor_chip(seed, 0);
            Imprinter::new(&params.config).imprint(
                &mut die,
                params.seg,
                &params.record.to_watermark(),
            )?;
            verifier.verify_resilient(&mut die, params.seg)?
        }
        Scenario::Blank => {
            let mut foreign = nor_chip(seed, 1);
            verifier.verify_resilient(&mut foreign, params.seg)?
        }
        Scenario::Cloned => {
            let mut genuine = nor_chip(seed, 0);
            Imprinter::new(&params.config).imprint(
                &mut genuine,
                params.seg,
                &params.record.to_watermark(),
            )?;
            let mut clone = nor_chip(seed, 1);
            clone_segment(&mut genuine, &mut clone, params.seg)?;
            verifier.verify_resilient(&mut clone, params.seg)?
        }
    };
    Ok((report.verdict, report.resolution.strategy()))
}

fn nor_trial(seed: u64, scenario: Scenario) -> Result<(TrialOutcome, Option<bool>), SchemeError> {
    let params = NorTpewParams {
        config: backend_config(),
        seg: SegmentAddr::new(0),
        manufacturer_id: BACKEND_MANUFACTURER,
        record: backend_record(scenario),
    };
    let out = run_scenario(
        &NorTpew,
        &params,
        scenario,
        |salt| nor_chip(seed, salt),
        |src, dst| clone_segment(src, dst, SegmentAddr::new(0)).map_err(Into::into),
    )?;
    let (legacy_verdict, legacy_resolution) = nor_legacy_verdict(&params, seed, scenario)?;
    let matched = legacy_verdict == out.verdict && legacy_resolution == out.resolution;
    Ok((out, Some(matched)))
}

fn nand_trial(seed: u64, scenario: Scenario) -> Result<(TrialOutcome, Option<bool>), SchemeError> {
    let params = NandPufParams {
        config: NandPufConfig::default(),
        block: BlockAddr::new(0),
        manufacturer_id: BACKEND_MANUFACTURER,
        record: backend_record(scenario),
    };
    let out = run_scenario(
        &NandPuf,
        &params,
        scenario,
        |salt| NandChip::new(NandGeometry::tiny(), mix2(seed, salt)),
        // The PUF carries no imprinted data a cloner could copy: the
        // strongest digital clone of an intrinsic fingerprint is simply a
        // foreign die presenting the genuine helper data.
        |_src, _dst| Ok(()),
    )?;
    Ok((out, None))
}

fn reram_trial(seed: u64, scenario: Scenario) -> Result<(TrialOutcome, Option<bool>), SchemeError> {
    let params = ReramParams {
        config: reram_config(),
        seg: SegmentAddr::new(0),
        manufacturer_id: BACKEND_MANUFACTURER,
        record: backend_record(scenario),
    };
    let out = run_scenario(
        &ReramScheme,
        &params,
        scenario,
        |salt| {
            ReramWordAdapter::new(ReramChip::new(
                FlashGeometry::single_bank(8),
                mix2(seed, salt),
            ))
        },
        |src, dst| clone_segment(src, dst, SegmentAddr::new(0)).map_err(Into::into),
    )?;
    Ok((out, None))
}

/// Canonical one-line JSON of one scheme's operating point, embedded
/// into that scheme's registry records. NOR runs the paper's point,
/// ReRAM its calibrated forming point ([`reram_config`]), and the
/// intrinsic NAND PUF its enrollment knobs — there is no imprint
/// stress level to report.
#[must_use]
pub fn backend_params_line(scheme: &str, opts: &BackendCampaignOptions) -> String {
    let point = if scheme == "nand_puf" {
        let c = NandPufConfig::default();
        format!(
            "\"t_pp_us\":{},\"reads\":{},\"enroll_rounds\":{},\"cells_per_bit\":{}",
            c.t_pp.get(),
            c.reads,
            c.enroll_rounds,
            c.cells_per_bit
        )
    } else {
        let c = if scheme == "reram_forming" {
            reram_config()
        } else {
            backend_config()
        };
        format!(
            "\"n_pe\":{},\"replicas\":{},\"t_pew_us\":{}",
            c.n_pe(),
            c.replicas(),
            c.t_pew().get()
        )
    };
    format!(
        "{{{point},\"trials\":{},\"seed\":{}}}",
        opts.trials, opts.seed
    )
}

/// Seals one scheme's rows into a fresh provenance registry and returns
/// `(root digest hex, records)`.
fn seal_scheme_rows(
    scheme: &str,
    rows: &[&BackendRow],
    opts: &BackendCampaignOptions,
) -> (String, u64) {
    let params_line = backend_params_line(scheme, opts);
    let mut registry = Registry::new(RegistryOptions::default());
    for (i, row) in rows.iter().enumerate() {
        let verdict = match row.verdict.as_str() {
            "accept" => RecordVerdict::Accept,
            "reject" => RecordVerdict::Reject,
            _ => RecordVerdict::Inconclusive,
        };
        let mismatch = row
            .mismatch
            .map_or_else(|| "null".to_string(), |m| format!("{m}"));
        registry.append(Record {
            request_id: i as u64,
            chip_id: mix2(opts.seed, i as u64),
            class: row.scenario.clone(),
            scheme: scheme.to_string(),
            commit: BACKEND_COMMIT.to_string(),
            params: params_line.clone(),
            verdict,
            reason: row.reason.clone(),
            metrics: format!(
                "{{\"mismatch\":{mismatch},\"imprint_cycles\":{}}}",
                row.imprint_cycles
            ),
            ladder_depth: 0,
            retries: 0,
        });
    }
    (format!("{}", registry.root()), registry.len())
}

fn summarize_scheme(
    scheme: &str,
    imprints: bool,
    rows: &[&BackendRow],
    opts: &BackendCampaignOptions,
) -> BackendSchemeSummary {
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let genuine: Vec<f64> = rows
        .iter()
        .filter(|r| r.scenario == "genuine")
        .filter_map(|r| r.mismatch)
        .collect();
    let counterfeit: Vec<f64> = rows
        .iter()
        .filter(|r| r.scenario == "blank" || r.scenario == "cloned")
        .filter_map(|r| r.mismatch)
        .collect();
    let genuine_rows: Vec<&&BackendRow> = rows.iter().filter(|r| r.scenario == "genuine").collect();
    let imprint_cycles = genuine_rows.first().map_or(0, |r| r.imprint_cycles);
    let imprint_sim_s = mean(
        &genuine_rows
            .iter()
            .map(|r| r.imprint_sim_s)
            .collect::<Vec<_>>(),
    );
    let legacy: Vec<bool> = rows.iter().filter_map(|r| r.legacy_match).collect();
    // Verdict mix in deterministic (scenario, verdict, reason) order.
    let mut mix: Vec<BackendMixRow> = Vec::new();
    for row in rows {
        if let Some(m) = mix.iter_mut().find(|m| {
            m.scenario == row.scenario && m.verdict == row.verdict && m.reason == row.reason
        }) {
            m.count += 1;
        } else {
            mix.push(BackendMixRow {
                scenario: row.scenario.clone(),
                verdict: row.verdict.clone(),
                reason: row.reason.clone(),
                count: 1,
            });
        }
    }
    let (registry_root, registry_records) = seal_scheme_rows(scheme, rows, opts);
    let mean_genuine_mismatch = mean(&genuine);
    let mean_counterfeit_mismatch = mean(&counterfeit);
    BackendSchemeSummary {
        scheme: scheme.to_string(),
        imprints,
        trials: rows.len() as u64,
        expected_matches: rows.iter().filter(|r| r.expected).count() as u64,
        legacy_matches: (!legacy.is_empty()).then(|| legacy.iter().filter(|&&m| m).count() as u64),
        mean_genuine_mismatch,
        mean_counterfeit_mismatch,
        forgery_margin: mean_counterfeit_mismatch - mean_genuine_mismatch,
        imprint_cycles,
        imprint_sim_s,
        registry_root,
        registry_records,
        verdict_mix: mix,
    }
}

/// Runs the full differential campaign and assembles the artifact.
///
/// # Errors
///
/// The first backend error any trial hit (campaign trials run on healthy
/// simulated chips, so errors indicate a harness bug, not a verdict).
pub fn run_backend_campaign(
    opts: &BackendCampaignOptions,
) -> Result<BackendCampaignData, SchemeError> {
    let per = opts.trials.max(1);
    let cell = Scenario::ALL.len() * per;
    let total = BACKEND_SCHEMES.len() * cell;
    let runner = flashmark_par::TrialRunner::with_threads(opts.seed, opts.threads);
    let results: Vec<Result<BackendRow, SchemeError>> = runner.run(total, |t| {
        let scheme_idx = t.index / cell;
        let rem = t.index % cell;
        let scenario = Scenario::ALL[rem / per];
        let trial = (rem % per) as u64;
        let (out, legacy_match) = match scheme_idx {
            0 => nor_trial(t.seed, scenario)?,
            1 => nand_trial(t.seed, scenario)?,
            _ => reram_trial(t.seed, scenario)?,
        };
        let (verdict, reason) = verdict_labels(&out.verdict);
        Ok(BackendRow {
            scheme: BACKEND_SCHEMES[scheme_idx].to_string(),
            scenario: scenario.name().to_string(),
            trial,
            verdict: verdict.to_string(),
            reason: reason.to_string(),
            resolution: out.resolution.to_string(),
            mismatch: out.mismatch,
            imprint_cycles: out.cycles,
            imprint_sim_s: out.sim_s,
            wear_mean_cycles: out.wear,
            expected: scenario.expects(&out.verdict),
            legacy_match,
        })
    });
    let mut rows = Vec::with_capacity(total);
    for r in results {
        rows.push(r?);
    }
    let imprints = [
        NorTpew.imprints(),
        NandPuf.imprints(),
        ReramScheme.imprints(),
    ];
    let schemes = BACKEND_SCHEMES
        .iter()
        .zip(imprints)
        .map(|(&name, imprints)| {
            let scheme_rows: Vec<&BackendRow> = rows.iter().filter(|r| r.scheme == name).collect();
            summarize_scheme(name, imprints, &scheme_rows, opts)
        })
        .collect();
    Ok(BackendCampaignData {
        seed: opts.seed,
        trials_per_scenario: per as u64,
        scenarios: Scenario::ALL.iter().map(|s| s.name().to_string()).collect(),
        schemes,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_core::Extraction;

    #[test]
    fn tiny_campaign_covers_every_scheme_and_scenario() {
        let data = run_backend_campaign(&BackendCampaignOptions::tiny(1)).expect("campaign");
        assert_eq!(data.rows.len(), 12);
        assert_eq!(data.schemes.len(), 3);
        for s in &data.schemes {
            assert_eq!(s.trials, 4, "{}", s.scheme);
            assert_eq!(
                s.expected_matches, s.trials,
                "{}: every scenario must land its ground-truth verdict",
                s.scheme
            );
            assert!(
                s.forgery_margin > 0.05,
                "{}: clones must sit far from genuine mismatch (margin {})",
                s.scheme,
                s.forgery_margin
            );
            assert!(!s.registry_root.is_empty());
            assert_eq!(s.registry_records, s.trials);
        }
        let nor = &data.schemes[0];
        assert_eq!(
            nor.legacy_matches,
            Some(nor.trials),
            "NOR verdicts must match the pre-redesign pipeline exactly"
        );
        let nand = &data.schemes[1];
        assert!(!nand.imprints && nand.imprint_cycles == 0);
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let serial = run_backend_campaign(&BackendCampaignOptions::tiny(1)).expect("serial");
        let parallel = run_backend_campaign(&BackendCampaignOptions::tiny(8)).expect("parallel");
        assert_eq!(
            crate::json::ToJson::to_json(&serial).pretty(),
            crate::json::ToJson::to_json(&parallel).pretty()
        );
    }

    #[test]
    fn scenario_expectations() {
        assert!(Scenario::Genuine.expects(&Verdict::Genuine));
        assert!(!Scenario::Genuine.expects(&Verdict::Counterfeit(CounterfeitReason::NoWatermark)));
        assert!(Scenario::Blank.expects(&Verdict::Counterfeit(CounterfeitReason::NoWatermark)));
        assert!(
            Scenario::RejectedDie.expects(&Verdict::Counterfeit(CounterfeitReason::RejectedDie))
        );
        assert!(!Scenario::Cloned.expects(&Verdict::Genuine));
    }

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(verdict_labels(&Verdict::Genuine), ("accept", ""));
        assert_eq!(
            verdict_labels(&Verdict::Counterfeit(
                CounterfeitReason::WrongManufacturer { found: 1 }
            )),
            ("reject", "wrong_manufacturer")
        );
        assert_eq!(
            verdict_labels(&Verdict::Inconclusive(
                InconclusiveReason::FuzzyMatchMarginal
            )),
            ("inconclusive", "fuzzy_match_marginal")
        );
    }

    #[test]
    fn extraction_type_is_shared_between_wear_backends() {
        // NOR and ReRAM share the Extraction evidence type: the reuse the
        // scheme layer is for.
        fn assert_same<T>(_: fn() -> T, _: fn() -> T) {}
        fn nor_ev() -> Option<Extraction> {
            None
        }
        fn reram_ev() -> Option<<ReramScheme as WatermarkScheme>::Evidence> {
            None
        }
        assert_same(nor_ev, reram_ev);
    }
}
