//! The experiments themselves — one function per paper figure/table.
//!
//! Every function takes a [`TrialRunner`] and is deterministic given the
//! runner's experiment seed, independent of the worker count: each
//! independent unit of work (a stress level, a replica pair, a read count)
//! is one *trial* running on its own chip seeded by
//! `TrialRunner::trial_seed`, and results are merged in trial order.
//! The binaries print tables and dump JSON/CSV.

use flashmark_core::{
    analyze_segment, characterize_segment, select_t_pew, CoreError, Extractor, FlashmarkConfig,
    Imprinter, ReplicaLayout, StressDetector, SweepSpec, Watermark,
};
use flashmark_ecc::{Code, Hamming};
use flashmark_nor::interface::{FlashInterface, FlashInterfaceExt};
use flashmark_nor::{FlashController, SegmentAddr};
use flashmark_par::TrialRunner;
use flashmark_physics::Micros;

use crate::harness::{precondition_segment, test_chip, trial_chip, uppercase_ascii_watermark};

/// Collects per-trial results, surfacing the first error in trial order.
fn merge<T>(results: Vec<Result<T, CoreError>>) -> Result<Vec<T>, CoreError> {
    results.into_iter().collect()
}

// ---------------------------------------------------------------- Fig. 4 --

/// One stress level's characterization curve.
#[derive(Debug, Clone)]
pub struct Fig04Curve {
    /// Pre-conditioning stress (kcycles).
    pub kcycles: f64,
    /// Sweep points `(t_pe_us, cells_0, cells_1)`.
    pub points: Vec<(f64, usize, usize)>,
    /// Minimum `tPE` at which every cell reads erased (found by extended
    /// search when beyond the plot sweep).
    pub all_erased_us: f64,
    /// Largest `tPE` at which every cell still reads programmed.
    pub onset_us: Option<f64>,
}

/// Fig. 4 data: cells_0/cells_1 vs `tPE` per stress level.
#[derive(Debug, Clone)]
pub struct Fig04Data {
    /// One curve per stress level.
    pub curves: Vec<Fig04Curve>,
}

/// Regenerates Fig. 4. One trial per stress level.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn fig04(
    runner: &TrialRunner,
    stress_kcycles: &[f64],
    sweep: &SweepSpec,
    reads: usize,
) -> Result<Fig04Data, CoreError> {
    let curves = runner.run(stress_kcycles.len(), |trial| {
        let k = stress_kcycles[trial.index];
        let mut flash = trial_chip(trial);
        let seg = SegmentAddr::new(0);
        precondition_segment(&mut flash, seg, (k * 1000.0) as u64)?;
        let curve = characterize_segment(&mut flash, seg, sweep, reads)?;
        let all_erased_us = match curve.all_erased_time() {
            Some(t) => t.get(),
            None => all_erased_search(&mut flash, seg, sweep.end, reads)?.get(),
        };
        Ok(Fig04Curve {
            kcycles: k,
            points: curve
                .points
                .iter()
                .map(|p| (p.t_pe.get(), p.cells_0, p.cells_1))
                .collect(),
            all_erased_us,
            onset_us: curve.onset_time().map(Micros::get),
        })
    });
    Ok(Fig04Data {
        curves: merge(curves)?,
    })
}

/// Searches (coarse-to-exact upward scan) for the minimum `tPE` at which a
/// full characterization round reads every cell erased.
fn all_erased_search(
    flash: &mut FlashController,
    seg: SegmentAddr,
    start: Micros,
    reads: usize,
) -> Result<Micros, CoreError> {
    let mut t = start;
    for _ in 0..200 {
        t += Micros::new(10.0);
        flash.erase_segment(seg)?;
        flash.program_all_zero(seg)?;
        flash.partial_erase(seg, t)?;
        let bits = analyze_segment(flash, seg, reads)?;
        if bits.iter().all(|&b| b) {
            flash.erase_segment(seg)?;
            return Ok(t);
        }
    }
    flash.erase_segment(seg)?;
    Ok(t)
}

// ---------------------------------------------------------------- Fig. 5 --

/// Fig. 5 data: one-round fresh-vs-stressed discrimination.
#[derive(Debug, Clone)]
pub struct Fig05Data {
    /// Partial-erase time used.
    pub t_pew_us: f64,
    /// Cells distinguishable at `t_pew` (paper: 3833).
    pub distinguishable: usize,
    /// Total cells (paper: 4096).
    pub total: usize,
    /// Window-search optimum over the sweep.
    pub best_t_pew_us: f64,
    /// Distinguishability at the optimum.
    pub best_distinguishable: usize,
    /// Programmed-cell counts (fresh, stressed) at `t_pew`.
    pub programmed_at_t_pew: (usize, usize),
}

/// Regenerates Fig. 5: fresh vs `stress_kcycles` discrimination around the
/// paper's 23 µs operating point.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn fig05(
    runner: &TrialRunner,
    stress_kcycles: f64,
    t_pew: Micros,
) -> Result<Fig05Data, CoreError> {
    // A single chip carries both segments, so this is one trial.
    let mut flash = trial_chip(runner.trial(0));
    let fresh_seg = SegmentAddr::new(0);
    let worn_seg = SegmentAddr::new(1);
    precondition_segment(&mut flash, worn_seg, (stress_kcycles * 1000.0) as u64)?;

    let sweep = SweepSpec::new(Micros::new(10.0), Micros::new(60.0), Micros::new(1.0))?;
    let fresh = characterize_segment(&mut flash, fresh_seg, &sweep, 3)?;
    let worn = characterize_segment(&mut flash, worn_seg, &sweep, 3)?;
    let window = select_t_pew(&fresh, &worn, 50)?;

    let total = fresh.total_cells();
    let fresh_prog = fresh.cells_0_at(t_pew) as usize;
    let worn_prog = worn.cells_0_at(t_pew) as usize;
    let distinguishable = ((total - fresh_prog) + worn_prog).saturating_sub(total);

    Ok(Fig05Data {
        t_pew_us: t_pew.get(),
        distinguishable,
        total,
        best_t_pew_us: window.t_pew.get(),
        best_distinguishable: window.distinguishable,
        programmed_at_t_pew: (fresh_prog, worn_prog),
    })
}

// ---------------------------------------------------------------- Fig. 9 --

/// One BER-vs-`tPE` series.
#[derive(Debug, Clone)]
pub struct BerSeries {
    /// Imprint stress (kcycles).
    pub kcycles: f64,
    /// Replicas used (1 for Fig. 9).
    pub replicas: usize,
    /// `(t_pe_us, ber)` points.
    pub points: Vec<(f64, f64)>,
}

impl BerSeries {
    /// The minimum BER over the sweep and the time it occurs at.
    #[must_use]
    pub fn minimum(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Fig. 9 data: single-copy, single-read BER vs `tPE` per stress level.
#[derive(Debug, Clone)]
pub struct Fig09Data {
    /// Fraction of 1-bits in the watermark (the small-`tPE` plateau).
    pub ones_fraction: f64,
    /// One series per stress level.
    pub series: Vec<BerSeries>,
}

/// Regenerates Fig. 9: a 512-byte upper-case-ASCII watermark imprinted at
/// each stress level, extracted with a single read and no replication.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn fig09(
    runner: &TrialRunner,
    stress_kcycles: &[f64],
    sweep: &SweepSpec,
) -> Result<Fig09Data, CoreError> {
    let seed = runner.experiment_seed();
    let bytes = test_chip(seed).geometry().bytes_per_segment() as usize;
    let wm = uppercase_ascii_watermark(bytes, seed ^ 0x99);
    let series = runner.run(stress_kcycles.len(), |trial| {
        let k = stress_kcycles[trial.index];
        let mut flash = trial_chip(trial);
        let seg = SegmentAddr::new(0);
        let points = if k == 0.0 {
            // No imprint at all: the watermark was never written.
            ber_sweep(&mut flash, seg, &wm, 1, sweep)?
        } else {
            let cfg = FlashmarkConfig::builder()
                .n_pe((k * 1000.0) as u64)
                .replicas(1)
                .reads(1)
                .build()?;
            Imprinter::new(&cfg).imprint(&mut flash, seg, &wm)?;
            ber_sweep(&mut flash, seg, &wm, 1, sweep)?
        };
        Ok(BerSeries {
            kcycles: k,
            replicas: 1,
            points,
        })
    });
    Ok(Fig09Data {
        ones_fraction: wm.ones_fraction(),
        series: merge(series)?,
    })
}

fn ber_sweep(
    flash: &mut FlashController,
    seg: SegmentAddr,
    wm: &Watermark,
    replicas: usize,
    sweep: &SweepSpec,
) -> Result<Vec<(f64, f64)>, CoreError> {
    let mut points = Vec::new();
    for t in sweep.times() {
        if t.get() <= 0.0 {
            continue;
        }
        let cfg = FlashmarkConfig::builder()
            .n_pe(1) // unused during extraction
            .replicas(replicas)
            .reads(1)
            .t_pew(t)
            .build()?;
        let extraction = Extractor::new(&cfg).extract(flash, seg, wm.len())?;
        points.push((t.get(), extraction.ber_against(wm)));
    }
    Ok(points)
}

// --------------------------------------------------------------- Fig. 10 --

/// Fig. 10 data: per-replica extraction of a 30-bit slice plus the
/// majority-voted recovery.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// The imprinted reference bits.
    pub reference: Vec<bool>,
    /// Extracted bits per replica.
    pub replicas: Vec<Vec<bool>>,
    /// Majority-voted recovery.
    pub recovered: Vec<bool>,
    /// Per-replica bit errors.
    pub replica_errors: Vec<usize>,
    /// Errors in the recovered word (paper: 0).
    pub recovered_errors: usize,
    /// Good→bad vs bad→good error split across replicas.
    pub good_to_bad: usize,
    /// See above.
    pub bad_to_good: usize,
}

/// Regenerates Fig. 10: 7 replicas of a 30-bit vector at 50 K stress,
/// extracted at `tPEW` = 28 µs, recovered by majority voting.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn fig10(
    runner: &TrialRunner,
    bits: usize,
    replicas: usize,
    stress_kcycles: f64,
    t_pew: Micros,
) -> Result<Fig10Data, CoreError> {
    let seed = runner.experiment_seed();
    let mut flash = trial_chip(runner.trial(0));
    let seg = SegmentAddr::new(0);
    let wm = {
        let full = uppercase_ascii_watermark(bits.div_ceil(8), seed ^ 0x1010);
        Watermark::from_bits(full.bits()[..bits].to_vec())?
    };
    let cfg = FlashmarkConfig::builder()
        .n_pe((stress_kcycles * 1000.0) as u64)
        .replicas(replicas)
        .t_pew(t_pew)
        .reads(1)
        .build()?;
    Imprinter::new(&cfg).imprint(&mut flash, seg, &wm)?;
    let extraction = Extractor::new(&cfg).extract(&mut flash, seg, wm.len())?;

    let mut replica_bits = Vec::new();
    let mut replica_errors = Vec::new();
    let mut good_to_bad = 0;
    let mut bad_to_good = 0;
    for r in 0..replicas {
        let bits_r = extraction.replica(r).to_vec();
        let errs = extraction.replica_errors(r, &wm);
        good_to_bad += errs.good_to_bad;
        bad_to_good += errs.bad_to_good;
        replica_errors.push(errs.errors());
        replica_bits.push(bits_r);
    }
    let recovered = extraction.bits();
    let recovered_errors = recovered
        .iter()
        .zip(wm.bits())
        .filter(|(a, b)| a != b)
        .count();
    Ok(Fig10Data {
        reference: wm.bits().to_vec(),
        replicas: replica_bits,
        recovered,
        replica_errors,
        recovered_errors,
        good_to_bad,
        bad_to_good,
    })
}

// --------------------------------------------------------------- Fig. 11 --

/// Fig. 11 data: majority-voted BER vs `tPE` for several replica counts and
/// stress levels.
#[derive(Debug, Clone)]
pub struct Fig11Data {
    /// One series per `(stress level, replica count)` pair.
    pub series: Vec<BerSeries>,
}

/// Regenerates Fig. 11: a watermark imprinted at each stress level with
/// 3/5/7-way replication, extracted across the `tPE` window, BER after
/// majority voting.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn fig11(
    runner: &TrialRunner,
    stress_kcycles: &[f64],
    replica_counts: &[usize],
    sweep: &SweepSpec,
    layout: ReplicaLayout,
) -> Result<Fig11Data, CoreError> {
    let seed = runner.experiment_seed();
    // One trial per (stress level, replica count) pair, in row-major order.
    let pairs: Vec<(f64, usize)> = stress_kcycles
        .iter()
        .flat_map(|&k| replica_counts.iter().map(move |&reps| (k, reps)))
        .collect();
    let series = runner.run(pairs.len(), |trial| {
        let (k, reps) = pairs[trial.index];
        let mut flash = trial_chip(trial);
        let seg = SegmentAddr::new(0);
        // Largest watermark that fits with this replication.
        let data_bits = (4096 / reps).min(512);
        let wm = {
            let full = uppercase_ascii_watermark(data_bits.div_ceil(8), seed ^ 0x1111);
            Watermark::from_bits(full.bits()[..data_bits].to_vec())?
        };
        let cfg = FlashmarkConfig::builder()
            .n_pe((k * 1000.0) as u64)
            .replicas(reps)
            .reads(1)
            .layout(layout)
            .build()?;
        Imprinter::new(&cfg).imprint(&mut flash, seg, &wm)?;

        let mut points = Vec::new();
        for t in sweep.times() {
            if t.get() <= 0.0 {
                continue;
            }
            let cfg_t = FlashmarkConfig::builder()
                .n_pe(1)
                .replicas(reps)
                .reads(1)
                .t_pew(t)
                .layout(layout)
                .build()?;
            let e = Extractor::new(&cfg_t).extract(&mut flash, seg, wm.len())?;
            points.push((t.get(), e.ber_against(&wm)));
        }
        Ok(BerSeries {
            kcycles: k,
            replicas: reps,
            points,
        })
    });
    Ok(Fig11Data {
        series: merge(series)?,
    })
}

// ------------------------------------------------------------ §V timing --

/// §V timing results.
#[derive(Debug, Clone)]
pub struct Table1Data {
    /// `(n_pe, baseline_s, accelerated_s, speedup)` rows.
    pub imprint: Vec<(u64, f64, f64, f64)>,
    /// Extraction time of a 7-replica record, seconds.
    pub extract_s: f64,
}

/// Regenerates the Section V timing numbers.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn table1(runner: &TrialRunner, cycle_counts: &[u64]) -> Result<Table1Data, CoreError> {
    let seed = runner.experiment_seed();
    let wm = uppercase_ascii_watermark(64, seed ^ 0x71);
    // Two trials per NPE (baseline then accelerated), each on its own chip.
    let elapsed = runner.run(cycle_counts.len() * 2, |trial| {
        let n = cycle_counts[trial.index / 2];
        let accel = trial.index % 2 == 1;
        let mut flash = trial_chip(trial);
        let cfg = FlashmarkConfig::builder()
            .n_pe(n)
            .replicas(7)
            .accelerated(accel)
            .build()?;
        let report = Imprinter::new(&cfg).imprint(&mut flash, SegmentAddr::new(0), &wm)?;
        Ok(report.elapsed.get())
    });
    let elapsed = merge(elapsed)?;
    let imprint = cycle_counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let (base, accel) = (elapsed[2 * i], elapsed[2 * i + 1]);
            (n, base, accel, base / accel)
        })
        .collect();

    // Extraction time of a 128-bit record with 7 replicas, 3 reads.
    let cfg = FlashmarkConfig::builder()
        .n_pe(70_000)
        .replicas(7)
        .build()?;
    let mut flash = trial_chip(runner.trial(cycle_counts.len() * 2));
    let seg = SegmentAddr::new(0);
    let record_wm = uppercase_ascii_watermark(16, seed ^ 0x72);
    Imprinter::new(&cfg).imprint(&mut flash, seg, &record_wm)?;
    let e = Extractor::new(&cfg).extract(&mut flash, seg, record_wm.len())?;
    Ok(Table1Data {
        imprint,
        extract_s: e.elapsed().get(),
    })
}

// ------------------------------------------------------- ECC ablation ----

/// ECC-vs-replication ablation result.
#[derive(Debug, Clone)]
pub struct EccAblationData {
    /// `(scheme, channel_bits, ber_after_decode, record_recovered)` rows.
    pub rows: Vec<(String, usize, f64, bool)>,
}

/// Compares 3-way replication against Hamming(15,11) (plain and extended)
/// protecting the same 128-bit record at the same stress level.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn ecc_ablation(
    runner: &TrialRunner,
    stress_kcycles: f64,
    t_pew: Micros,
) -> Result<EccAblationData, CoreError> {
    let seed = runner.experiment_seed();
    let record = uppercase_ascii_watermark(16, seed ^ 0x3C);
    let n_pe = (stress_kcycles * 1000.0) as u64;

    // Trial 0: 3-way replication via the standard pipeline. Trials 1-2:
    // Hamming codes — encode the record bits, imprint the codeword with no
    // replication, decode after extraction.
    let rows = runner.run(3, |trial| {
        let mut flash = trial_chip(trial);
        let seg = SegmentAddr::new(0);
        if trial.index == 0 {
            let cfg = FlashmarkConfig::builder()
                .n_pe(n_pe)
                .replicas(3)
                .t_pew(t_pew)
                .reads(1)
                .build()?;
            Imprinter::new(&cfg).imprint(&mut flash, seg, &record)?;
            let e = Extractor::new(&cfg).extract(&mut flash, seg, record.len())?;
            let ber = e.ber_against(&record);
            return Ok((
                "replication x3".to_string(),
                record.len() * 3,
                ber,
                ber == 0.0,
            ));
        }
        let (name, code) = if trial.index == 1 {
            ("hamming(15,11)", Hamming::new())
        } else {
            ("hamming(16,11) ext", Hamming::extended())
        };
        let codeword = Watermark::from_bits(code.encode(record.bits()))?;
        let cfg = FlashmarkConfig::builder()
            .n_pe(n_pe)
            .replicas(1)
            .t_pew(t_pew)
            .reads(1)
            .build()?;
        Imprinter::new(&cfg).imprint(&mut flash, seg, &codeword)?;
        let e = Extractor::new(&cfg).extract(&mut flash, seg, codeword.len())?;
        let decoded = code.decode(&e.bits())?;
        let ber = flashmark_ecc::bits::bit_error_rate(&decoded.data[..record.len()], record.bits());
        Ok((name.to_string(), codeword.len(), ber, ber == 0.0))
    });
    Ok(EccAblationData { rows: merge(rows)? })
}

// ------------------------------------------------------- read majority ---

/// Ablation: effect of the N-read majority (`AnalyzeSegment`) on single-copy
/// BER near the extraction window.
#[derive(Debug, Clone)]
pub struct ReadMajorityData {
    /// `(reads, min_ber)` rows at the fixed stress level.
    pub rows: Vec<(usize, f64)>,
}

/// Sweeps the read-majority count (the paper's N) at one stress level.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn read_majority_ablation(
    runner: &TrialRunner,
    stress_kcycles: f64,
    sweep: &SweepSpec,
    read_counts: &[usize],
) -> Result<ReadMajorityData, CoreError> {
    let wm = uppercase_ascii_watermark(512, runner.experiment_seed() ^ 0x42);
    // One trial per read count, each imprinting its own chip.
    let rows = runner.run(read_counts.len(), |trial| {
        let reads = read_counts[trial.index];
        let mut flash = trial_chip(trial);
        let seg = SegmentAddr::new(0);
        let cfg = FlashmarkConfig::builder()
            .n_pe((stress_kcycles * 1000.0) as u64)
            .replicas(1)
            .reads(1)
            .build()?;
        Imprinter::new(&cfg).imprint(&mut flash, seg, &wm)?;

        let mut best = f64::INFINITY;
        for t in sweep.times() {
            if t.get() <= 0.0 {
                continue;
            }
            let cfg_t = FlashmarkConfig::builder()
                .n_pe(1)
                .replicas(1)
                .reads(reads)
                .t_pew(t)
                .build()?;
            let e = Extractor::new(&cfg_t).extract(&mut flash, seg, wm.len())?;
            best = best.min(e.ber_against(&wm));
        }
        Ok((reads, best))
    });
    Ok(ReadMajorityData { rows: merge(rows)? })
}

// ------------------------------------------------------- stress probe ----

/// Recycled-chip detection sweep: stress-detector separation vs prior use.
#[derive(Debug, Clone)]
pub struct RecycledProbeData {
    /// `(prior_kcycles, programmed_fraction)` rows at the detector's tPEW.
    pub rows: Vec<(f64, f64)>,
}

/// Probes how much prior use the Fig. 5 detector can see.
///
/// # Errors
///
/// Flash/configuration errors.
pub fn recycled_probe(
    runner: &TrialRunner,
    prior_kcycles: &[f64],
) -> Result<RecycledProbeData, CoreError> {
    let rows = runner.run(prior_kcycles.len(), |trial| {
        let k = prior_kcycles[trial.index];
        let mut flash = trial_chip(trial);
        let det = StressDetector::fig5();
        let seg = SegmentAddr::new(0);
        precondition_segment(&mut flash, seg, (k * 1000.0) as u64)?;
        let report = det.classify(&mut flash, seg)?;
        Ok((k, report.programmed_fraction()))
    });
    Ok(RecycledProbeData { rows: merge(rows)? })
}

// JSON serialization of the result structs (the offline replacement for
// the former `#[derive(Serialize)]`).
use crate::impl_to_json;
impl_to_json!(Fig04Curve {
    kcycles,
    points,
    all_erased_us,
    onset_us
});
impl_to_json!(Fig04Data { curves });
impl_to_json!(Fig05Data {
    t_pew_us,
    distinguishable,
    total,
    best_t_pew_us,
    best_distinguishable,
    programmed_at_t_pew,
});
impl_to_json!(BerSeries {
    kcycles,
    replicas,
    points
});
impl_to_json!(Fig09Data {
    ones_fraction,
    series
});
impl_to_json!(Fig10Data {
    reference,
    replicas,
    recovered,
    replica_errors,
    recovered_errors,
    good_to_bad,
    bad_to_good,
});
impl_to_json!(Fig11Data { series });
impl_to_json!(Table1Data { imprint, extract_s });
impl_to_json!(EccAblationData { rows });
impl_to_json!(ReadMajorityData { rows });
impl_to_json!(RecycledProbeData { rows });

#[cfg(test)]
mod tests {
    use super::*;

    // Scaled-down smoke tests; full-scale runs live in the binaries.

    fn serial(seed: u64) -> TrialRunner {
        TrialRunner::with_threads(seed, 1)
    }

    #[test]
    fn fig04_small() {
        let sweep = SweepSpec::new(Micros::new(0.0), Micros::new(60.0), Micros::new(10.0)).unwrap();
        let d = fig04(&serial(1), &[0.0, 20.0], &sweep, 1).unwrap();
        assert_eq!(d.curves.len(), 2);
        assert!(d.curves[1].all_erased_us > d.curves[0].all_erased_us);
    }

    #[test]
    fn fig09_small() {
        let sweep = SweepSpec::new(Micros::new(20.0), Micros::new(44.0), Micros::new(6.0)).unwrap();
        let d = fig09(&serial(2), &[0.0, 40.0], &sweep).unwrap();
        let m0 = d.series[0].minimum().unwrap().1;
        let m40 = d.series[1].minimum().unwrap().1;
        assert!(
            m40 < m0,
            "imprinted segment must beat unimprinted ({m40} vs {m0})"
        );
    }

    #[test]
    fn fig09_parallel_matches_serial() {
        let sweep = SweepSpec::new(Micros::new(20.0), Micros::new(44.0), Micros::new(8.0)).unwrap();
        let levels = [0.0, 20.0, 40.0];
        let a = fig09(&serial(6), &levels, &sweep).unwrap();
        let b = fig09(&TrialRunner::with_threads(6, 4), &levels, &sweep).unwrap();
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.kcycles.to_bits(), sb.kcycles.to_bits());
            for (pa, pb) in sa.points.iter().zip(&sb.points) {
                assert_eq!(pa.0.to_bits(), pb.0.to_bits());
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "BER diverged at {}", pa.0);
            }
        }
    }

    #[test]
    fn fig10_small() {
        let d = fig10(&serial(3), 30, 7, 50.0, Micros::new(30.0)).unwrap();
        assert_eq!(d.replicas.len(), 7);
        assert_eq!(d.recovered.len(), 30);
        assert!(
            d.recovered_errors <= 1,
            "majority recovery should be near-perfect"
        );
    }

    #[test]
    fn table1_small() {
        let d = table1(&serial(4), &[1_000]).unwrap();
        let (_, baseline, accel, speedup) = d.imprint[0];
        assert!(baseline > accel);
        assert!(speedup > 2.0);
        assert!(d.extract_s < 1.0);
    }

    #[test]
    fn recycled_probe_monotone() {
        let d = recycled_probe(&serial(5), &[0.0, 30.0]).unwrap();
        assert!(d.rows[1].1 > d.rows[0].1 + 0.3);
    }
}
