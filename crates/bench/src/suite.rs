//! The full experiment suite as a library: every paper artifact, run with
//! a configurable worker count and profile, timed, and rendered into the
//! `results/experiments_report.md` paper-vs-measured report.
//!
//! `run_all` is a thin wrapper over [`run_suite`]; the workspace
//! determinism test runs the [`Profile::Smoke`] suite at 1 and 8 threads
//! and asserts byte-identical JSON artifacts. Wall-clock timings appear
//! only in the Markdown report, `BENCH_runtime.json`, and the quarantined
//! `obs_timings.json`, never in the experiment JSONs, so the determinism
//! guarantee covers every other `*.json` artifact (including
//! `obs_report.json`).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use flashmark_core::{
    characterize_sample, fuse_windows, Extractor, FlashmarkConfig, Imprinter, ReplicaLayout,
    SweepSpec, Watermark,
};
use flashmark_nand::{NandChip, NandGeometry, NandWordAdapter};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_par::TrialRunner;
use flashmark_physics::{Micros, PhysicsParams};
use flashmark_supply::{ScenarioConfig, SupplyChainScenario};

use crate::experiments::{
    ecc_ablation, fig04, fig05, fig09, fig10, fig11, read_majority_ablation, recycled_probe,
    table1, BerSeries,
};
use crate::fault_campaign::{fault_campaign, fault_campaign_trials};
use crate::impl_to_json;
use crate::microbench::kernel_suite;
use crate::observability::{obs_campaign, obs_campaign_trials};
use crate::output::write_json_in;
use crate::paper;
use crate::trend::{append_and_report, suite_record};

/// How much work the suite does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Paper-scale parameters — regenerates the committed `results/`.
    Full,
    /// Reduced trials/sweeps for CI and the determinism test.
    Smoke,
}

/// Suite configuration.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Worker threads for the trial runner (1 = exact legacy serial path).
    pub threads: usize,
    /// Work profile.
    pub profile: Profile,
    /// Directory all artifacts are written into.
    pub results_dir: PathBuf,
}

/// One experiment's execution record.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Experiment name (also the JSON artifact stem).
    pub name: &'static str,
    /// Independent trials the experiment fanned out.
    pub trials: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// The error message, if the experiment failed.
    pub error: Option<String>,
}

/// The suite's result: per-experiment outcomes plus the rendered report.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// One outcome per experiment, in execution order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// The full Markdown report (also written to `experiments_report.md`).
    pub markdown: String,
}

impl SuiteReport {
    /// The experiments that failed.
    #[must_use]
    pub fn failures(&self) -> Vec<&ExperimentOutcome> {
        self.outcomes.iter().filter(|o| o.error.is_some()).collect()
    }
}

/// A JSON-serializable summary of the family-consistency step.
#[derive(Debug)]
struct FamilySummary {
    /// `(seed, t_pew_us, separation, window_lo_us, window_hi_us)` per chip.
    per_chip: Vec<(u64, f64, f64, f64, f64)>,
    recipe_t_pew_us: f64,
    recipe_window: (f64, f64),
    optimum_spread_us: f64,
}
impl_to_json!(FamilySummary {
    per_chip,
    recipe_t_pew_us,
    recipe_window,
    optimum_spread_us
});

/// The `obs_timings.json` artifact: the observability step's wall clock,
/// quarantined away from the deterministic `obs_report.json` so the latter
/// stays byte-identical across machines and thread counts.
#[derive(Debug)]
struct ObsTimings {
    wall_s: f64,
    threads: usize,
    trials: u64,
}
impl_to_json!(ObsTimings {
    wall_s,
    threads,
    trials
});

/// One profile's row in the `physics_params.json` artifact: the scalar
/// knobs that define simulation semantics, committed so parameter drift
/// (including the erase-distribution quantization grid, which changes every
/// erase-time draw) shows up in review as a diff on a versioned artifact.
#[derive(Debug)]
struct ParamsEntry {
    profile: &'static str,
    vref_v: f64,
    vth_erased_mean_v: f64,
    vth_erased_sigma_v: f64,
    vth_programmed_mean_v: f64,
    vth_programmed_sigma_v: f64,
    read_noise_sigma_v: f64,
    op_jitter_sigma: f64,
    common_jitter_sigma: f64,
    erased_vth_shift_per_kcycle: f64,
    programmed_vth_shift_per_kcycle: f64,
    wear_program: f64,
    wear_erase: f64,
    wear_erase_only: f64,
    erase_activation_energy_ev: f64,
    ref_temp_c: f64,
    endurance_kcycles: f64,
    erase_dist_grid_kcycles: f64,
    prog_full_time_median_us: f64,
    prog_full_time_sigma: f64,
    prog_speedup_per_kcycle: f64,
}
impl_to_json!(ParamsEntry {
    profile,
    vref_v,
    vth_erased_mean_v,
    vth_erased_sigma_v,
    vth_programmed_mean_v,
    vth_programmed_sigma_v,
    read_noise_sigma_v,
    op_jitter_sigma,
    common_jitter_sigma,
    erased_vth_shift_per_kcycle,
    programmed_vth_shift_per_kcycle,
    wear_program,
    wear_erase,
    wear_erase_only,
    erase_activation_energy_ev,
    ref_temp_c,
    endurance_kcycles,
    erase_dist_grid_kcycles,
    prog_full_time_median_us,
    prog_full_time_sigma,
    prog_speedup_per_kcycle
});

/// The `physics_params.json` artifact: every built-in parameter profile.
#[derive(Debug)]
struct ParamsReport {
    profiles: Vec<ParamsEntry>,
}
impl_to_json!(ParamsReport { profiles });

fn params_entry(profile: &'static str, p: &PhysicsParams) -> ParamsEntry {
    ParamsEntry {
        profile,
        vref_v: p.vref.get(),
        vth_erased_mean_v: p.vth_erased.mean,
        vth_erased_sigma_v: p.vth_erased.sigma,
        vth_programmed_mean_v: p.vth_programmed.mean,
        vth_programmed_sigma_v: p.vth_programmed.sigma,
        read_noise_sigma_v: p.read_noise_sigma,
        op_jitter_sigma: p.op_jitter_sigma,
        common_jitter_sigma: p.common_jitter_sigma,
        erased_vth_shift_per_kcycle: p.erased_vth_shift_per_kcycle,
        programmed_vth_shift_per_kcycle: p.programmed_vth_shift_per_kcycle,
        wear_program: p.wear.program,
        wear_erase: p.wear.erase,
        wear_erase_only: p.wear.erase_only,
        erase_activation_energy_ev: p.erase_activation_energy_ev,
        ref_temp_c: p.ref_temp_c,
        endurance_kcycles: p.endurance_kcycles,
        erase_dist_grid_kcycles: p.erase_dist_grid_kcycles,
        prog_full_time_median_us: p.prog_full_time_us.median,
        prog_full_time_sigma: p.prog_full_time_us.sigma,
        prog_speedup_per_kcycle: p.prog_speedup_per_kcycle,
    }
}

fn params_report() -> ParamsReport {
    ParamsReport {
        profiles: vec![
            params_entry("msp430_like", &PhysicsParams::msp430_like()),
            params_entry("generic_nor", &PhysicsParams::generic_nor()),
            params_entry("fast_standalone_nor", &PhysicsParams::fast_standalone_nor()),
        ],
    }
}

type StepResult = Result<(), Box<dyn std::error::Error>>;

#[allow(clippy::needless_pass_by_value)] // callers hand over freshly formatted strings
fn row(md: &mut String, artifact: &str, metric: &str, paper: String, measured: String) {
    let _ = writeln!(md, "| {artifact} | {metric} | {paper} | {measured} |");
}

/// Exact f64 identity for sweep keys that are carried through unchanged
/// (stress levels in `kcycles`), where bit equality is the correct match.
fn same(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn step<F>(
    outcomes: &mut Vec<ExperimentOutcome>,
    md: &mut String,
    name: &'static str,
    trials: usize,
    f: F,
) where
    F: FnOnce(&mut String) -> StepResult,
{
    // flashmark-lint: allow(print-discipline) -- suite progress ticker on stderr; artifacts stay deterministic on stdout/disk
    eprintln!("[{:>2}] {name} ...", outcomes.len() + 1);
    let t0 = Instant::now();
    let error = f(md).err().map(|e| e.to_string());
    let wall_s = t0.elapsed().as_secs_f64();
    if let Some(e) = &error {
        // flashmark-lint: allow(print-discipline) -- failure surfaced live on stderr as well as in the outcome record
        eprintln!("     {name} FAILED: {e}");
    }
    outcomes.push(ExperimentOutcome {
        name,
        trials,
        wall_s,
        error,
    });
}

/// Runs every experiment of the profile and writes all artifacts
/// (`*.json`, `experiments_report.md`, and — for [`Profile::Full`] —
/// `BENCH_runtime.json`) into the results directory.
///
/// Per-experiment errors are captured in the outcomes, not propagated, so
/// one failing experiment does not mask the rest.
///
/// # Errors
///
/// I/O errors writing the report files.
#[allow(clippy::too_many_lines)]
pub fn run_suite(opts: &SuiteOptions) -> std::io::Result<SuiteReport> {
    let dir = &opts.results_dir;
    fs::create_dir_all(dir)?;
    let smoke = opts.profile == Profile::Smoke;
    let runner = |seed: u64| TrialRunner::with_threads(seed, opts.threads);
    let mut md = String::from(
        "# Flashmark reproduction — paper vs measured\n\n\
         Generated by `cargo run --release -p flashmark-bench --bin run_all`.\n\n\
         | artifact | metric | paper | measured |\n|---|---|---|---|\n",
    );
    let mut outcomes = Vec::new();

    // Fig. 4.
    let levels4: Vec<f64> = if smoke {
        vec![0.0, 20.0]
    } else {
        paper::FIG4_ALL_ERASED_US.iter().map(|&(k, _)| k).collect()
    };
    step(&mut outcomes, &mut md, "fig04", levels4.len(), |md| {
        let sweep4 = if smoke {
            SweepSpec::new(Micros::new(0.0), Micros::new(60.0), Micros::new(12.0))?
        } else {
            SweepSpec::fig4()
        };
        let f4 = fig04(
            &runner(0xF1604),
            &levels4,
            &sweep4,
            if smoke { 1 } else { 3 },
        )?;
        write_json_in(dir, "fig04", &f4)?;
        for (c, &(k, p)) in f4.curves.iter().zip(paper::FIG4_ALL_ERASED_US) {
            row(
                md,
                "Fig. 4",
                &format!("all cells erased @{k}K (µs)"),
                format!("{p:.0}"),
                format!("{:.0}", c.all_erased_us),
            );
        }
        if let Some(onset) = f4.curves[0].onset_us {
            row(
                md,
                "Fig. 4",
                "fresh erase onset (µs)",
                format!("{:.0}", paper::FIG4_FRESH_ONSET_US),
                format!("{onset:.0}"),
            );
        }
        Ok(())
    });

    // Fig. 5.
    step(&mut outcomes, &mut md, "fig05", 1, |md| {
        let f5 = fig05(&runner(0xF1605), 50.0, Micros::new(paper::FIG5_T_PEW_US))?;
        write_json_in(dir, "fig05", &f5)?;
        row(
            md,
            "Fig. 5",
            "bits distinguishing 0K vs 50K @23 µs",
            format!("{}/4096", paper::FIG5_DISTINGUISHABLE),
            format!(
                "{}/{} (optimum {} @{:.0} µs)",
                f5.distinguishable, f5.total, f5.best_distinguishable, f5.best_t_pew_us
            ),
        );
        Ok(())
    });

    // Fig. 9.
    let levels9: Vec<f64> = if smoke {
        vec![0.0, 40.0]
    } else {
        vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]
    };
    step(&mut outcomes, &mut md, "fig09", levels9.len(), |md| {
        let sweep9 = if smoke {
            SweepSpec::new(Micros::new(20.0), Micros::new(44.0), Micros::new(6.0))?
        } else {
            SweepSpec::new(Micros::new(2.0), Micros::new(80.0), Micros::new(2.0))?
        };
        let f9 = fig09(&runner(0xF1609), &levels9, &sweep9)?;
        write_json_in(dir, "fig09", &f9)?;
        for s in &f9.series {
            let m = s.minimum().map_or(f64::NAN, |(_, b)| b * 100.0);
            let p = paper::FIG9_MIN_BER_PCT
                .iter()
                .find(|&&(k, _)| same(k, s.kcycles))
                .map_or_else(|| "—".to_string(), |&(_, b)| format!("{b}"));
            row(
                md,
                "Fig. 9",
                &format!("min single-copy BER @{}K (%)", s.kcycles),
                p,
                format!("{m:.1}"),
            );
        }
        Ok(())
    });

    // Fig. 10.
    step(&mut outcomes, &mut md, "fig10", 1, |md| {
        let f10 = fig10(
            &runner(0xF1610),
            paper::FIG10_BITS,
            paper::FIG10_REPLICAS,
            paper::FIG10_STRESS_KCYCLES,
            Micros::new(paper::FIG10_T_PEW_US),
        )?;
        write_json_in(dir, "fig10", &f10)?;
        row(
            md,
            "Fig. 10",
            "majority-voted errors (30 bits, 7 replicas, 50K)",
            "0".into(),
            format!("{}", f10.recovered_errors),
        );
        row(
            md,
            "Fig. 10",
            "error direction (bad→good : good→bad)",
            "bad→good dominates".into(),
            format!("{} : {}", f10.bad_to_good, f10.good_to_bad),
        );
        Ok(())
    });

    // Fig. 11.
    let (levels11, reps11): (Vec<f64>, Vec<usize>) = if smoke {
        (vec![40.0], vec![3])
    } else {
        (vec![40.0, 50.0, 60.0, 70.0], vec![3, 5, 7])
    };
    let trials11 = levels11.len() * reps11.len();
    step(&mut outcomes, &mut md, "fig11", trials11, |md| {
        let sweep11 = if smoke {
            SweepSpec::new(Micros::new(24.0), Micros::new(36.0), Micros::new(6.0))?
        } else {
            SweepSpec::new(Micros::new(20.0), Micros::new(56.0), Micros::new(2.0))?
        };
        let f11 = fig11(
            &runner(0xF1611),
            &levels11,
            &reps11,
            &sweep11,
            ReplicaLayout::Contiguous,
        )?;
        write_json_in(dir, "fig11", &f11)?;
        for &(r, p) in paper::FIG11_40K_MIN_BER_PCT {
            let m = f11
                .series
                .iter()
                .find(|s| same(s.kcycles, 40.0) && s.replicas == r)
                .and_then(BerSeries::minimum);
            if let Some((_, b)) = m {
                row(
                    md,
                    "Fig. 11",
                    &format!("min BER @40K, {r} replicas (%)"),
                    format!("{p}"),
                    format!("{:.2}", b * 100.0),
                );
            }
        }
        if let Some((_, b)) = f11
            .series
            .iter()
            .find(|s| same(s.kcycles, 70.0) && s.replicas == 3)
            .and_then(BerSeries::minimum)
        {
            row(
                md,
                "Fig. 11",
                "min BER @70K, 3 replicas (%)",
                "0 (full recovery)".into(),
                format!("{:.2}", b * 100.0),
            );
        }
        Ok(())
    });

    // §V timing.
    let cycles: Vec<u64> = if smoke {
        vec![1_000]
    } else {
        vec![40_000, 70_000]
    };
    step(
        &mut outcomes,
        &mut md,
        "table1",
        cycles.len() * 2 + 1,
        |md| {
            let t1 = table1(&runner(0xF1671), &cycles)?;
            write_json_in(dir, "table1", &t1)?;
            for &(n, base, accel, _) in &t1.imprint {
                let (pb, pa) = match n {
                    40_000 => (
                        Some(paper::IMPRINT_BASELINE_40K_S),
                        Some(paper::IMPRINT_ACCEL_40K_S),
                    ),
                    70_000 => (
                        Some(paper::IMPRINT_BASELINE_70K_S),
                        Some(paper::IMPRINT_ACCEL_70K_S),
                    ),
                    _ => (None, None),
                };
                let k = n / 1000;
                row(
                    md,
                    "§V timing",
                    &format!("baseline imprint @{k}K (s)"),
                    pb.map_or_else(|| "—".into(), |p| format!("{p}")),
                    format!("{base:.0}"),
                );
                row(
                    md,
                    "§V timing",
                    &format!("accelerated imprint @{k}K (s)"),
                    pa.map_or_else(|| "—".into(), |p| format!("{p}")),
                    format!("{accel:.0}"),
                );
            }
            row(
                md,
                "§V timing",
                "extract with replicas (ms)",
                format!("{} (incl. host I/O)", paper::EXTRACT_MS),
                format!("{:.0} (on-chip only)", t1.extract_s * 1000.0),
            );
            Ok(())
        },
    );

    // Ablations.
    step(&mut outcomes, &mut md, "ecc_ablation", 3, |md| {
        let ecc = ecc_ablation(&runner(0xECC), 50.0, Micros::new(30.0))?;
        write_json_in(dir, "ecc_ablation", &ecc)?;
        for (name, bits, ber, _) in &ecc.rows {
            row(
                md,
                "ablation",
                &format!("{name} post-decode BER ({bits} cells) (%)"),
                "—".into(),
                format!("{:.2}", ber * 100.0),
            );
        }
        Ok(())
    });

    let read_counts: Vec<usize> = if smoke { vec![1, 3] } else { vec![1, 3, 5] };
    step(
        &mut outcomes,
        &mut md,
        "read_majority",
        read_counts.len(),
        |md| {
            let sweep = if smoke {
                SweepSpec::new(Micros::new(24.0), Micros::new(44.0), Micros::new(10.0))?
            } else {
                SweepSpec::new(Micros::new(24.0), Micros::new(44.0), Micros::new(2.0))?
            };
            let rm = read_majority_ablation(&runner(0xECC2), 40.0, &sweep, &read_counts)?;
            write_json_in(dir, "read_majority", &rm)?;
            for &(n, ber) in &rm.rows {
                row(
                    md,
                    "ablation",
                    &format!("min BER @40K with N={n} reads (%)"),
                    "—".into(),
                    format!("{:.2}", ber * 100.0),
                );
            }
            Ok(())
        },
    );

    // Recycled probe.
    let prior: Vec<f64> = if smoke {
        vec![0.0, 30.0]
    } else {
        vec![0.0, 10.0, 20.0, 50.0, 100.0]
    };
    step(
        &mut outcomes,
        &mut md,
        "recycled_probe",
        prior.len(),
        |md| {
            let rp = recycled_probe(&runner(0xF1612), &prior)?;
            write_json_in(dir, "recycled_probe", &rp)?;
            for &(k, frac) in &rp.rows {
                row(
                    md,
                    "recycling",
                    &format!("programmed fraction after probe @{k}K prior use"),
                    "—".into(),
                    format!("{frac:.2}"),
                );
            }
            Ok(())
        },
    );

    // Family consistency: per-chip characterization is one trial per
    // sample chip (chip seeds are fixed, not trial-derived, so the family
    // is the same family at any thread count).
    let family_chips: u64 = if smoke { 2 } else { 4 };
    step(
        &mut outcomes,
        &mut md,
        "family_consistency",
        family_chips as usize,
        |md| {
            let seeds: Vec<u64> = (0..family_chips).map(|i| 0xFB01 + i * 7).collect();
            let (sweep, reads) = if smoke {
                (
                    SweepSpec::new(Micros::new(14.0), Micros::new(50.0), Micros::new(4.0))?,
                    1,
                )
            } else {
                (
                    SweepSpec::new(Micros::new(14.0), Micros::new(50.0), Micros::new(2.0))?,
                    3,
                )
            };
            let windows = runner(0xFB01).run(seeds.len(), |trial| {
                let mut chip = FlashController::new(
                    PhysicsParams::msp430_like(),
                    FlashGeometry::single_bank(4),
                    FlashTimings::msp430(),
                    seeds[trial.index],
                );
                chip.trace_mut().set_capacity(0);
                characterize_sample(
                    &mut chip,
                    SegmentAddr::new(0),
                    SegmentAddr::new(1),
                    50.0,
                    &sweep,
                    260,
                    reads,
                )
            });
            let windows = windows.into_iter().collect::<Result<Vec<_>, _>>()?;
            let fam = fuse_windows(windows, 50.0, 7, reads)?;
            let summary = FamilySummary {
                per_chip: seeds
                    .iter()
                    .zip(&fam.per_chip)
                    .map(|(&s, w)| {
                        (
                            s,
                            w.t_pew.get(),
                            w.separation(),
                            w.window_lo.get(),
                            w.window_hi.get(),
                        )
                    })
                    .collect(),
                recipe_t_pew_us: fam.recipe.t_pew.get(),
                recipe_window: (fam.recipe.window_lo.get(), fam.recipe.window_hi.get()),
                optimum_spread_us: fam.optimum_spread().get(),
            };
            write_json_in(dir, "family_consistency", &summary)?;
            row(
                md,
                "family",
                "per-chip optimum spread (µs)",
                "consistent across samples".into(),
                format!(
                    "{:.0} (recipe tPEW {:.0} µs)",
                    fam.optimum_spread().get(),
                    fam.recipe.t_pew.get()
                ),
            );
            Ok(())
        },
    );

    // Flashmark on NAND (conclusion's applicability claim).
    step(&mut outcomes, &mut md, "nand", 1, |md| {
        let cfg = FlashmarkConfig::builder()
            .n_pe(70_000)
            .replicas(7)
            .t_pew(Micros::new(28.0))
            .build()?;
        let mut nand = NandWordAdapter::new(NandChip::new(NandGeometry::tiny(), 0x0A1));
        let wm = Watermark::from_ascii("NAND-TOO")?;
        let rep = Imprinter::new(&cfg).imprint(&mut nand, SegmentAddr::new(0), &wm)?;
        let e = Extractor::new(&cfg).extract(&mut nand, SegmentAddr::new(0), wm.len())?;
        row(
            md,
            "NAND",
            "imprint @70K (s) / post-vote BER (%)",
            "applicable to NAND (conclusion)".into(),
            format!(
                "{:.0} s / {:.2} %",
                rep.elapsed.get(),
                e.ber_against(&wm) * 100.0
            ),
        );
        Ok(())
    });

    // Trend-record ingredients the later steps capture: the fault
    // campaign's flip count, the obs campaign's op count, and the service
    // campaign's deterministic summary.
    let mut fault_flips: Option<u64> = None;
    let mut obs_ops: Option<u64> = None;
    let mut service_data: Option<crate::service_campaign::ServiceCampaignData> = None;

    // Differential fault-injection campaign (seed 42 matches the
    // `fault_campaign` bin default, so the committed artifact and the
    // suite's agree).
    step(
        &mut outcomes,
        &mut md,
        "fault_campaign",
        fault_campaign_trials(opts.profile),
        |md| {
            let fc = fault_campaign(&runner(42), opts.profile)?;
            fault_flips = Some(fc.reject_to_accept_total as u64);
            write_json_in(dir, "fault_campaign", &fc)?;
            row(
                md,
                "fault injection",
                "reject→accept flips across fault grid",
                "0 (invariant)".into(),
                format!("{}", fc.reject_to_accept_total),
            );
            row(
                md,
                "fault injection",
                "wear decreases under injected faults",
                "0 (invariant)".into(),
                format!("{}", fc.wear_decrease_total),
            );
            if !fc.invariants_hold() {
                return Err("fault campaign invariant violated".into());
            }
            Ok(())
        },
    );

    // Observability: the same fault grid, instrumented. The deterministic
    // aggregate goes to obs_report.json (covered by the determinism test);
    // the step's wall clock is quarantined into obs_timings.json, the one
    // JSON artifact the test skips.
    step(
        &mut outcomes,
        &mut md,
        "obs_report",
        obs_campaign_trials(opts.profile),
        |md| {
            let t0 = Instant::now();
            let data = obs_campaign(&runner(42), opts.profile)?;
            let wall_s = t0.elapsed().as_secs_f64();
            obs_ops = Some(data.total_ops);
            write_json_in(dir, "obs_report", &data)?;
            let timings = ObsTimings {
                wall_s,
                threads: opts.threads,
                trials: data.trials,
            };
            write_json_in(dir, "obs_timings", &timings)?;
            row(
                md,
                "observability",
                "events traced across fault campaign",
                "—".into(),
                format!("{} ({} trials)", data.total_ops, data.trials),
            );
            row(
                md,
                "observability",
                "fault firings / sanitizer violations",
                "—".into(),
                format!(
                    "{} / {}",
                    data.group_total("fault"),
                    data.group_total("sanitizer")
                ),
            );
            row(
                md,
                "observability",
                "verdicts genuine : counterfeit : inconclusive",
                "—".into(),
                format!(
                    "{} : {} : {}",
                    data.counter("verdict", "genuine"),
                    data.counter("verdict", "counterfeit"),
                    data.counter("verdict", "inconclusive"),
                ),
            );
            row(
                md,
                "observability",
                "events dropped by trial ring buffers",
                "0".into(),
                format!("{}", data.events_dropped),
            );
            Ok(())
        },
    );

    // Verification-service campaign. The deterministic summary goes to
    // service_campaign_smoke.json (the CI `service-smoke` diff target —
    // the Full profile writes the same 10 k-request shape the
    // `service_campaign --smoke` bin produces); wall clock is quarantined
    // into service_timings.json like obs_timings.json. The committed
    // million-request service_campaign.json comes from the bin's default
    // run, not the suite.
    let svc_opts = if smoke {
        crate::service_campaign::ServiceCampaignOptions::tiny(opts.threads)
    } else {
        crate::service_campaign::ServiceCampaignOptions::smoke(opts.threads)
    };
    step(
        &mut outcomes,
        &mut md,
        "service_campaign_smoke",
        svc_opts.requests as usize,
        |md| {
            let t0 = Instant::now();
            let run = crate::service_campaign::run_service_campaign(&svc_opts, |_| {})?;
            let wall_s = t0.elapsed().as_secs_f64();
            let data = run.data;
            write_json_in(dir, "service_campaign_smoke", &data)?;
            fs::write(dir.join("service_metrics_smoke.prom"), &run.exposition)?;
            let timings = crate::service_campaign::ServiceTimings {
                threads: opts.threads,
                requests: data.requests,
                wall_s,
                requests_per_s: data.requests as f64 / wall_s.max(1e-9),
            };
            write_json_in(dir, "service_timings", &timings)?;
            let accepts: u64 = data
                .verdict_mix
                .iter()
                .filter(|r| r.verdict == "accept")
                .map(|r| r.count)
                .sum();
            row(
                md,
                "service",
                "requests verified / accepted",
                "—".into(),
                format!("{} / {accepts}", data.requests),
            );
            row(
                md,
                "service",
                "registry root (records / seals)",
                "—".into(),
                format!(
                    "{} ({} / {})",
                    data.registry_root, data.registry_records, data.registry_seals
                ),
            );
            if data.duplicates != 0 {
                return Err("service campaign saw duplicate request ids".into());
            }
            service_data = Some(data);
            Ok(())
        },
    );

    // Differential backend campaign: the same scenario grid through every
    // `WatermarkScheme` backend (NOR tPEW / NAND PUF / ReRAM forming).
    // The deterministic summary goes to backend_campaign_smoke.json (the
    // CI `backend-smoke` diff target — the Full profile writes the same
    // shape the `backend_campaign --smoke` bin produces); the committed
    // full-size backend_campaign.json and the per-scheme trend records
    // come from the bin's default run, not the suite.
    let be_opts = if smoke {
        crate::backend_campaign::BackendCampaignOptions::tiny(opts.threads)
    } else {
        crate::backend_campaign::BackendCampaignOptions::smoke(opts.threads)
    };
    let be_trials = be_opts.trials
        * crate::backend_campaign::Scenario::ALL.len()
        * crate::backend_campaign::BACKEND_SCHEMES.len();
    step(
        &mut outcomes,
        &mut md,
        "backend_campaign_smoke",
        be_trials,
        |md| {
            let data = crate::backend_campaign::run_backend_campaign(&be_opts)?;
            write_json_in(dir, "backend_campaign_smoke", &data)?;
            for s in &data.schemes {
                row(
                    md,
                    "backends",
                    &format!("{} ground-truth verdicts", s.scheme),
                    "all scenarios".into(),
                    format!("{}/{}", s.expected_matches, s.trials),
                );
                row(
                    md,
                    "backends",
                    &format!("{} forgery margin (mismatch)", s.scheme),
                    "counterfeit ≫ genuine".into(),
                    format!(
                        "{:.3} − {:.3} = {:.3}",
                        s.mean_counterfeit_mismatch, s.mean_genuine_mismatch, s.forgery_margin
                    ),
                );
                row(
                    md,
                    "backends",
                    &format!("{} imprint cost", s.scheme),
                    if s.imprints {
                        "wear-based".into()
                    } else {
                        "free (intrinsic)".into()
                    },
                    format!("{} cycles / {:.0} s", s.imprint_cycles, s.imprint_sim_s),
                );
            }
            if let Some(nor) = data.schemes.iter().find(|s| s.scheme == "nor_tpew") {
                row(
                    md,
                    "backends",
                    "NOR scheme facade vs legacy pipeline agreement",
                    "identical verdicts".into(),
                    format!("{}/{}", nor.legacy_matches.unwrap_or(0), nor.trials),
                );
            }
            for s in &data.schemes {
                if s.expected_matches != s.trials {
                    return Err(format!(
                        "{}: a scenario missed its ground-truth verdict",
                        s.scheme
                    )
                    .into());
                }
            }
            Ok(())
        },
    );

    // Supply-chain scenario.
    step(&mut outcomes, &mut md, "scenario", 1, |md| {
        let stats = SupplyChainScenario::new(ScenarioConfig::small(0x5CA1E)).run()?;
        row(
            md,
            "scenario",
            "counterfeit detection rate (%)",
            "100 (design goal)".into(),
            format!("{:.0}", stats.detection_rate() * 100.0),
        );
        row(
            md,
            "scenario",
            "genuine false-positive rate (%)",
            "0 (design goal)".into(),
            format!("{:.0}", stats.false_positive_rate() * 100.0),
        );
        Ok(())
    });

    // Per-experiment wall times. These are environment-dependent and
    // deliberately confined to the Markdown report — the JSON artifacts
    // stay bit-identical across thread counts and machines.
    md.push_str("\n## Runtime\n\n");
    let _ = writeln!(
        md,
        "{} worker thread(s), {:?} profile.\n",
        opts.threads, opts.profile
    );
    md.push_str("| experiment | trials | wall (s) | status |\n|---|---|---|---|\n");
    for o in &outcomes {
        let _ = writeln!(
            md,
            "| {} | {} | {:.2} | {} |",
            o.name,
            o.trials,
            o.wall_s,
            o.error.as_deref().unwrap_or("ok"),
        );
    }

    // The committed parameter record (deterministic: written on every
    // profile so the artifact can never go stale against the code).
    write_json_in(dir, "physics_params", &params_report())?;

    // Append this run to the cross-run trend log and regenerate the drift
    // report. Deterministic inputs only (verdict mix, flips, op counts),
    // so the appended line — and the report — are byte-identical at any
    // thread count. Skipped when the service step failed: a partial
    // record would start a non-comparable trend group.
    if let Some(svc) = &service_data {
        let report = append_and_report(dir, suite_record(svc, fault_flips, obs_ops))?;
        let _ = writeln!(
            md,
            "\n## Trend\n\n{} run(s) on record; drift gates {} \
             ({} failure(s), {} warning(s)).",
            report.records,
            if report.passed() { "passed" } else { "FAILED" },
            report.failures.len(),
            report.warnings.len()
        );
    }

    // The runtime baseline: kernel micro-benchmarks plus per-experiment
    // wall times. Smoke runs skip it so reduced-profile artifacts never
    // overwrite the committed baseline.
    if opts.profile == Profile::Full {
        // flashmark-lint: allow(print-discipline) -- progress ticker on stderr; artifacts stay deterministic on stdout/disk
        eprintln!("[  ] kernel micro-benchmarks ...");
        let mut rt = kernel_suite();
        for o in &outcomes {
            rt.push(&format!("experiment/{}", o.name), o.wall_s, o.trials.max(1));
        }
        rt.write(&dir.join("BENCH_runtime.json"))?;
    }

    fs::write(dir.join("experiments_report.md"), &md)?;
    Ok(SuiteReport {
        outcomes,
        markdown: md,
    })
}
