//! Differential fault-injection campaign: golden vs faulted verification
//! over a grid of fault classes and rates.
//!
//! Every trial manufactures the *same* chip twice (same seed): once
//! verified fault-free (the golden run), once verified through a
//! `FaultyFlash<SanitizedFlash<FlashController>>` stack injecting one fault
//! class from the grid. The campaign reports, per (scenario × fault class)
//! cell, how verdicts moved and how far the extracted bits drifted
//! (BER vs the golden extraction) — and enforces the two invariants the
//! fault layer is built around:
//!
//! * **no fault schedule may ever flip a reject into an accept** — faults
//!   can cost a conclusive verdict, never hand out a false Genuine;
//! * **wear stays monotone under every injected fault** — the sanitizer's
//!   wear probe runs inside the faulted stack and must never record a
//!   [`ViolationKind::WearDecrease`].
//!
//! Everything is a pure function of `(campaign seed, trial index)`, so the
//! artifact is byte-identical at any `--threads` count.

use flashmark_core::{
    CoreError, FlashmarkConfig, Imprinter, TestStatus, Verdict, VerificationReport, Verifier,
    WatermarkRecord,
};
use flashmark_fault::{FaultPlan, FaultyFlash};
use flashmark_nor::{FlashController, SegmentAddr};
use flashmark_par::TrialRunner;
use flashmark_physics::rng::mix2;
use flashmark_physics::Micros;
use flashmark_sanitizer::{SanitizedFlash, ViolationKind};

use crate::harness::test_chip;
use crate::impl_to_json;
use crate::suite::Profile;

const N_PE: u64 = 80_000;
const REPLICAS: usize = 7;
const T_PEW_US: f64 = 28.0;
const SEG: SegmentAddr = SegmentAddr::new(0);

/// One fault class of the campaign grid: a named recipe for building a
/// [`FaultPlan`] at a given seed.
#[derive(Debug, Clone)]
pub struct FaultClass {
    /// Display name, e.g. `read_flips@1e-3`.
    pub name: &'static str,
    transients: Option<(f64, u32)>,
    power_loss: Option<(u64, f64)>,
    read_flips: Option<f64>,
    read_disturb: Option<f64>,
    jitter_us: Option<f64>,
}

impl FaultClass {
    const fn new(name: &'static str) -> Self {
        Self {
            name,
            transients: None,
            power_loss: None,
            read_flips: None,
            read_disturb: None,
            jitter_us: None,
        }
    }

    /// The class's concrete plan at `seed`.
    #[must_use]
    pub fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        if let Some((rate, burst)) = self.transients {
            plan = plan.with_transients(rate, burst);
        }
        if let Some((op, fraction)) = self.power_loss {
            plan = plan.with_power_loss(op, fraction);
        }
        if let Some(rate) = self.read_flips {
            plan = plan.with_read_flips(rate);
        }
        if let Some(rate) = self.read_disturb {
            plan = plan.with_read_disturb(rate);
        }
        if let Some(sigma) = self.jitter_us {
            plan = plan.with_t_pew_jitter(sigma);
        }
        plan
    }
}

/// The fault grid of a profile. The `Smoke` grid keeps one representative
/// rate per class; `Full` sweeps each class over its rate range.
#[must_use]
pub fn fault_grid(profile: Profile) -> Vec<FaultClass> {
    let mut classes = Vec::new();
    let full = profile == Profile::Full;
    let transient = |name, rate| FaultClass {
        transients: Some((rate, 2)),
        ..FaultClass::new(name)
    };
    let power = |name, op, fraction| FaultClass {
        power_loss: Some((op, fraction)),
        ..FaultClass::new(name)
    };
    let flips = |name, rate| FaultClass {
        read_flips: Some(rate),
        ..FaultClass::new(name)
    };
    let disturb = |name, rate| FaultClass {
        read_disturb: Some(rate),
        ..FaultClass::new(name)
    };
    let jitter = |name, sigma| FaultClass {
        jitter_us: Some(sigma),
        ..FaultClass::new(name)
    };
    if full {
        classes.push(transient("transient@0.05", 0.05));
    }
    classes.push(transient("transient@0.2", 0.2));
    if full {
        classes.push(power("power_loss@op0", 0, 0.5));
    }
    classes.push(power("power_loss@op2", 2, 0.5));
    if full {
        classes.push(power("power_loss@op7", 7, 0.5));
        classes.push(flips("read_flips@1e-4", 1e-4));
    }
    classes.push(flips("read_flips@1e-3", 1e-3));
    if full {
        classes.push(flips("read_flips@1e-2", 1e-2));
        classes.push(disturb("read_disturb@1e-5", 1e-5));
    }
    classes.push(disturb("read_disturb@1e-4", 1e-4));
    if full {
        classes.push(jitter("jitter@1us", 1.0));
        classes.push(jitter("jitter@3us", 3.0));
    } else {
        classes.push(jitter("jitter@2us", 2.0));
    }
    classes.push(FaultClass {
        transients: Some((0.1, 2)),
        power_loss: Some((5, 0.5)),
        read_flips: Some(1e-3),
        read_disturb: Some(1e-5),
        jitter_us: Some(1.0),
        ..FaultClass::new("combined")
    });
    classes
}

/// Chip population the campaign verifies against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Scenario {
    /// Imprinted ACCEPT die: the genuine population.
    Accept,
    /// Imprinted REJECT die: must never verify Genuine, faults or not.
    Reject,
    /// No watermark at all (counterfeit blank): same invariant.
    Blank,
}

pub(crate) const SCENARIOS: [Scenario; 3] = [Scenario::Accept, Scenario::Reject, Scenario::Blank];

impl Scenario {
    pub(crate) const fn name(self) -> &'static str {
        match self {
            Self::Accept => "accept",
            Self::Reject => "reject",
            Self::Blank => "blank",
        }
    }
}

/// Independent trials of a profile's campaign (for suite bookkeeping).
#[must_use]
pub fn fault_campaign_trials(profile: Profile) -> usize {
    fault_grid(profile).len() * SCENARIOS.len() * trials_per_cell(profile)
}

pub(crate) const fn trials_per_cell(profile: Profile) -> usize {
    match profile {
        Profile::Full => 4,
        Profile::Smoke => 2,
    }
}

/// One (scenario × fault class) cell of the campaign result.
#[derive(Debug, Clone)]
pub struct FaultCampaignRow {
    /// Scenario name (`accept` / `reject` / `blank`).
    pub scenario: &'static str,
    /// Fault class name from [`fault_grid`].
    pub fault_class: &'static str,
    /// Trials in this cell.
    pub trials: usize,
    /// Golden runs that verified Genuine.
    pub golden_genuine: usize,
    /// Faulted runs that verified Genuine.
    pub faulted_genuine: usize,
    /// Faulted Genuine where the golden verdict was not — MUST stay 0.
    pub reject_to_accept: usize,
    /// Golden Genuine lost to a Counterfeit verdict under faults.
    pub accept_to_reject: usize,
    /// Faulted runs that degraded to Inconclusive.
    pub inconclusive: usize,
    /// Fault events the plans actually injected across the cell.
    pub injected_events: usize,
    /// Sanitizer wear-decrease violations — MUST stay 0.
    pub wear_decreases: usize,
    /// Mean BER of faulted vs golden extracted bits (absent when no
    /// faulted run produced comparable bits).
    pub mean_ber_vs_golden: Option<f64>,
}
impl_to_json!(FaultCampaignRow {
    scenario,
    fault_class,
    trials,
    golden_genuine,
    faulted_genuine,
    reject_to_accept,
    accept_to_reject,
    inconclusive,
    injected_events,
    wear_decreases,
    mean_ber_vs_golden
});

/// The `results/fault_campaign.json` artifact.
#[derive(Debug, Clone)]
pub struct FaultCampaignData {
    /// Campaign seed all trial seeds derive from.
    pub seed: u64,
    /// Profile name (`full` / `smoke`).
    pub profile: &'static str,
    /// Imprint cycles.
    pub n_pe: u64,
    /// Watermark replicas.
    pub replicas: usize,
    /// Verification partial-erase time (µs).
    pub t_pew_us: f64,
    /// Trials per (scenario × fault class) cell.
    pub trials_per_cell: usize,
    /// One row per cell, scenario-major then grid order.
    pub rows: Vec<FaultCampaignRow>,
    /// Σ `reject_to_accept` — the campaign gate; MUST be 0.
    pub reject_to_accept_total: usize,
    /// Σ `wear_decreases` — the wear-monotonicity gate; MUST be 0.
    pub wear_decrease_total: usize,
}
impl_to_json!(FaultCampaignData {
    seed,
    profile,
    n_pe,
    replicas,
    t_pew_us,
    trials_per_cell,
    rows,
    reject_to_accept_total,
    wear_decrease_total
});

impl FaultCampaignData {
    /// Whether both campaign invariants held.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.reject_to_accept_total == 0 && self.wear_decrease_total == 0
    }
}

/// One trial's differential outcome.
#[derive(Debug, Clone)]
pub(crate) struct TrialOutcome {
    golden_genuine: bool,
    faulted_genuine: bool,
    faulted_inconclusive: bool,
    injected: usize,
    wear_decreases: usize,
    ber: Option<f64>,
}

fn config() -> Result<FlashmarkConfig, CoreError> {
    FlashmarkConfig::builder()
        .n_pe(N_PE)
        .replicas(REPLICAS)
        .t_pew(Micros::new(T_PEW_US))
        .build()
}

fn scenario_chip(seed: u64, scenario: Scenario) -> Result<FlashController, CoreError> {
    let mut chip = test_chip(seed);
    let status = match scenario {
        Scenario::Accept => TestStatus::Accept,
        Scenario::Reject => TestStatus::Reject,
        Scenario::Blank => return Ok(chip),
    };
    let record = WatermarkRecord {
        manufacturer_id: 0x7C01,
        die_id: 42,
        speed_grade: 2,
        status,
        year_week: 2004,
    };
    Imprinter::new(&config()?).imprint(&mut chip, SEG, &record.to_watermark())?;
    Ok(chip)
}

fn ber_between(golden: &VerificationReport, faulted: &VerificationReport) -> Option<f64> {
    let (a, b) = (golden.extraction.bits(), faulted.extraction.bits());
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let errors = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    Some(errors as f64 / a.len() as f64)
}

pub(crate) fn run_trial(
    trial_seed: u64,
    scenario: Scenario,
    class: &FaultClass,
) -> Result<TrialOutcome, CoreError> {
    let cfg = config()?;
    let verifier = Verifier::new(cfg, 0x7C01);

    // Golden run: the exact chip, fault-free.
    let mut golden_chip = scenario_chip(trial_seed, scenario)?;
    let golden = verifier.verify_resilient(&mut golden_chip, SEG)?;

    // Faulted run: the same chip (same seed), behind the sanitized + faulty
    // stack. The plan seed folds in a salt so the fault stream is
    // decorrelated from the chip's own process variation.
    let chip = scenario_chip(trial_seed, scenario)?;
    let sanitized = SanitizedFlash::wrap_controller(chip);
    let mut faulty = FaultyFlash::new(sanitized, class.plan(mix2(trial_seed, 0xFA17)));
    let faulted = verifier.verify_resilient(&mut faulty, SEG)?;

    let injected = faulty.injected();
    let wear_decreases = faulty
        .inner()
        .violations()
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::WearDecrease { .. }))
        .count();

    Ok(TrialOutcome {
        golden_genuine: golden.verdict == Verdict::Genuine,
        faulted_genuine: faulted.verdict == Verdict::Genuine,
        faulted_inconclusive: matches!(faulted.verdict, Verdict::Inconclusive(_)),
        injected,
        wear_decreases,
        ber: ber_between(&golden, &faulted),
    })
}

/// Runs the campaign: `fault_campaign_trials(profile)` independent trials,
/// fanned out over the runner, aggregated in trial order.
///
/// # Errors
///
/// Configuration or flash errors from any trial.
pub fn fault_campaign(
    runner: &TrialRunner,
    profile: Profile,
) -> Result<FaultCampaignData, CoreError> {
    let grid = fault_grid(profile);
    let reps = trials_per_cell(profile);
    let cells = SCENARIOS.len() * grid.len();

    let outcomes = runner.run(cells * reps, |trial| {
        let cell = trial.index / reps;
        let scenario = SCENARIOS[cell / grid.len()];
        let class = &grid[cell % grid.len()];
        run_trial(trial.seed, scenario, class)
    });
    let outcomes = outcomes.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rows = Vec::with_capacity(cells);
    for (cell, chunk) in outcomes.chunks(reps).enumerate() {
        let scenario = SCENARIOS[cell / grid.len()];
        let class = &grid[cell % grid.len()];
        let bers: Vec<f64> = chunk.iter().filter_map(|o| o.ber).collect();
        rows.push(FaultCampaignRow {
            scenario: scenario.name(),
            fault_class: class.name,
            trials: chunk.len(),
            golden_genuine: chunk.iter().filter(|o| o.golden_genuine).count(),
            faulted_genuine: chunk.iter().filter(|o| o.faulted_genuine).count(),
            reject_to_accept: chunk
                .iter()
                .filter(|o| !o.golden_genuine && o.faulted_genuine)
                .count(),
            accept_to_reject: chunk
                .iter()
                .filter(|o| o.golden_genuine && !o.faulted_genuine && !o.faulted_inconclusive)
                .count(),
            inconclusive: chunk.iter().filter(|o| o.faulted_inconclusive).count(),
            injected_events: chunk.iter().map(|o| o.injected).sum(),
            wear_decreases: chunk.iter().map(|o| o.wear_decreases).sum(),
            mean_ber_vs_golden: if bers.is_empty() {
                None
            } else {
                Some(bers.iter().sum::<f64>() / bers.len() as f64)
            },
        });
    }

    let reject_to_accept_total = rows.iter().map(|r| r.reject_to_accept).sum();
    let wear_decrease_total = rows.iter().map(|r| r.wear_decreases).sum();
    Ok(FaultCampaignData {
        seed: runner.experiment_seed(),
        profile: match profile {
            Profile::Full => "full",
            Profile::Smoke => "smoke",
        },
        n_pe: N_PE,
        replicas: REPLICAS,
        t_pew_us: T_PEW_US,
        trials_per_cell: reps,
        rows,
        reject_to_accept_total,
        wear_decrease_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_every_fault_class_in_both_profiles() {
        for profile in [Profile::Full, Profile::Smoke] {
            let grid = fault_grid(profile);
            assert!(grid.iter().any(|c| c.transients.is_some()));
            assert!(grid.iter().any(|c| c.power_loss.is_some()));
            assert!(grid.iter().any(|c| c.read_flips.is_some()));
            assert!(grid.iter().any(|c| c.read_disturb.is_some()));
            assert!(grid.iter().any(|c| c.jitter_us.is_some()));
            assert!(grid.iter().any(|c| c.name == "combined"));
        }
        assert!(fault_grid(Profile::Full).len() > fault_grid(Profile::Smoke).len());
    }

    #[test]
    fn smoke_campaign_upholds_the_invariants_at_any_thread_count() {
        let serial = fault_campaign(&TrialRunner::with_threads(42, 1), Profile::Smoke).unwrap();
        assert!(
            serial.invariants_hold(),
            "reject→accept flip or wear decrease"
        );
        assert_eq!(serial.rows.len(), fault_grid(Profile::Smoke).len() * 3);
        // The genuine population survives faults: a decent fraction of
        // accept-scenario faulted runs still verify (the rest degrade to
        // Inconclusive, never to a silent wrong answer).
        let accept_faulted: usize = serial
            .rows
            .iter()
            .filter(|r| r.scenario == "accept")
            .map(|r| r.faulted_genuine + r.inconclusive)
            .sum();
        assert!(accept_faulted > 0);

        let parallel = fault_campaign(&TrialRunner::with_threads(42, 8), Profile::Smoke).unwrap();
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "campaign must be byte-identical across thread counts"
        );
    }
}
