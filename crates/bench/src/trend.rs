//! Bench-side wiring for the cross-run trend registry.
//!
//! Every campaign entry point appends one [`TrendRecord`] to
//! `results/trend_log.jsonl` and regenerates `results/trend_report.json`
//! from the verified log:
//!
//! * the suite appends a `"suite"` record — service verdict mix,
//!   fault-campaign flip count, obs op count (deterministic: no perf);
//! * the `service_campaign` bin appends a `"service"` record for the
//!   standalone campaign it ran;
//! * `perf_smoke` appends a `"perf"` record carrying the kernel
//!   throughputs (wall-clock-bearing, so drift on it only ever warns);
//! * the `backend_campaign` bin appends one `"backend"` record **per
//!   scheme** (NOR tPEW / NAND PUF / ReRAM forming), so detection drift
//!   gates each technology backend independently.
//!
//! The `trend_check` bin re-verifies the chained log, recomputes the
//! drift report, and fails CI on any detection-rate drift.

use std::io;
use std::path::Path;

use flashmark_registry::Digest64;
use flashmark_trend::{
    append_to_log, compute_drift, DriftOptions, DriftReport, TrendLog, TrendRecord,
    TREND_FORMAT_VERSION,
};

use crate::backend_campaign::{BackendCampaignData, BackendSchemeSummary};
use crate::impl_to_json;
use crate::microbench::RuntimeReport;
use crate::output::write_json_in;
use crate::service_campaign::ServiceCampaignData;

/// File name of the append-only trend log inside a results directory.
pub const TREND_LOG_NAME: &str = "trend_log.jsonl";

/// Artifact stem of the drift report (written as `trend_report.json`).
pub const TREND_REPORT_NAME: &str = "trend_report";

/// Build tag stamped into every record this crate appends.
pub const TREND_BUILD_TAG: &str = concat!("flashmark-bench/", env!("CARGO_PKG_VERSION"));

/// The params digest of a service campaign: recipe params plus the
/// campaign shape, so differently-sized runs (smoke vs full vs the
/// suite's tiny profile) land in separate, non-comparable trend groups.
#[must_use]
pub fn campaign_params_digest(data: &ServiceCampaignData) -> Digest64 {
    Digest64::of(
        format!(
            "{}|requests={}|batch={}|probe={}",
            data.params, data.requests, data.batch, data.probe_modulus
        )
        .as_bytes(),
    )
}

/// Copies a campaign's per-class verdict mix into `record`.
fn fold_verdict_mix(record: &mut TrendRecord, data: &ServiceCampaignData) {
    for row in &data.verdict_mix {
        record
            .verdict_mix
            .insert((row.class.clone(), row.verdict.to_string()), row.count);
    }
}

/// The `"service"` record of a standalone service campaign.
#[must_use]
pub fn service_record(data: &ServiceCampaignData) -> TrendRecord {
    let mut record = TrendRecord::new(
        "service",
        TREND_BUILD_TAG,
        data.seed,
        campaign_params_digest(data),
    );
    fold_verdict_mix(&mut record, data);
    record
}

/// The `"suite"` record of a full or smoke suite run: the service
/// campaign's verdict mix plus the fault-campaign flip count and obs op
/// count captured by the other suite steps (absent when a step failed).
#[must_use]
pub fn suite_record(
    data: &ServiceCampaignData,
    fault_flips: Option<u64>,
    obs_ops: Option<u64>,
) -> TrendRecord {
    let mut record = TrendRecord::new(
        "suite",
        TREND_BUILD_TAG,
        data.seed,
        campaign_params_digest(data),
    );
    fold_verdict_mix(&mut record, data);
    record.flips = fault_flips;
    record.ops = obs_ops;
    record
}

/// The params digest of one scheme's slice of a backend campaign: the
/// shared operating point plus the campaign shape and the scheme name, so
/// every scheme (and every campaign size) lands in its own drift group.
#[must_use]
pub fn backend_params_digest(data: &BackendCampaignData, scheme: &str) -> Digest64 {
    Digest64::of(
        format!(
            "backend|{scheme}|trials={}|scenarios={}",
            data.trials_per_scenario,
            data.scenarios.len()
        )
        .as_bytes(),
    )
}

/// The `"backend"` record of one scheme's slice of a differential backend
/// campaign: the per-scenario verdict mix, one record per scheme so
/// `trend_check` gates detection drift per backend independently.
#[must_use]
pub fn backend_trend_record(
    data: &BackendCampaignData,
    summary: &BackendSchemeSummary,
) -> TrendRecord {
    let mut record = TrendRecord::new(
        "backend",
        TREND_BUILD_TAG,
        data.seed,
        backend_params_digest(data, &summary.scheme),
    );
    for mix in &summary.verdict_mix {
        *record
            .verdict_mix
            .entry((mix.scenario.clone(), mix.verdict.clone()))
            .or_insert(0) += mix.count;
    }
    record
}

/// The `"perf"` record of a kernel micro-benchmark run: every `kernel/*`
/// throughput, keyed by kernel name. Wall-clock-bearing by design — the
/// drift gate only ever *warns* on perf movement.
#[must_use]
pub fn perf_record(report: &RuntimeReport) -> TrendRecord {
    let mut record = TrendRecord::new("perf", TREND_BUILD_TAG, 0, Digest64::of(b"kernel_suite"));
    for e in &report.entries {
        if e.name.starts_with("kernel/") {
            record.perf.insert(e.name.clone(), e.trials_per_s);
        }
    }
    record
}

/// One drift-gate group in the `trend_report.json` artifact.
#[derive(Debug, Clone)]
pub struct DriftCheckRow {
    /// Campaign kind.
    pub kind: String,
    /// Params digest (hex) of the group.
    pub params: String,
    /// Campaign seed of the group.
    pub seed: u64,
    /// Comparable runs in the group.
    pub runs: u64,
}
impl_to_json!(DriftCheckRow {
    kind,
    params,
    seed,
    runs
});

/// The `trend_report.json` artifact: the drift gates evaluated over the
/// verified trend log.
#[derive(Debug, Clone)]
pub struct TrendReportData {
    /// Trend-log format version the report was computed against.
    pub format: u32,
    /// Records in the log.
    pub records: u64,
    /// Whether every detection gate held (warnings never gate).
    pub passed: bool,
    /// Detection-drift failures.
    pub failures: Vec<String>,
    /// Advisory perf-drift warnings.
    pub warnings: Vec<String>,
    /// The groups that were evaluated.
    pub checks: Vec<DriftCheckRow>,
}
impl_to_json!(TrendReportData {
    format,
    records,
    passed,
    failures,
    warnings,
    checks
});

/// Renders a [`DriftReport`] into the artifact struct.
#[must_use]
pub fn report_data(report: &DriftReport) -> TrendReportData {
    TrendReportData {
        format: TREND_FORMAT_VERSION,
        records: report.records,
        passed: report.passed(),
        failures: report.failures.clone(),
        warnings: report.warnings.clone(),
        checks: report
            .checks
            .iter()
            .map(|c| DriftCheckRow {
                kind: c.kind.clone(),
                params: c.params.clone(),
                seed: c.seed,
                runs: c.runs,
            })
            .collect(),
    }
}

/// Appends `record` to `<dir>/trend_log.jsonl` (verifying the existing
/// chain first), recomputes the drift report over the extended log, and
/// rewrites `<dir>/trend_report.json`.
///
/// # Errors
///
/// I/O errors, or `InvalidData` when the existing log fails chain
/// verification — a corrupt log is never extended.
pub fn append_and_report(dir: &Path, record: TrendRecord) -> io::Result<DriftReport> {
    let log_path = dir.join(TREND_LOG_NAME);
    append_to_log(&log_path, record)?;
    let log = TrendLog::load(&log_path)?;
    let report = compute_drift(&log, &DriftOptions::default());
    write_json_in(dir, TREND_REPORT_NAME, &report_data(&report))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service_campaign::{build_campaign_service, summarize, ServiceCampaignOptions};

    #[test]
    fn campaign_records_carry_mix_and_group_identity() {
        let opts = ServiceCampaignOptions::tiny(1);
        let service = build_campaign_service(opts.seed).expect("service");
        let data = summarize(&service, &opts, 0);
        let svc = service_record(&data);
        assert_eq!(svc.kind, "service");
        assert_eq!(svc.seed, opts.seed);
        assert_eq!(svc.params, campaign_params_digest(&data).to_hex());
        assert!(svc.perf.is_empty(), "deterministic kinds carry no perf");

        let suite = suite_record(&data, Some(0), Some(123));
        assert_eq!(suite.kind, "suite");
        assert_eq!((suite.flips, suite.ops), (Some(0), Some(123)));
        // Same campaign shape, different kind: separate drift groups.
        assert_eq!(suite.params, svc.params);
    }

    #[test]
    fn perf_records_keep_only_kernel_entries() {
        let mut rt = RuntimeReport::new();
        rt.push("kernel/read_segment", 0.5, 1_000);
        rt.push("experiment/fig04", 3.0, 2);
        let record = perf_record(&rt);
        assert_eq!(record.kind, "perf");
        assert_eq!(record.perf.len(), 1);
        assert!(record.perf.contains_key("kernel/read_segment"));
    }

    #[test]
    fn append_and_report_round_trips_on_disk() {
        let dir =
            std::env::temp_dir().join(format!("flashmark_bench_trend_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_file(dir.join(TREND_LOG_NAME)).ok();

        let opts = ServiceCampaignOptions::tiny(1);
        let service = build_campaign_service(opts.seed).expect("service");
        let data = summarize(&service, &opts, 0);
        let first = append_and_report(&dir, service_record(&data)).unwrap();
        let second = append_and_report(&dir, service_record(&data)).unwrap();
        assert_eq!(first.records, 1);
        assert_eq!(second.records, 2);
        assert!(second.passed(), "{:?}", second.failures);
        assert!(dir.join("trend_report.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
