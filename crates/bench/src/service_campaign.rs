//! Fleet-scale verification-service load campaign.
//!
//! Drives a deterministic stream of incoming-inspection requests — mixed
//! honest/recycled/cloned/forged populations, a fixed probe fraction —
//! through the channel front end of [`flashmark_serve::VerificationService`]
//! in batches, and summarizes the provenance registry the service
//! accumulates: verdict mix per provenance class, retry-ladder and
//! transient-retry histograms (backed by the per-request obs counters the
//! service harvests), and the registry's root digest.
//!
//! Every request is a pure function of `(campaign seed, request index)`,
//! shard processing re-merges in arrival order, and the summary carries no
//! wall-clock fields — so the artifact is byte-identical at any
//! `--threads` count. Throughput lives in the separate, quarantined
//! [`ServiceTimings`] artifact.

use flashmark_core::{CoreError, FlashmarkConfig};
use flashmark_physics::rng::mix2;
use flashmark_registry::RegistryOptions;
use flashmark_serve::{PopulationSpec, ServiceConfig, VerificationService, VerifyRequest};

use crate::impl_to_json;

/// Manufacturer ID the campaign verifier trusts.
pub const CAMPAIGN_MANUFACTURER: u16 = 0x7C01;

/// Requests per sealed registry segment in campaign runs.
pub const CAMPAIGN_SEAL_EVERY: u64 = 4096;

/// One in `PROBE_MODULUS` requests also runs the destructive
/// recycled-wear probe.
pub const PROBE_MODULUS: u64 = 4;

/// The campaign's extraction recipe: the paper's 60 K / 5-replica
/// operating point with single reads (the throughput-oriented corner the
/// incoming-inspection service runs at).
///
/// # Panics
///
/// Never — the knobs are statically valid.
#[must_use]
pub fn campaign_config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(60_000)
        .replicas(5)
        .reads(1)
        .build()
        .expect("valid campaign config")
}

/// Campaign shape.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCampaignOptions {
    /// Seed the population, probe sampling, and request stream derive from.
    pub seed: u64,
    /// Total verify requests.
    pub requests: u64,
    /// Requests submitted per channel batch.
    pub batch: u64,
    /// Worker threads for shard processing.
    pub threads: usize,
}

impl ServiceCampaignOptions {
    /// The committed million-request campaign (`results/service_campaign.json`).
    #[must_use]
    pub fn full(threads: usize) -> Self {
        Self {
            seed: 0x5E47,
            requests: 1_000_000,
            batch: 25_000,
            threads,
        }
    }

    /// The committed CI smoke campaign (`results/service_campaign_smoke.json`).
    #[must_use]
    pub fn smoke(threads: usize) -> Self {
        Self {
            seed: 0x5E47,
            requests: 10_000,
            batch: 2_500,
            threads,
        }
    }

    /// The reduced shape the Smoke suite profile and integration tests run.
    #[must_use]
    pub fn tiny(threads: usize) -> Self {
        Self {
            seed: 0x5E47,
            requests: 1_000,
            batch: 250,
            threads,
        }
    }
}

/// The deterministic request at stream position `i`: a uniform chip pick
/// plus a fixed probe fraction, both derived from `(seed, i)`.
#[must_use]
pub fn campaign_request(seed: u64, i: u64, population: u64) -> VerifyRequest {
    VerifyRequest {
        request_id: i,
        chip_id: mix2(seed ^ 0xC41F_0001, i) % population.max(1),
        probe: mix2(seed ^ 0x9B0B_0002, i).is_multiple_of(PROBE_MODULUS),
    }
}

/// Builds the campaign service: the mixed population enrolled under the
/// campaign recipe, recording into a bounded-memory (summary-form)
/// registry sealed every [`CAMPAIGN_SEAL_EVERY`] records.
///
/// # Errors
///
/// Imprint/flash errors from population manufacturing.
pub fn build_campaign_service(seed: u64) -> Result<VerificationService, CoreError> {
    let config = campaign_config();
    let population = PopulationSpec::campaign(seed).build(&config, CAMPAIGN_MANUFACTURER)?;
    let mut cfg = ServiceConfig::new(config, CAMPAIGN_MANUFACTURER, seed);
    cfg.registry = RegistryOptions {
        seal_every: CAMPAIGN_SEAL_EVERY,
        retain_records: false,
    };
    VerificationService::new(population, cfg)
}

/// One `(class, verdict)` cell of the campaign verdict mix.
#[derive(Debug, Clone)]
pub struct VerdictMixRow {
    /// Ground-truth provenance class.
    pub class: String,
    /// Registry verdict name (`accept` / `reject` / `inconclusive`).
    pub verdict: &'static str,
    /// Records in the cell.
    pub count: u64,
    /// Cell rate normalized per 10⁶ requests.
    pub per_million: f64,
}
impl_to_json!(VerdictMixRow {
    class,
    verdict,
    count,
    per_million
});

/// One bin of a per-request histogram (ladder depth or transient retries).
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Bin value (rungs walked, or retries spent).
    pub bin: u32,
    /// Requests in the bin.
    pub count: u64,
    /// Bin rate normalized per 10⁶ requests.
    pub per_million: f64,
}
impl_to_json!(HistogramRow {
    bin,
    count,
    per_million
});

/// One cell of the inconclusive/reject reason breakdown.
#[derive(Debug, Clone)]
pub struct ReasonRow {
    /// Verdict reason stamped into the registry record, e.g.
    /// `recycled_wear` or `transient_faults`.
    pub reason: String,
    /// Records carrying the reason.
    pub count: u64,
    /// Cell rate normalized per 10⁶ requests.
    pub per_million: f64,
}
impl_to_json!(ReasonRow {
    reason,
    count,
    per_million
});

/// One gauge or counter sample of the service telemetry snapshot.
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Metric name, e.g. `service_queue_depth`.
    pub metric: &'static str,
    /// Shard index, or `None` for service-wide (GLOBAL) series.
    pub shard: Option<u64>,
    /// Gauge high watermark or counter total.
    pub value: u64,
}
impl_to_json!(TelemetryRow {
    metric,
    shard,
    value
});

/// One bucket of the campaign-wide virtual-latency histogram
/// (per-shard series summed; bucket bounds are powers of two).
#[derive(Debug, Clone)]
pub struct VlatBucketRow {
    /// Inclusive bucket upper bound, in flash-op cost units.
    pub le: u64,
    /// Requests whose virtual latency landed in the bucket.
    pub count: u64,
}
impl_to_json!(VlatBucketRow { le, count });

/// One enrolled-population cell.
#[derive(Debug, Clone)]
pub struct PopulationRow {
    /// Provenance class.
    pub class: &'static str,
    /// Chips enrolled.
    pub chips: u64,
}
impl_to_json!(PopulationRow { class, chips });

/// The deterministic campaign artifact
/// (`results/service_campaign.json` / `_smoke.json`). Carries no
/// wall-clock fields: byte-identical at any `--threads` count.
#[derive(Debug, Clone)]
pub struct ServiceCampaignData {
    /// Campaign seed.
    pub seed: u64,
    /// Verify requests completed.
    pub requests: u64,
    /// Requests per submitted batch.
    pub batch: u64,
    /// Probe fraction denominator (1 in N requests probes).
    pub probe_modulus: u64,
    /// Canonical recipe-parameter JSON (as stamped into every record).
    pub params: String,
    /// Enrolled population, one row per class.
    pub population: Vec<PopulationRow>,
    /// Registry root digest (hex) — the log's identity.
    pub registry_root: String,
    /// Records appended.
    pub registry_records: u64,
    /// Seals frozen.
    pub registry_seals: u64,
    /// Records per sealed segment.
    pub seal_every: u64,
    /// Duplicate submissions rejected (0 for a clean run).
    pub duplicates: u64,
    /// Verdict mix per provenance class.
    pub verdict_mix: Vec<VerdictMixRow>,
    /// Retry-ladder depth histogram (rungs walked per request).
    pub ladder_histogram: Vec<HistogramRow>,
    /// Transient-retry histogram (retries spent per request).
    pub retry_histogram: Vec<HistogramRow>,
    /// Per-reason breakdown of every non-accept verdict.
    pub reason_breakdown: Vec<ReasonRow>,
    /// Telemetry gauges (queue-depth / batch-occupancy high watermarks).
    pub telemetry_gauges: Vec<TelemetryRow>,
    /// Telemetry counters (requests and probes per shard).
    pub telemetry_counters: Vec<TelemetryRow>,
    /// Campaign-wide virtual-latency distribution, shards summed.
    pub virtual_latency_histogram: Vec<VlatBucketRow>,
}
impl_to_json!(ServiceCampaignData {
    seed,
    requests,
    batch,
    probe_modulus,
    params,
    population,
    registry_root,
    registry_records,
    registry_seals,
    seal_every,
    duplicates,
    verdict_mix,
    ladder_histogram,
    retry_histogram,
    reason_breakdown,
    telemetry_gauges,
    telemetry_counters,
    virtual_latency_histogram
});

/// The quarantined wall-clock artifact (`service_timings.json`) — the one
/// part of the campaign output that legitimately differs across machines
/// and thread counts.
#[derive(Debug, Clone)]
pub struct ServiceTimings {
    /// Worker threads.
    pub threads: usize,
    /// Requests served.
    pub requests: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Throughput (requests per second).
    pub requests_per_s: f64,
}
impl_to_json!(ServiceTimings {
    threads,
    requests,
    wall_s,
    requests_per_s
});

/// A completed campaign: the deterministic JSON artifact plus the
/// Prometheus-style text exposition of the service telemetry snapshot
/// (written beside the JSON as `service_metrics*.prom`). Both are
/// byte-identical at any `--threads` count.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The JSON artifact struct.
    pub data: ServiceCampaignData,
    /// The telemetry snapshot in Prometheus text exposition format.
    pub exposition: String,
}

/// Runs the campaign: builds the service, streams `opts.requests` requests
/// through the channel front end in `opts.batch`-sized batches, and
/// summarizes the registry and telemetry snapshot. `progress` is called
/// with the running request total after each batch.
///
/// # Errors
///
/// Imprint/flash errors from manufacturing or verification.
pub fn run_service_campaign(
    opts: &ServiceCampaignOptions,
    mut progress: impl FnMut(u64),
) -> Result<CampaignRun, CoreError> {
    let mut service = build_campaign_service(opts.seed)?;
    let population = service.population().len() as u64;
    let handle = service.handle();

    let mut duplicates = 0u64;
    let mut done = 0u64;
    while done < opts.requests {
        let batch_end = (done + opts.batch.max(1)).min(opts.requests);
        for i in done..batch_end {
            handle.submit(campaign_request(opts.seed, i, population))?;
        }
        let report = service.serve_drained(opts.threads)?;
        duplicates += report.duplicates;
        done = batch_end;
        progress(done);
    }

    Ok(CampaignRun {
        exposition: service.telemetry().expose(),
        data: summarize(&service, opts, duplicates),
    })
}

/// Summarizes a campaign service's registry and telemetry snapshot into
/// the artifact struct.
#[must_use]
pub fn summarize(
    service: &VerificationService,
    opts: &ServiceCampaignOptions,
    duplicates: u64,
) -> ServiceCampaignData {
    let registry = service.registry();
    let stats = registry.stats();
    let telemetry = service.telemetry();
    let shard_of = |shard: u64| (shard != flashmark_obs::GLOBAL).then_some(shard);
    let mut vlat: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (name, _, bucket, count) in telemetry.histogram_buckets() {
        if name == "service_virtual_latency_ops" {
            *vlat.entry(bucket).or_insert(0) += count;
        }
    }
    let requests = stats.requests();
    let per_million = |count: u64| count as f64 * 1_000_000.0 / (requests.max(1) as f64);
    ServiceCampaignData {
        seed: opts.seed,
        requests,
        batch: opts.batch,
        probe_modulus: PROBE_MODULUS,
        params: service.params().to_string(),
        population: service
            .population()
            .class_counts()
            .into_iter()
            .map(|(class, chips)| PopulationRow { class, chips })
            .collect(),
        registry_root: registry.root().to_hex(),
        registry_records: registry.len(),
        registry_seals: registry.seals().len() as u64,
        seal_every: CAMPAIGN_SEAL_EVERY,
        duplicates,
        verdict_mix: stats
            .verdict_mix()
            .map(|(class, verdict, count)| VerdictMixRow {
                class: class.to_string(),
                verdict,
                count,
                per_million: per_million(count),
            })
            .collect(),
        ladder_histogram: stats
            .ladder_histogram()
            .map(|(bin, count)| HistogramRow {
                bin,
                count,
                per_million: per_million(count),
            })
            .collect(),
        retry_histogram: stats
            .retry_histogram()
            .map(|(bin, count)| HistogramRow {
                bin,
                count,
                per_million: per_million(count),
            })
            .collect(),
        reason_breakdown: stats
            .reason_breakdown()
            .map(|(reason, count)| ReasonRow {
                reason: reason.to_string(),
                count,
                per_million: per_million(count),
            })
            .collect(),
        telemetry_gauges: telemetry
            .gauges()
            .map(|(metric, shard, value)| TelemetryRow {
                metric,
                shard: shard_of(shard),
                value,
            })
            .collect(),
        telemetry_counters: telemetry
            .counters()
            .map(|(metric, shard, value)| TelemetryRow {
                metric,
                shard: shard_of(shard),
                value,
            })
            .collect(),
        virtual_latency_histogram: vlat
            .into_iter()
            .map(|(le, count)| VlatBucketRow { le, count })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic_and_mixed() {
        let a: Vec<VerifyRequest> = (0..200).map(|i| campaign_request(7, i, 120)).collect();
        let b: Vec<VerifyRequest> = (0..200).map(|i| campaign_request(7, i, 120)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|r| r.probe));
        assert!(a.iter().any(|r| !r.probe));
        assert!(a.iter().all(|r| r.chip_id < 120));
        // The pick spreads over the population rather than pinning one chip.
        let distinct: std::collections::BTreeSet<u64> = a.iter().map(|r| r.chip_id).collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct chips",
            distinct.len()
        );
    }

    #[test]
    fn per_million_normalization() {
        let opts = ServiceCampaignOptions::tiny(1);
        assert_eq!(opts.requests, 1_000);
        // 1k requests: a count of 10 is 10_000 per million.
        let service = build_campaign_service(opts.seed).expect("service");
        let data = summarize(&service, &opts, 0);
        assert_eq!(data.requests, 0);
        assert!(data.verdict_mix.is_empty());
        assert_eq!(data.probe_modulus, PROBE_MODULUS);
    }
}
