//! Reference numbers from the paper, for paper-vs-measured comparison.

/// Cells per 512-byte segment.
pub const SEGMENT_CELLS: usize = 4096;

/// Fig. 4: minimum partial-erase time (µs) at which all 4096 cells read
/// erased, per stress level (kcycles).
pub const FIG4_ALL_ERASED_US: &[(f64, f64)] = &[
    (0.0, 35.0),
    (20.0, 115.0),
    (40.0, 203.0),
    (60.0, 226.0),
    (80.0, 687.0),
    (100.0, 811.0),
];

/// Fig. 4: erase onset of the fresh segment (µs) — all cells still
/// programmed below this time.
pub const FIG4_FRESH_ONSET_US: f64 = 18.0;

/// Fig. 5: at `tPEW` = 23 µs, 3833 of 4096 bits distinguish 0 K from 50 K.
pub const FIG5_T_PEW_US: f64 = 23.0;
/// Fig. 5: distinguishable bits.
pub const FIG5_DISTINGUISHABLE: usize = 3833;

/// Fig. 9: minimum single-copy, single-read BER (%) per imprint stress level
/// (kcycles).
pub const FIG9_MIN_BER_PCT: &[(f64, f64)] = &[(20.0, 19.9), (40.0, 11.8), (60.0, 7.6), (80.0, 2.3)];

/// Fig. 10: replication demo operating point.
pub const FIG10_STRESS_KCYCLES: f64 = 50.0;
/// Fig. 10: partial-erase time (µs).
pub const FIG10_T_PEW_US: f64 = 28.0;
/// Fig. 10: replicas.
pub const FIG10_REPLICAS: usize = 7;
/// Fig. 10: watermark slice length (bits).
pub const FIG10_BITS: usize = 30;

/// Fig. 11: minimum BER (%) at 40 K for 3/5/7 replicas.
pub const FIG11_40K_MIN_BER_PCT: &[(usize, f64)] = &[(3, 5.2), (5, 2.4), (7, 0.96)];
/// Fig. 11: at 70 K, 3-way replication fully recovers the watermark.
pub const FIG11_70K_ZERO_BER_REPLICAS: usize = 3;

/// §V: baseline imprint time at 40 K cycles (s).
pub const IMPRINT_BASELINE_40K_S: f64 = 1380.0;
/// §V: baseline imprint time at 70 K cycles (s).
pub const IMPRINT_BASELINE_70K_S: f64 = 2415.0;
/// §V: accelerated imprint time at 40 K cycles (s).
pub const IMPRINT_ACCEL_40K_S: f64 = 387.0;
/// §V: accelerated imprint time at 70 K cycles (s).
pub const IMPRINT_ACCEL_70K_S: f64 = 678.0;
/// §V: extraction time with replicas (ms), including host-side overhead.
pub const EXTRACT_MS: f64 = 170.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_times_monotone_in_stress() {
        for pair in FIG4_ALL_ERASED_US.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
    }

    #[test]
    fn fig9_ber_decreases_with_stress() {
        for pair in FIG9_MIN_BER_PCT.windows(2) {
            assert!(pair[1].1 < pair[0].1);
        }
    }

    #[test]
    fn accelerated_speedup_is_about_3_5x() {
        let s40 = IMPRINT_BASELINE_40K_S / IMPRINT_ACCEL_40K_S;
        let s70 = IMPRINT_BASELINE_70K_S / IMPRINT_ACCEL_70K_S;
        assert!((3.4..3.7).contains(&s40));
        assert!((3.4..3.7).contains(&s70));
    }
}
