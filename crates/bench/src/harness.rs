//! Shared experiment plumbing: chips, stressed segments, watermarks.

use flashmark_core::{CoreError, Watermark};
use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_physics::rng::SplitMix64;
use flashmark_physics::PhysicsParams;

pub use flashmark_par::{default_threads, Trial, TrialRunner};

/// A fresh simulated MSP430-class flash controller with enough segments for
/// a multi-stress-level experiment.
#[must_use]
pub fn test_chip(seed: u64) -> FlashController {
    let mut flash = FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(16),
        FlashTimings::msp430(),
        seed,
    );
    // Experiments never inspect the event trace; a capacity-0 ring makes
    // `record()` a single predictable branch on the hot read/program paths.
    flash.trace_mut().set_capacity(0);
    flash
}

/// The chip of one [`Trial`]: a fresh [`test_chip`] keyed by the trial's
/// derived seed, so every trial of a parallel experiment owns an
/// independent, deterministic device.
#[must_use]
pub fn trial_chip(trial: Trial) -> FlashController {
    test_chip(trial.seed)
}

/// Imprints `wm` into `seg` with `cycles` P/E cycles (closed-form fast
/// path, accelerated-schedule timing).
///
/// # Errors
///
/// Flash errors.
pub fn imprint_watermark(
    flash: &mut FlashController,
    seg: SegmentAddr,
    wm: &Watermark,
    replicas: usize,
    cycles: u64,
) -> Result<(), CoreError> {
    let cfg = flashmark_core::FlashmarkConfig::builder()
        .n_pe(cycles)
        .replicas(replicas)
        .build()?;
    flashmark_core::Imprinter::new(&cfg).imprint(flash, seg, wm)?;
    Ok(())
}

/// Uniformly stresses a whole segment by `cycles` (all cells programmed
/// each cycle) and leaves it erased — the "pre-conditioned segment" of the
/// paper's Section III characterization.
///
/// # Errors
///
/// Flash errors.
pub fn precondition_segment(
    flash: &mut FlashController,
    seg: SegmentAddr,
    cycles: u64,
) -> Result<(), CoreError> {
    if cycles > 0 {
        let words = vec![0u16; 256];
        flash.bulk_imprint(seg, &words, cycles, ImprintTiming::Baseline)?;
    }
    flash.erase_segment(seg)?;
    Ok(())
}

/// A deterministic upper-case-ASCII watermark of `bytes` bytes — the
/// payload class the paper's Fig. 9 uses (512 bytes fill a whole segment).
///
/// # Panics
///
/// Panics if `bytes` is zero: watermarks are non-empty by definition.
#[must_use]
pub fn uppercase_ascii_watermark(bytes: usize, seed: u64) -> Watermark {
    let mut rng = SplitMix64::new(seed);
    let payload: Vec<u8> = (0..bytes)
        .map(|_| b'A' + rng.range_usize(26) as u8)
        .collect();
    Watermark::from_bytes(&payload).expect("non-empty payload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_is_uppercase_ascii() {
        let wm = uppercase_ascii_watermark(64, 7);
        let s = wm.to_ascii().expect("ascii");
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c.is_ascii_uppercase()));
    }

    #[test]
    fn watermark_deterministic_per_seed() {
        assert_eq!(
            uppercase_ascii_watermark(16, 3).to_bytes(),
            uppercase_ascii_watermark(16, 3).to_bytes()
        );
        assert_ne!(
            uppercase_ascii_watermark(16, 3).to_bytes(),
            uppercase_ascii_watermark(16, 4).to_bytes()
        );
    }

    #[test]
    fn precondition_wears_and_erases() {
        let mut f = test_chip(1);
        let seg = SegmentAddr::new(0);
        precondition_segment(&mut f, seg, 10_000).unwrap();
        let stats = f.wear_stats(seg);
        assert!(stats.mean_cycles > 9_500.0);
        assert!(f.array_mut().ideal_bits(seg).iter().all(|&b| b));
    }
}
