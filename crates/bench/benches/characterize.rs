//! Micro-benchmarks for the characterization sweep (Fig. 3 algorithm).

use std::hint::black_box;

use flashmark_bench::harness::test_chip;
use flashmark_bench::microbench::Bench;
use flashmark_core::{analyze_segment, characterize_segment, StressDetector, SweepSpec};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

fn main() {
    let group = Bench::new("characterize").samples(10);

    let sweep = SweepSpec::new(Micros::new(0.0), Micros::new(60.0), Micros::new(4.0)).unwrap();
    group.bench_with_setup(
        "sweep_16_points",
        || test_chip(11),
        |mut flash| {
            characterize_segment(&mut flash, black_box(SegmentAddr::new(0)), &sweep, 3).unwrap()
        },
    );

    let mut flash = test_chip(12);
    group.bench("analyze_segment_3_reads", || {
        analyze_segment(&mut flash, black_box(SegmentAddr::new(0)), 3).unwrap()
    });

    group.bench_with_setup(
        "stress_detector_round",
        || test_chip(13),
        |mut flash| {
            StressDetector::fig5()
                .classify(&mut flash, black_box(SegmentAddr::new(0)))
                .unwrap()
        },
    );
}
