//! Criterion benchmarks for the characterization sweep (Fig. 3 algorithm).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use flashmark_bench::harness::test_chip;
use flashmark_core::{analyze_segment, characterize_segment, StressDetector, SweepSpec};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

fn bench_characterize(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);

    group.bench_function("sweep_16_points", |b| {
        let sweep = SweepSpec::new(Micros::new(0.0), Micros::new(60.0), Micros::new(4.0)).unwrap();
        b.iter_batched(
            || test_chip(11),
            |mut flash| {
                characterize_segment(&mut flash, black_box(SegmentAddr::new(0)), &sweep, 3).unwrap()
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("analyze_segment_3_reads", |b| {
        let mut flash = test_chip(12);
        b.iter(|| analyze_segment(&mut flash, black_box(SegmentAddr::new(0)), 3).unwrap());
    });

    group.bench_function("stress_detector_round", |b| {
        b.iter_batched(
            || test_chip(13),
            |mut flash| {
                StressDetector::fig5()
                    .classify(&mut flash, black_box(SegmentAddr::new(0)))
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
