//! Criterion benchmarks for the coding layer (replication, Hamming, CRC).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use flashmark_ecc::crc::{crc16, crc32};
use flashmark_ecc::{Code, Hamming, Interleaver, Repetition};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");

    let data: Vec<bool> = (0..4096).map(|i| i % 3 == 0).collect();
    let small: Vec<bool> = data[..512].to_vec();

    group.bench_function("repetition7_encode_512", |b| {
        let code = Repetition::new(7).unwrap();
        b.iter(|| code.encode(black_box(&small)));
    });

    group.bench_function("repetition7_decode_512", |b| {
        let code = Repetition::new(7).unwrap();
        let tx = code.encode(&small);
        b.iter(|| code.decode(black_box(&tx)).unwrap());
    });

    group.bench_function("hamming_encode_4096", |b| {
        let code = Hamming::new();
        b.iter(|| code.encode(black_box(&data)));
    });

    group.bench_function("hamming_decode_4096", |b| {
        let code = Hamming::new();
        let tx = code.encode(&data);
        b.iter(|| code.decode(black_box(&tx)).unwrap());
    });

    group.bench_function("interleave_4096_depth7", |b| {
        let il = Interleaver::new(7).unwrap();
        let bits: Vec<bool> = (0..4096 - 4096 % 7).map(|i| i % 5 == 0).collect();
        b.iter(|| il.interleave(black_box(&bits)).unwrap());
    });

    let payload = vec![0xA5u8; 1024];
    group.bench_function("crc16_1k", |b| b.iter(|| crc16(black_box(&payload))));
    group.bench_function("crc32_1k", |b| b.iter(|| crc32(black_box(&payload))));

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
