//! Micro-benchmarks for the coding layer (replication, Hamming, CRC).

use std::hint::black_box;

use flashmark_bench::microbench::Bench;
use flashmark_ecc::crc::{crc16, crc32};
use flashmark_ecc::{Code, Hamming, Interleaver, Repetition};

fn main() {
    let group = Bench::new("codec");

    let data: Vec<bool> = (0..4096).map(|i| i % 3 == 0).collect();
    let small: Vec<bool> = data[..512].to_vec();

    let code = Repetition::new(7).unwrap();
    group.bench("repetition7_encode_512", || code.encode(black_box(&small)));

    let tx = code.encode(&small);
    group.bench("repetition7_decode_512", || {
        code.decode(black_box(&tx)).unwrap()
    });

    let code = Hamming::new();
    group.bench("hamming_encode_4096", || code.encode(black_box(&data)));

    let tx = code.encode(&data);
    group.bench("hamming_decode_4096", || {
        code.decode(black_box(&tx)).unwrap()
    });

    let il = Interleaver::new(7).unwrap();
    let bits: Vec<bool> = (0..4096 - 4096 % 7).map(|i| i % 5 == 0).collect();
    group.bench("interleave_4096_depth7", || {
        il.interleave(black_box(&bits)).unwrap()
    });

    let payload = vec![0xA5u8; 1024];
    group.bench("crc16_1k", || crc16(black_box(&payload)));
    group.bench("crc32_1k", || crc32(black_box(&payload)));
}
