//! Micro-benchmarks for watermark extraction (Fig. 8 path) and full
//! verification.

use std::hint::black_box;

use flashmark_bench::harness::{test_chip, uppercase_ascii_watermark};
use flashmark_bench::microbench::Bench;
use flashmark_core::{
    Extractor, FlashmarkConfig, Imprinter, TestStatus, Verifier, WatermarkRecord,
};
use flashmark_nor::SegmentAddr;

fn main() {
    let group = Bench::new("extract").samples(20);

    let cfg = FlashmarkConfig::builder()
        .n_pe(70_000)
        .replicas(7)
        .build()
        .unwrap();
    let wm = uppercase_ascii_watermark(16, 2);
    let mut flash = test_chip(9);
    Imprinter::new(&cfg)
        .imprint(&mut flash, SegmentAddr::new(0), &wm)
        .unwrap();

    group.bench("record_7_replicas", || {
        Extractor::new(&cfg)
            .extract(&mut flash, SegmentAddr::new(0), black_box(wm.len()))
            .unwrap()
    });

    let record = WatermarkRecord {
        manufacturer_id: 0x7C01,
        die_id: 99,
        speed_grade: 3,
        status: TestStatus::Accept,
        year_week: 2004,
    };
    let mut flash2 = test_chip(10);
    Imprinter::new(&cfg)
        .imprint(&mut flash2, SegmentAddr::new(0), &record.to_watermark())
        .unwrap();
    let verifier = Verifier::new(cfg.clone(), 0x7C01);

    group.bench("full_verify", || {
        verifier
            .verify(&mut flash2, black_box(SegmentAddr::new(0)))
            .unwrap()
    });
}
