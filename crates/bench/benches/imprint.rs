//! Micro-benchmarks for the imprint path (simulator cost; §V timing
//! arithmetic is exercised by `table1_timing`).

use std::hint::black_box;

use flashmark_bench::harness::{test_chip, uppercase_ascii_watermark};
use flashmark_bench::microbench::Bench;
use flashmark_core::{FlashmarkConfig, Imprinter};
use flashmark_nor::SegmentAddr;

fn main() {
    let group = Bench::new("imprint").samples(20);
    let wm = uppercase_ascii_watermark(64, 1);

    let cfg = FlashmarkConfig::builder()
        .n_pe(40_000)
        .replicas(7)
        .build()
        .unwrap();
    group.bench_with_setup(
        "bulk_40k_cycles",
        || test_chip(7),
        |mut flash| {
            Imprinter::new(&cfg)
                .imprint(&mut flash, SegmentAddr::new(0), black_box(&wm))
                .unwrap()
        },
    );

    let cfg = FlashmarkConfig::builder()
        .n_pe(25)
        .replicas(7)
        .build()
        .unwrap();
    group.bench_with_setup(
        "faithful_loop_25_cycles",
        || test_chip(8),
        |mut flash| {
            Imprinter::new(&cfg)
                .imprint_via_cycles(&mut flash, SegmentAddr::new(0), black_box(&wm))
                .unwrap()
        },
    );
}
