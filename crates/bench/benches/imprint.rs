//! Criterion benchmarks for the imprint path (simulator cost, §V timing
//! arithmetic is exercised by `table1_timing`).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use flashmark_bench::harness::{test_chip, uppercase_ascii_watermark};
use flashmark_core::{FlashmarkConfig, Imprinter};
use flashmark_nor::SegmentAddr;

fn bench_imprint(c: &mut Criterion) {
    let mut group = c.benchmark_group("imprint");
    group.sample_size(20);

    let wm = uppercase_ascii_watermark(64, 1);

    group.bench_function("bulk_40k_cycles", |b| {
        let cfg = FlashmarkConfig::builder().n_pe(40_000).replicas(7).build().unwrap();
        b.iter_batched(
            || test_chip(7),
            |mut flash| {
                Imprinter::new(&cfg)
                    .imprint(&mut flash, SegmentAddr::new(0), black_box(&wm))
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("faithful_loop_25_cycles", |b| {
        let cfg = FlashmarkConfig::builder().n_pe(25).replicas(7).build().unwrap();
        b.iter_batched(
            || test_chip(8),
            |mut flash| {
                Imprinter::new(&cfg)
                    .imprint_via_cycles(&mut flash, SegmentAddr::new(0), black_box(&wm))
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_imprint);
criterion_main!(benches);
