//! Golden-vector regression: re-runs the Fig. 5 extraction on its fixed
//! suite seed and pins every field against the committed
//! `results/fig05.json`. Any drift in the physics model, characterization,
//! or RNG plumbing shows up here as an exact-value mismatch rather than a
//! silently regenerated artifact.

use std::path::Path;

use flashmark_bench::experiments::fig05;
use flashmark_par::TrialRunner;
use flashmark_physics::Micros;

/// Line-oriented reader for the committed artifact — the same shape
/// `Json::pretty` writes, which is all this test needs to understand.
fn field(text: &str, name: &str) -> f64 {
    let needle = format!("\"{name}\": ");
    text.lines()
        .find_map(|line| line.trim().strip_prefix(&needle))
        .unwrap_or_else(|| panic!("field {name:?} missing from fig05.json"))
        .trim_end_matches(',')
        .parse()
        .unwrap_or_else(|_| panic!("field {name:?} is not a number"))
}

/// The two bare numbers of the `programmed_at_t_pew` array.
fn programmed_pair(text: &str) -> (usize, usize) {
    let nums: Vec<usize> = text
        .lines()
        .skip_while(|l| !l.contains("programmed_at_t_pew"))
        .skip(1)
        .map_while(|l| l.trim().trim_end_matches(',').parse().ok())
        .collect();
    assert_eq!(nums.len(), 2, "programmed_at_t_pew must hold two counts");
    (nums[0], nums[1])
}

#[test]
fn fig05_extraction_matches_committed_golden_vector() {
    let committed = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/fig05.json");
    let text = std::fs::read_to_string(&committed)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", committed.display()));

    // The exact suite invocation: seed 0xF1605, 50 kcycle stress, the
    // paper's 23 µs operating point. Serial runner — fig05 is one trial, so
    // the thread count is irrelevant, but pinning it keeps this test
    // independent of machine parallelism by construction.
    let runner = TrialRunner::with_threads(0xF1605, 1);
    let f5 = fig05(&runner, 50.0, Micros::new(field(&text, "t_pew_us"))).unwrap();

    assert_eq!(f5.t_pew_us.to_bits(), field(&text, "t_pew_us").to_bits());
    assert_eq!(f5.distinguishable as f64, field(&text, "distinguishable"));
    assert_eq!(f5.total as f64, field(&text, "total"));
    assert_eq!(
        f5.best_t_pew_us.to_bits(),
        field(&text, "best_t_pew_us").to_bits()
    );
    assert_eq!(
        f5.best_distinguishable as f64,
        field(&text, "best_distinguishable")
    );
    assert_eq!(f5.programmed_at_t_pew, programmed_pair(&text));
}
