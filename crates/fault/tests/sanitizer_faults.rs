//! Fault classes × protocol sanitizer: each injected fault class maps to
//! the expected sanitizer observation, wear stays monotone under every
//! fault, and a clean (golden-plan) run produces no violations at all.
//!
//! The stack under test is `FaultyFlash<SanitizedFlash<FlashController>>`:
//! faults are injected *above* the sanitizer, so the sanitizer observes the
//! faulted command stream exactly as the device would.

use flashmark_core::{FlashmarkConfig, Imprinter, TestStatus, Verdict, Verifier, WatermarkRecord};
use flashmark_fault::{FaultPlan, FaultyFlash};
use flashmark_nor::interface::FlashInterface;
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_physics::PhysicsParams;
use flashmark_sanitizer::{SanitizedFlash, Violation, ViolationKind};

const MFG: u16 = 0x7C01;
const SEG: SegmentAddr = SegmentAddr::new(0);
const WARM_SEG: SegmentAddr = SegmentAddr::new(1);

fn config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .build()
        .unwrap()
}

fn imprinted_chip(seed: u64, status: TestStatus) -> FlashController {
    let mut chip = FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(4),
        FlashTimings::msp430(),
        seed,
    );
    chip.trace_mut().set_capacity(0);
    let record = WatermarkRecord {
        manufacturer_id: MFG,
        die_id: 7,
        speed_grade: 2,
        status,
        year_week: 2004,
    };
    Imprinter::new(&config())
        .imprint(&mut chip, SEG, &record.to_watermark())
        .unwrap();
    chip
}

/// Runs a resilient verification of an imprinted chip through the faulted,
/// sanitized stack and returns the verdict plus collected violations. A
/// warm-up erase on a scratch segment is issued first (operation index 0)
/// so violation backtraces have preceding events to capture.
fn run(seed: u64, status: TestStatus, plan: FaultPlan) -> (Verdict, Vec<Violation>) {
    let sanitized = SanitizedFlash::wrap_controller(imprinted_chip(seed, status));
    let mut faulty = FaultyFlash::new(sanitized, plan);
    let _ = faulty.erase_segment(WARM_SEG);
    let report = Verifier::new(config(), MFG)
        .verify_resilient(&mut faulty, SEG)
        .unwrap();
    let violations = faulty.into_inner().take_violations();
    (report.verdict, violations)
}

fn wear_decreases(violations: &[Violation]) -> usize {
    violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::WearDecrease { .. }))
        .count()
}

#[test]
fn clean_run_negative_suite() {
    // Golden plan: the whole imprint-free verification flow is
    // protocol-clean and the wear probe never observes a decrease.
    let (verdict, violations) = run(500, TestStatus::Accept, FaultPlan::golden(1));
    assert_eq!(verdict, Verdict::Genuine);
    assert!(
        violations.is_empty(),
        "clean run must produce no violations, got: {violations:?}"
    );
}

#[test]
fn power_loss_during_erase_maps_to_partial_erase_order() {
    // Op 0 is the warm-up erase; op 1 is the extraction's segment erase.
    // Power loss there reaches the device as a fractional erase pulse,
    // which the sanitizer must flag as a partial erase out of protocol
    // order — and nothing else.
    let plan = FaultPlan::new(2).with_power_loss(1, 0.5);
    let (verdict, violations) = run(501, TestStatus::Accept, plan);
    assert_eq!(
        verdict,
        Verdict::Genuine,
        "one brown-out must not cost a genuine chip its verdict"
    );
    assert_eq!(violations.len(), 1, "got: {violations:?}");
    assert!(matches!(
        violations[0].kind,
        ViolationKind::PartialEraseOrder { .. }
    ));
    assert_eq!(violations[0].op, "partial_erase");
}

#[test]
fn power_loss_violation_carries_a_backtrace() {
    let plan = FaultPlan::new(3).with_power_loss(1, 0.5);
    let (_, violations) = run(502, TestStatus::Accept, plan);
    assert_eq!(violations.len(), 1);
    assert!(
        !violations[0].backtrace.is_empty(),
        "the violation must carry the preceding flash events"
    );
}

#[test]
fn transient_naks_never_reach_the_device() {
    // NAKs abort the command above the sanitizer: no protocol violation.
    let plan = FaultPlan::new(4).with_transients(0.25, 2);
    let (verdict, violations) = run(503, TestStatus::Accept, plan);
    assert!(
        violations.is_empty(),
        "NAKed commands must not appear as protocol violations: {violations:?}"
    );
    assert_ne!(
        verdict,
        Verdict::Counterfeit(flashmark_core::CounterfeitReason::NoWatermark),
        "interface flakiness must not fabricate a no-watermark verdict"
    );
}

#[test]
fn read_faults_produce_no_protocol_violations() {
    for plan in [
        FaultPlan::new(5).with_read_flips(1e-2),
        FaultPlan::new(6).with_read_disturb(1e-4),
        FaultPlan::new(7).with_t_pew_jitter(2.0),
    ] {
        let (_, violations) = run(504, TestStatus::Accept, plan);
        assert!(
            violations.is_empty(),
            "read-path faults never touch the array: {violations:?}"
        );
    }
}

#[test]
fn wear_stays_monotone_under_every_fault_class() {
    // The sanitizer's wear probe (installed by `wrap_controller`) checks
    // mean wear after every operation; no injected fault may ever make it
    // decrease — wear is the one-way physical quantity the whole scheme
    // rests on.
    let plans = [
        FaultPlan::golden(10),
        FaultPlan::new(11).with_transients(0.3, 2),
        FaultPlan::new(12).with_power_loss(1, 0.5),
        FaultPlan::new(13).with_read_flips(1e-2),
        FaultPlan::new(14).with_read_disturb(1e-4),
        FaultPlan::new(15).with_t_pew_jitter(3.0),
        FaultPlan::new(16)
            .with_transients(0.1, 2)
            .with_read_flips(1e-3)
            .with_read_disturb(1e-5)
            .with_t_pew_jitter(1.5)
            .with_power_loss(4, 0.3),
    ];
    for (i, plan) in plans.into_iter().enumerate() {
        for status in [TestStatus::Accept, TestStatus::Reject] {
            let (verdict, violations) = run(600 + i as u64, status, plan.clone());
            assert_eq!(
                wear_decreases(&violations),
                0,
                "fault plan {i} made wear decrease"
            );
            if status == TestStatus::Reject {
                assert_ne!(
                    verdict,
                    Verdict::Genuine,
                    "fault plan {i} flipped a reject into an accept"
                );
            }
        }
    }
}
