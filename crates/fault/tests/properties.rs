//! Property-based tests of the fault layer's two load-bearing guarantees:
//! the schedule is a pure function of `(seed, op_index)` — identical across
//! thread counts and sampling orders — and no fault plan, whatever its
//! rates, can flip a REJECT die into a Genuine verdict.

use proptest::prelude::*;

use flashmark_core::{FlashmarkConfig, Imprinter, TestStatus, Verdict, Verifier, WatermarkRecord};
use flashmark_fault::{FaultPlan, FaultyFlash};
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr};
use flashmark_par::TrialRunner;
use flashmark_physics::PhysicsParams;

const MFG: u16 = 0x7C01;
const SEG: SegmentAddr = SegmentAddr::new(0);

fn config() -> FlashmarkConfig {
    FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .build()
        .unwrap()
}

fn imprinted_chip(seed: u64, status: TestStatus) -> FlashController {
    let mut chip = FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(4),
        FlashTimings::msp430(),
        seed,
    );
    chip.trace_mut().set_capacity(0);
    let record = WatermarkRecord {
        manufacturer_id: MFG,
        die_id: 3,
        speed_grade: 1,
        status,
        year_week: 2004,
    };
    Imprinter::new(&config())
        .imprint(&mut chip, SEG, &record.to_watermark())
        .unwrap();
    chip
}

/// Samples every fault channel of a plan over `ops` operation indices into
/// one comparable digest. Covers transients (with and without a consecutive
/// streak), power loss, both per-word mask channels, and jitter.
fn op_digest(plan: &FaultPlan, op: u64) -> Vec<u64> {
    let mut digest = vec![
        u64::from(plan.transient_at(op, 0)),
        u64::from(plan.transient_at(op, 1)),
        plan.power_loss_at(op).map_or(0, f64::to_bits),
    ];
    for word in [0u32, 7, 255] {
        digest.push(u64::from(plan.read_flip_mask(op, word)));
        digest.push(u64::from(plan.disturb_mask(op, word, 40)));
    }
    digest.push(plan.jitter_at(op).to_bits());
    digest
}

fn schedule_digest(plan: &FaultPlan, ops: u64) -> Vec<u64> {
    (0..ops).flat_map(|op| op_digest(plan, op)).collect()
}

fn full_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_transients(0.1, 2)
        .with_power_loss(3, 0.5)
        .with_read_flips(1e-3)
        .with_read_disturb(1e-5)
        .with_t_pew_jitter(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ byte-identical fault schedule, sampled forwards,
    /// backwards, or with interleaved redundant queries: the schedule is a
    /// pure function, not a stream.
    #[test]
    fn schedule_is_order_independent(seed in any::<u64>(), ops in 4u64..64) {
        let plan = full_plan(seed);
        let forward = schedule_digest(&plan, ops);
        // Re-sample in reverse, with extra interleaved queries that would
        // desynchronize any internal stream state.
        let mut reversed = Vec::new();
        for op in (0..ops).rev() {
            let _ = plan.read_flip_mask(op.wrapping_add(1000), 3);
            reversed.push(op_digest(&plan, op));
        }
        reversed.reverse();
        let flattened: Vec<u64> = reversed.into_iter().flatten().collect();
        prop_assert_eq!(forward, flattened);
    }

    /// Different seeds decorrelate every channel.
    #[test]
    fn seeds_decorrelate_schedules(seed in any::<u64>()) {
        let a = schedule_digest(&full_plan(seed), 64);
        let b = schedule_digest(&full_plan(seed.wrapping_add(1)), 64);
        prop_assert_ne!(a, b);
    }

    /// The schedule digest computed inside a parallel [`TrialRunner`]
    /// fan-out is bit-identical to the serial run — no fault decision may
    /// leak scheduling order.
    #[test]
    fn schedule_identical_across_thread_counts(experiment_seed in any::<u64>()) {
        let sample = |t: flashmark_par::Trial| schedule_digest(&full_plan(t.seed), 24);
        let serial = TrialRunner::with_threads(experiment_seed, 1).run(12, sample);
        let parallel = TrialRunner::with_threads(experiment_seed, 8).run(12, sample);
        prop_assert_eq!(serial, parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE invariant: whatever bounded fault plan is injected, a die
    /// imprinted REJECT never verifies Genuine. Faults may cost us a
    /// conclusive verdict (Inconclusive) — never hand out a false accept.
    #[test]
    fn no_fault_plan_flips_reject_to_accept(
        chip_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        transient_rate in 0.0f64..0.3,
        read_flip_rate in 0.0f64..1e-2,
        disturb_rate in 0.0f64..1e-4,
        jitter_us in 0.0f64..3.0,
        power_loss_op in 0u64..10,
        power_loss_fraction in 0.0f64..0.9,
    ) {
        let mut plan = FaultPlan::new(plan_seed)
            .with_transients(transient_rate, 2)
            .with_read_flips(read_flip_rate)
            .with_read_disturb(disturb_rate)
            .with_t_pew_jitter(jitter_us);
        // A fraction below 0.1 stands in for "no power loss scheduled".
        if power_loss_fraction >= 0.1 {
            plan = plan.with_power_loss(power_loss_op, power_loss_fraction);
        }
        let chip = imprinted_chip(chip_seed, TestStatus::Reject);
        let mut faulty = FaultyFlash::new(chip, plan);
        let report = Verifier::new(config(), MFG)
            .verify_resilient(&mut faulty, SEG)
            .unwrap();
        prop_assert_ne!(
            report.verdict,
            Verdict::Genuine,
            "a fault schedule flipped a reject into an accept"
        );
    }

    /// Replaying the same (chip seed, plan) pair is byte-identical: same
    /// verdict, same injected-event log — the whole faulted verification is
    /// a pure function of its seeds.
    #[test]
    fn faulted_verification_replays_identically(chip_seed in any::<u64>(), plan_seed in any::<u64>()) {
        let run = || {
            let chip = imprinted_chip(chip_seed, TestStatus::Accept);
            let mut faulty = FaultyFlash::new(chip, full_plan(plan_seed));
            let report = Verifier::new(config(), MFG)
                .verify_resilient(&mut faulty, SEG)
                .unwrap();
            (report.verdict, format!("{:?}", faulty.events()))
        };
        prop_assert_eq!(run(), run());
    }
}
