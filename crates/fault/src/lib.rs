#![forbid(unsafe_code)]
//! Deterministic fault injection for the Flashmark flash emulation.
//!
//! The paper's robustness story (Figs. 9–11: replication + majority voting
//! drive extraction BER to zero) is only as strong as the fault model it is
//! tested against. This crate supplies that model as a decorator:
//! [`FaultyFlash`] wraps any [`flashmark_nor::interface::FlashInterface`]
//! and injects the field failures a production verifier must survive —
//! power loss mid-erase, random read noise, read-disturb accumulation,
//! partial-erase timing jitter, and transient NAK-style interface errors —
//! according to a [`FaultPlan`] whose schedule is a *pure function of
//! `(seed, op_index)`*.
//!
//! Purity is the load-bearing property: a campaign that replays the same
//! operation sequence against the same plan sees byte-identical faults on
//! any host and any thread count, so differential golden-vs-faulted runs
//! under the parallel trial runner stay reproducible.
//!
//! ```
//! use flashmark_fault::{FaultPlan, FaultyFlash};
//! use flashmark_nor::interface::FlashInterface;
//! use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, NorError, SegmentAddr};
//! use flashmark_physics::PhysicsParams;
//!
//! let chip = FlashController::new(
//!     PhysicsParams::msp430_like(),
//!     FlashGeometry::single_bank(4),
//!     FlashTimings::msp430(),
//!     7,
//! );
//! // Power fails at the very first operation; retrying succeeds.
//! let plan = FaultPlan::new(42).with_power_loss(0, 0.5);
//! let mut flash = FaultyFlash::new(chip, plan);
//! let seg = SegmentAddr::new(0);
//! assert_eq!(flash.erase_segment(seg), Err(NorError::PowerLoss));
//! assert!(flash.erase_segment(seg).is_ok());
//! ```

pub mod flash;
pub mod plan;

pub use flash::{FaultEvent, FaultyFlash};
pub use plan::FaultPlan;
