//! The fault schedule: a pure function of `(seed, op_index)`.
//!
//! A [`FaultPlan`] describes *which* faults a [`crate::FaultyFlash`] wrapper
//! injects and *how often*. Every decision — does operation `n` NAK, which
//! read bits flip, how much does a partial-erase pulse jitter — is drawn
//! from a fresh [`SplitMix64`] stream keyed by `(seed, op_index, channel)`,
//! never from a shared sequential stream. Two consequences:
//!
//! * replaying the same operation sequence against the same plan produces
//!   byte-identical faults, regardless of thread count or host;
//! * the schedule for operation `n` does not depend on whether anyone
//!   sampled the schedule for operation `m != n`.

use flashmark_physics::rng::{mix2, SplitMix64};

/// Sub-stream selector: keeps the independent fault dimensions of one
/// operation index statistically decoupled (same trick as the physics
/// crate's per-cell channels).
#[derive(Debug, Clone, Copy)]
enum FaultChannel {
    Transient = 1,
    ReadFlip = 2,
    Disturb = 3,
    Jitter = 4,
}

/// A deterministic, seed-driven fault schedule.
///
/// Built with the builder-style `with_*` methods; a plan with no faults
/// enabled (see [`FaultPlan::golden`]) makes [`crate::FaultyFlash`] a
/// transparent pass-through, which is what differential campaigns use as
/// the golden arm.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    transient_burst: u32,
    power_loss_at_op: Option<u64>,
    power_loss_fraction: f64,
    read_flip_rate: f64,
    disturb_rate: f64,
    jitter_us: f64,
}

impl FaultPlan {
    /// A plan that injects nothing — the golden arm of a differential run.
    #[must_use]
    pub fn golden(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            transient_burst: 0,
            power_loss_at_op: None,
            power_loss_fraction: 0.5,
            read_flip_rate: 0.0,
            disturb_rate: 0.0,
            jitter_us: 0.0,
        }
    }

    /// Alias for [`FaultPlan::golden`]: start from a fault-free plan and
    /// enable fault classes with the `with_*` builders.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::golden(seed)
    }

    /// Enables transient NAK-style interface errors: each operation index
    /// is refused with probability `rate`, but never more than `burst`
    /// times in a row — the bound that makes bounded consumer retry sound.
    #[must_use]
    pub fn with_transients(mut self, rate: f64, burst: u32) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self.transient_burst = burst;
        self
    }

    /// Schedules a one-shot power loss at operation index `op`. If the
    /// interrupted operation is a full segment erase, the array receives
    /// only `fraction` of the nominal tErase pulse before power drops.
    #[must_use]
    pub fn with_power_loss(mut self, op: u64, fraction: f64) -> Self {
        self.power_loss_at_op = Some(op);
        self.power_loss_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Enables random read noise: every bit returned by a read flips with
    /// probability `rate`, independently per `(op, word, bit)`.
    #[must_use]
    pub fn with_read_flips(mut self, rate: f64) -> Self {
        self.read_flip_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Enables read-disturb accumulation: reads of a segment disturb its
    /// cells toward the programmed state, with a per-bit flip probability of
    /// `rate × reads-since-erase` (capped at 1) on each subsequent read.
    #[must_use]
    pub fn with_read_disturb(mut self, rate: f64) -> Self {
        self.disturb_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Enables partial-erase timing jitter: each `partial_erase` pulse is
    /// lengthened or shortened by a zero-mean normal deviate with standard
    /// deviation `sigma_us` microseconds.
    #[must_use]
    pub fn with_t_pew_jitter(mut self, sigma_us: f64) -> Self {
        self.jitter_us = sigma_us.max(0.0);
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_golden(&self) -> bool {
        self.transient_rate <= 0.0
            && self.power_loss_at_op.is_none()
            && self.read_flip_rate <= 0.0
            && self.disturb_rate <= 0.0
            && self.jitter_us <= 0.0
    }

    /// The independent decision stream for `(op, channel)`.
    fn stream(&self, op: u64, channel: FaultChannel) -> SplitMix64 {
        SplitMix64::new(mix2(mix2(self.seed, op), channel as u64))
    }

    /// Whether operation `op` is refused with a transient NAK.
    /// `consecutive` is the number of NAKs already injected immediately
    /// before this operation; once it reaches the configured burst bound
    /// the answer is always `false`.
    #[must_use]
    pub fn transient_at(&self, op: u64, consecutive: u32) -> bool {
        if self.transient_rate <= 0.0 || consecutive >= self.transient_burst {
            return false;
        }
        self.stream(op, FaultChannel::Transient).next_f64() < self.transient_rate
    }

    /// The erase fraction delivered before power drops, if operation `op`
    /// is the scheduled power-loss point.
    #[must_use]
    pub fn power_loss_at(&self, op: u64) -> Option<f64> {
        (self.power_loss_at_op == Some(op)).then_some(self.power_loss_fraction)
    }

    /// The random-noise XOR mask for word `word_offset` of read operation
    /// `op` (bit set ⇒ that bit flips).
    #[must_use]
    pub fn read_flip_mask(&self, op: u64, word_offset: u32) -> u16 {
        if self.read_flip_rate <= 0.0 {
            return 0;
        }
        let mut rng = self
            .stream(op, FaultChannel::ReadFlip)
            .fork(word_offset as u64);
        mask_with_rate(&mut rng, self.read_flip_rate)
    }

    /// The read-disturb AND-clear mask for word `word_offset` of read
    /// operation `op`, given `reads_since_erase` prior reads of the segment
    /// (bit set ⇒ that bit is dragged from 1 to 0, i.e. toward programmed).
    #[must_use]
    pub fn disturb_mask(&self, op: u64, word_offset: u32, reads_since_erase: u64) -> u16 {
        if self.disturb_rate <= 0.0 || reads_since_erase == 0 {
            return 0;
        }
        let p = (self.disturb_rate * reads_since_erase as f64).min(1.0);
        let mut rng = self
            .stream(op, FaultChannel::Disturb)
            .fork(word_offset as u64);
        mask_with_rate(&mut rng, p)
    }

    /// The timing-jitter delta (µs, may be negative) applied to a
    /// `partial_erase` issued as operation `op`.
    #[must_use]
    pub fn jitter_at(&self, op: u64) -> f64 {
        if self.jitter_us <= 0.0 {
            return 0.0;
        }
        self.stream(op, FaultChannel::Jitter).normal() * self.jitter_us
    }
}

/// A 16-bit mask with each bit set independently with probability `rate`.
fn mask_with_rate(rng: &mut SplitMix64, rate: f64) -> u16 {
    let mut mask = 0u16;
    for bit in 0..16 {
        if rng.next_f64() < rate {
            mask |= 1 << bit;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_plan_is_silent() {
        let p = FaultPlan::golden(42);
        assert!(p.is_golden());
        for op in 0..100 {
            assert!(!p.transient_at(op, 0));
            assert!(p.power_loss_at(op).is_none());
            assert_eq!(p.read_flip_mask(op, 3), 0);
            assert_eq!(p.disturb_mask(op, 3, 1000), 0);
            assert!(p.jitter_at(op).abs() < 1e-12);
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_op() {
        let a = FaultPlan::new(7)
            .with_transients(0.3, 2)
            .with_read_flips(0.05)
            .with_t_pew_jitter(2.0);
        let b = a.clone();
        // Sample b out of order and interleaved; answers must not change.
        let b_sampled: Vec<_> = (0..64).rev().map(|op| b.transient_at(op, 0)).collect();
        let a_sampled: Vec<_> = (0..64).map(|op| a.transient_at(op, 0)).collect();
        let b_fwd: Vec<_> = b_sampled.into_iter().rev().collect();
        assert_eq!(a_sampled, b_fwd);
        assert_eq!(a.read_flip_mask(9, 100), b.read_flip_mask(9, 100));
        assert_eq!(a.jitter_at(5).to_bits(), b.jitter_at(5).to_bits());
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(1).with_read_flips(0.5);
        let b = FaultPlan::new(2).with_read_flips(0.5);
        let differs = (0..64).any(|op| a.read_flip_mask(op, 0) != b.read_flip_mask(op, 0));
        assert!(differs);
    }

    #[test]
    fn burst_bound_suppresses_naks() {
        let p = FaultPlan::new(3).with_transients(1.0, 2);
        assert!(p.transient_at(0, 0));
        assert!(p.transient_at(0, 1));
        assert!(
            !p.transient_at(0, 2),
            "burst bound must cap consecutive NAKs"
        );
    }

    #[test]
    fn disturb_grows_with_accumulated_reads() {
        let p = FaultPlan::new(4).with_read_disturb(1e-3);
        let few: u32 = (0..64)
            .map(|op| p.disturb_mask(op, 0, 1).count_ones())
            .sum();
        let many: u32 = (0..64)
            .map(|op| p.disturb_mask(op, 0, 500).count_ones())
            .sum();
        assert!(many > few);
        assert_eq!(p.disturb_mask(0, 0, 0), 0, "no disturb before any read");
    }

    #[test]
    fn power_loss_fires_only_at_its_op() {
        let p = FaultPlan::new(5).with_power_loss(7, 0.25);
        assert_eq!(p.power_loss_at(7), Some(0.25));
        assert_eq!(p.power_loss_at(6), None);
        assert_eq!(p.power_loss_at(8), None);
    }
}
