//! [`FaultyFlash`]: a fault-injecting decorator over any [`FlashInterface`].
//!
//! The wrapper numbers every interface operation with a monotone `op_index`
//! and consults its [`FaultPlan`] — a pure function of `(seed, op_index)` —
//! before forwarding to the wrapped device:
//!
//! * **transient NAKs** abort the operation *before* it reaches the device
//!   ([`NorError::TransientNak`]); a retry is a new op index, so a bounded
//!   retry loop always makes progress (the plan's burst bound guarantees a
//!   clean index within `burst + 1` attempts);
//! * **power loss** at the scheduled op index aborts the operation with
//!   [`NorError::PowerLoss`]; if that operation was a full segment erase,
//!   the device first receives the configured fraction of the nominal
//!   tErase pulse as a partial erase — the half-erased-segment state a real
//!   brown-out leaves behind;
//! * **read noise** XOR-flips read-back bits, and **read disturb** drags
//!   bits toward the programmed state at a rate that grows with the number
//!   of reads since the segment's last erase — neither touches the array,
//!   so injected read faults can never add or remove wear;
//! * **tPEW jitter** perturbs the duration of `partial_erase` pulses.
//!
//! Because only power-loss faults reach the device (and only as a shorter
//! erase pulse), every injected fault preserves wear monotonicity: wear can
//! be added, never removed. The sanitizer-facing tests assert exactly that.

use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming, PartialProgram};
use flashmark_nor::{FlashGeometry, FlashTimings, NorError, SegmentAddr, WordAddr};
use flashmark_physics::{Micros, Seconds};

use crate::plan::FaultPlan;

/// Upper bound on the retained fault log; campaigns with aggressive rates
/// would otherwise grow it without bound.
const MAX_EVENTS: usize = 1024;

/// One injected fault, recorded for post-mortem inspection.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The interface NAK'ed operation `op`.
    TransientNak {
        /// Operation index that was refused.
        op: u64,
    },
    /// Power dropped during operation `op`.
    PowerLoss {
        /// Operation index that was interrupted.
        op: u64,
        /// Fraction of tErase delivered before the drop, when the
        /// interrupted operation was a segment erase.
        erase_fraction: Option<f64>,
    },
    /// Random read noise flipped bits of a read result.
    ReadFlips {
        /// Operation index of the read.
        op: u64,
        /// Number of flipped bits.
        bits: u32,
    },
    /// Read disturb dragged bits toward the programmed state.
    ReadDisturb {
        /// Operation index of the read.
        op: u64,
        /// Number of disturbed bits.
        bits: u32,
    },
    /// A partial-erase pulse was lengthened or shortened.
    TpewJitter {
        /// Operation index of the partial erase.
        op: u64,
        /// Signed pulse-length change in microseconds.
        delta_us: f64,
    },
}

impl FaultEvent {
    /// Stable channel label (also the obs event payload).
    #[must_use]
    pub fn channel(&self) -> &'static str {
        match self {
            Self::TransientNak { .. } => "transient_nak",
            Self::PowerLoss { .. } => "power_loss",
            Self::ReadFlips { .. } => "read_flips",
            Self::ReadDisturb { .. } => "read_disturb",
            Self::TpewJitter { .. } => "tpew_jitter",
        }
    }

    /// The injector operation index at which the fault fired.
    #[must_use]
    pub fn op(&self) -> u64 {
        match self {
            Self::TransientNak { op }
            | Self::PowerLoss { op, .. }
            | Self::ReadFlips { op, .. }
            | Self::ReadDisturb { op, .. }
            | Self::TpewJitter { op, .. } => *op,
        }
    }
}

/// A fault-injecting wrapper around any [`FlashInterface`].
///
/// Stacks freely with the sanitizer: `FaultyFlash<SanitizedFlash<_>>` lets
/// the sanitizer observe the *faulted* command stream, which is how the
/// test-suite checks that injected power loss shows up as the expected
/// protocol violation while wear stays monotone.
#[derive(Debug)]
pub struct FaultyFlash<F> {
    inner: F,
    plan: FaultPlan,
    t_erase: Micros,
    op_index: u64,
    consecutive_naks: u32,
    reads_since_erase: Vec<u64>,
    events: Vec<FaultEvent>,
    events_dropped: usize,
}

impl<F: FlashInterface> FaultyFlash<F> {
    /// Wraps `inner` under `plan`. The nominal tErase used for fractional
    /// power-loss erases defaults to the MSP430 datasheet value; override
    /// with [`FaultyFlash::with_t_erase`] for other parts.
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        let segments = inner.geometry().total_segments() as usize;
        Self {
            inner,
            plan,
            t_erase: FlashTimings::msp430().erase_segment,
            op_index: 0,
            consecutive_naks: 0,
            reads_since_erase: vec![0; segments],
            events: Vec::new(),
            events_dropped: 0,
        }
    }

    /// Overrides the nominal full-erase time used when power loss interrupts
    /// a segment erase at fraction `f` (the array receives `f × t_erase`).
    #[must_use]
    pub fn with_t_erase(mut self, t_erase: Micros) -> Self {
        self.t_erase = t_erase;
        self
    }

    /// The plan driving the schedule.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The next operation index to be assigned.
    #[must_use]
    pub fn op_index(&self) -> u64 {
        self.op_index
    }

    /// Faults injected so far (oldest first, capped at an internal bound).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of fault events dropped once the log cap was reached.
    #[must_use]
    pub fn events_dropped(&self) -> usize {
        self.events_dropped
    }

    /// Total number of faults injected (including dropped log entries).
    #[must_use]
    pub fn injected(&self) -> usize {
        self.events.len() + self.events_dropped
    }

    /// Shared access to the wrapped interface.
    #[must_use]
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// Mutable access to the wrapped interface (fault-free side channel).
    #[must_use]
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }

    /// Unwraps, returning the inner interface.
    #[must_use]
    pub fn into_inner(self) -> F {
        self.inner
    }

    fn push(&mut self, event: FaultEvent) {
        // Every firing reaches the obs layer, even once the local log caps.
        flashmark_obs::emit(flashmark_obs::ObsEvent::FaultFired {
            channel: event.channel(),
            op: event.op(),
        });
        if self.events.len() < MAX_EVENTS {
            self.events.push(event);
        } else {
            self.events_dropped += 1;
        }
    }

    fn next_op(&mut self) -> u64 {
        let op = self.op_index;
        self.op_index += 1;
        op
    }

    /// Injects a scheduled transient NAK, if any, for operation `op`.
    fn nak_gate(&mut self, op: u64) -> Result<(), NorError> {
        if self.plan.transient_at(op, self.consecutive_naks) {
            self.consecutive_naks += 1;
            self.push(FaultEvent::TransientNak { op });
            return Err(NorError::TransientNak);
        }
        self.consecutive_naks = 0;
        Ok(())
    }

    /// Injects a scheduled power loss for a non-erase operation `op`: the
    /// command never reaches the device.
    fn power_gate(&mut self, op: u64) -> Result<(), NorError> {
        if self.plan.power_loss_at(op).is_some() {
            self.push(FaultEvent::PowerLoss {
                op,
                erase_fraction: None,
            });
            return Err(NorError::PowerLoss);
        }
        Ok(())
    }

    fn reads_of(&self, seg: SegmentAddr) -> u64 {
        self.reads_since_erase
            .get(seg.index() as usize)
            .copied()
            .unwrap_or(0)
    }

    fn bump_reads(&mut self, seg: SegmentAddr) {
        if let Some(n) = self.reads_since_erase.get_mut(seg.index() as usize) {
            *n = n.saturating_add(1);
        }
    }

    fn reset_reads(&mut self, seg: SegmentAddr) {
        if let Some(n) = self.reads_since_erase.get_mut(seg.index() as usize) {
            *n = 0;
        }
    }

    /// Applies read-noise and read-disturb masks to one read-back word.
    fn corrupt_word(&self, op: u64, offset: u32, reads: u64, value: u16) -> (u16, u32, u32) {
        let disturb = self.plan.disturb_mask(op, offset, reads);
        let flips = self.plan.read_flip_mask(op, offset);
        // Disturb only drags erased bits down (1 → 0); noise flips both ways.
        let disturbed = value & disturb;
        (
            (value & !disturb) ^ flips,
            disturbed.count_ones(),
            flips.count_ones(),
        )
    }

    /// An erase-class operation interrupted by power loss: the device
    /// receives `fraction × t_erase` as a partial pulse, then the call
    /// fails with [`NorError::PowerLoss`].
    fn interrupted_erase(
        &mut self,
        op: u64,
        seg: SegmentAddr,
        fraction: f64,
    ) -> Result<(), NorError> {
        self.push(FaultEvent::PowerLoss {
            op,
            erase_fraction: Some(fraction),
        });
        let t = self.t_erase.get() * fraction;
        if t > 0.0 {
            self.inner.partial_erase(seg, Micros::new(t))?;
        }
        Err(NorError::PowerLoss)
    }
}

impl<F: FlashInterface> FlashInterface for FaultyFlash<F> {
    fn geometry(&self) -> FlashGeometry {
        self.inner.geometry()
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        let raw = self.inner.read_word(word)?;
        let geom = self.inner.geometry();
        let seg = geom.segment_of(word);
        let offset = geom.word_offset_in_segment(word) as u32;
        let reads = self.reads_of(seg);
        let (value, disturbed, flipped) = self.corrupt_word(op, offset, reads, raw);
        if disturbed > 0 {
            self.push(FaultEvent::ReadDisturb {
                op,
                bits: disturbed,
            });
        }
        if flipped > 0 {
            self.push(FaultEvent::ReadFlips { op, bits: flipped });
        }
        self.bump_reads(seg);
        Ok(value)
    }

    fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        let mut words = self.inner.read_block(seg)?;
        let reads = self.reads_of(seg);
        let mut disturbed = 0u32;
        let mut flipped = 0u32;
        for (i, w) in words.iter_mut().enumerate() {
            let (value, d, f) = self.corrupt_word(op, i as u32, reads, *w);
            *w = value;
            disturbed += d;
            flipped += f;
        }
        if disturbed > 0 {
            self.push(FaultEvent::ReadDisturb {
                op,
                bits: disturbed,
            });
        }
        if flipped > 0 {
            self.push(FaultEvent::ReadFlips { op, bits: flipped });
        }
        self.bump_reads(seg);
        Ok(words)
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        self.inner.program_word(word, value)
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        self.inner.program_block(seg, values)
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        let op = self.next_op();
        if let Some(fraction) = self.plan.power_loss_at(op) {
            return self.interrupted_erase(op, seg, fraction);
        }
        self.nak_gate(op)?;
        self.inner.erase_segment(seg)?;
        self.reset_reads(seg);
        Ok(())
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        let delta = self.plan.jitter_at(op);
        if delta.abs() > 0.0 {
            self.push(FaultEvent::TpewJitter {
                op,
                delta_us: delta,
            });
        }
        let t = Micros::new((t_pe.get() + delta).max(0.1));
        self.inner.partial_erase(seg, t)
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        let op = self.next_op();
        if let Some(fraction) = self.plan.power_loss_at(op) {
            self.interrupted_erase(op, seg, fraction)?;
            // Unreachable: interrupted_erase always errors; keep the typed
            // failure if that ever changes.
            return Err(NorError::PowerLoss);
        }
        self.nak_gate(op)?;
        let spent = self.inner.erase_until_clean(seg)?;
        self.reset_reads(seg);
        Ok(spent)
    }

    fn elapsed(&self) -> Seconds {
        self.inner.elapsed()
    }
}

impl<F: PartialProgram> PartialProgram for FaultyFlash<F> {
    fn partial_program(&mut self, seg: SegmentAddr, t_pp: Micros) -> Result<(), NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        self.inner.partial_program(seg, t_pp)
    }
}

impl<F: BulkStress> BulkStress for FaultyFlash<F> {
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        let op = self.next_op();
        self.power_gate(op)?;
        self.nak_gate(op)?;
        self.inner.bulk_imprint(seg, pattern, cycles, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::FlashInterfaceExt;
    use flashmark_nor::FlashController;
    use flashmark_physics::PhysicsParams;

    fn chip(seed: u64) -> FlashController {
        let mut c = FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(4),
            FlashTimings::msp430(),
            seed,
        );
        c.trace_mut().set_capacity(0);
        c
    }

    #[test]
    fn golden_plan_is_transparent() {
        let seg = SegmentAddr::new(0);
        let mut bare = chip(11);
        bare.program_all_zero(seg).unwrap();
        let expected = bare.read_block(seg).unwrap();

        let mut faulty = FaultyFlash::new(chip(11), FaultPlan::golden(99));
        faulty.program_all_zero(seg).unwrap();
        let got = faulty.read_block(seg).unwrap();
        assert_eq!(expected, got);
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn replay_is_byte_identical() {
        let plan = FaultPlan::new(21)
            .with_read_flips(0.01)
            .with_transients(0.2, 2);
        let run = |plan: FaultPlan| -> (Vec<Vec<u16>>, Vec<FaultEvent>) {
            let mut f = FaultyFlash::new(chip(5), plan);
            let seg = SegmentAddr::new(1);
            let mut reads = Vec::new();
            for _ in 0..10 {
                if let Ok(words) = f.read_block(seg) {
                    reads.push(words);
                }
            }
            let events = f.events().to_vec();
            (reads, events)
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn transient_nak_precedes_the_device_and_is_burst_bounded() {
        let mut f = FaultyFlash::new(chip(1), FaultPlan::new(2).with_transients(1.0, 3));
        let seg = SegmentAddr::new(0);
        let mut naks = 0;
        loop {
            match f.erase_segment(seg) {
                Err(NorError::TransientNak) => naks += 1,
                Ok(()) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(naks, 3, "rate-1.0 plan must NAK exactly `burst` times");
    }

    #[test]
    fn power_loss_during_erase_leaves_a_partial_pulse() {
        // The simulated erase *transition* happens on the tens-of-µs scale
        // (the Fig. 4 window), far below the 25 ms datasheet command time;
        // pin tErase inside the transition window so the interrupted pulse
        // leaves the mid-erase state we want to observe.
        let mut f = FaultyFlash::new(chip(3), FaultPlan::new(4).with_power_loss(1, 0.4))
            .with_t_erase(Micros::new(60.0));
        let seg = SegmentAddr::new(0);
        f.program_all_zero(seg).unwrap(); // op 0
        assert_eq!(f.erase_segment(seg), Err(NorError::PowerLoss)); // op 1
                                                                    // A 24 µs pulse moves cells but does not complete the erase: the
                                                                    // segment must not read fully erased.
        let words = f.read_block(seg).unwrap();
        assert!(
            words.iter().any(|&w| w != 0xFFFF),
            "0.4 tErase must not fully erase a just-programmed segment"
        );
        // Power is back: the next erase completes.
        f.erase_segment(seg).unwrap();
        assert!(f.read_block(seg).unwrap().iter().all(|&w| w == 0xFFFF));
    }

    #[test]
    fn read_faults_do_not_touch_the_array() {
        let seg = SegmentAddr::new(0);
        let mut f = FaultyFlash::new(chip(8), FaultPlan::new(9).with_read_flips(0.05));
        f.program_all_zero(seg).unwrap();
        let _ = f.read_block(seg).unwrap();
        assert!(f.injected() > 0, "5 % read noise over 4096 bits must fire");
        // The array itself is untouched: a fault-free read via the inner
        // handle sees a fully-programmed segment.
        assert!(f
            .inner_mut()
            .read_block(seg)
            .unwrap()
            .iter()
            .all(|&w| w == 0));
    }

    #[test]
    fn read_disturb_accumulates_and_resets_on_erase() {
        let seg = SegmentAddr::new(0);
        let plan = FaultPlan::new(10).with_read_disturb(5e-4);
        let mut f = FaultyFlash::new(chip(12), plan);
        f.erase_segment(seg).unwrap();
        let mut disturbed = 0usize;
        for _ in 0..50 {
            let words = f.read_block(seg).unwrap();
            disturbed += words
                .iter()
                .map(|w| w.count_zeros() as usize)
                .sum::<usize>();
        }
        assert!(disturbed > 0, "accumulated reads must disturb some bits");
        f.erase_segment(seg).unwrap();
        let first = f.read_block(seg).unwrap();
        assert!(
            first.iter().all(|&w| w == 0xFFFF),
            "first read after erase has zero accumulated disturb"
        );
    }

    #[test]
    fn jitter_perturbs_partial_erase_only() {
        let seg = SegmentAddr::new(0);
        let mut f = FaultyFlash::new(chip(14), FaultPlan::new(15).with_t_pew_jitter(3.0));
        f.program_all_zero(seg).unwrap();
        f.partial_erase(seg, Micros::new(30.0)).unwrap();
        assert!(matches!(
            f.events().first(),
            Some(FaultEvent::TpewJitter { .. })
        ));
    }
}
