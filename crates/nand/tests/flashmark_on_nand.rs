//! The paper's closing claim, demonstrated: the Flashmark procedures run on
//! NAND flash **unchanged** through the `FlashInterface` adapter.

use flashmark_core::{
    analyze_segment, characterize_segment, Extractor, FlashmarkConfig, Imprinter, SweepSpec,
    Watermark,
};
use flashmark_nand::{NandChip, NandGeometry, NandWordAdapter};
use flashmark_nor::SegmentAddr;
use flashmark_physics::Micros;

fn nand(seed: u64) -> NandWordAdapter {
    NandWordAdapter::new(NandChip::new(NandGeometry::tiny(), seed))
}

#[test]
fn imprint_and_extract_on_nand() {
    let mut flash = nand(0x0AD3);
    let seg = SegmentAddr::new(0);
    let cfg = FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(7)
        .t_pew(Micros::new(28.0))
        .build()
        .unwrap();
    let wm = Watermark::from_ascii("NAND-TOO").unwrap();
    Imprinter::new(&cfg).imprint(&mut flash, seg, &wm).unwrap();
    let e = Extractor::new(&cfg)
        .extract(&mut flash, seg, wm.len())
        .unwrap();
    assert_eq!(e.bits(), wm.bits(), "watermark round trip on NAND");
}

#[test]
fn characterization_works_on_nand() {
    let mut flash = nand(0x0AD2);
    let sweep = SweepSpec::new(Micros::new(0.0), Micros::new(50.0), Micros::new(10.0)).unwrap();
    let curve = characterize_segment(&mut flash, SegmentAddr::new(1), &sweep, 3).unwrap();
    assert_eq!(curve.total_cells(), 16_384);
    assert_eq!(
        curve.points[0].cells_0, 16_384,
        "t=0: everything programmed"
    );
    let done = curve
        .all_erased_time()
        .expect("fresh block completes in sweep");
    assert!(done.get() <= 50.0);
}

#[test]
fn analyze_segment_majority_works_on_nand() {
    let mut flash = nand(0x0AD3);
    let bits = analyze_segment(&mut flash, SegmentAddr::new(2), 3).unwrap();
    assert_eq!(bits.len(), 16_384);
    assert!(bits.iter().all(|&b| b), "fresh block reads erased");
}

#[test]
fn nand_imprint_is_far_faster_than_msp430_nor() {
    // The paper: "stand-alone NOR flash memory chips have significantly
    // faster erase and program operations and we expect that their imprint
    // time will be significantly smaller" — NAND's 2 ms block erase makes
    // the point emphatically.
    let mut flash = nand(0x0AD4);
    let cfg = FlashmarkConfig::builder()
        .n_pe(40_000)
        .replicas(3)
        .build()
        .unwrap();
    let wm = Watermark::from_ascii("FAST").unwrap();
    let report = Imprinter::new(&cfg)
        .imprint(&mut flash, SegmentAddr::new(0), &wm)
        .unwrap();
    // MSP430 baseline at 40 K is 1380 s; NAND with per-page programs:
    // 40 K x (2 ms + 4 x ~0.22 ms) ≈ 115 s.
    assert!(
        report.elapsed.get() < 300.0,
        "NAND imprint took {} s",
        report.elapsed.get()
    );
}

#[test]
fn wear_is_permanent_on_nand_too() {
    let mut flash = nand(0x0AD5);
    let seg = SegmentAddr::new(0);
    let cfg = FlashmarkConfig::builder()
        .n_pe(80_000)
        .replicas(5)
        .t_pew(Micros::new(28.0))
        .build()
        .unwrap();
    let wm = Watermark::from_ascii("KEEP").unwrap();
    Imprinter::new(&cfg).imprint(&mut flash, seg, &wm).unwrap();

    // Attacker: erase storm + overwrite.
    use flashmark_nor::interface::{FlashInterface, FlashInterfaceExt};
    for _ in 0..10 {
        flash.erase_segment(seg).unwrap();
        flash.program_all_zero(seg).unwrap();
    }
    flash.erase_segment(seg).unwrap();

    let e = Extractor::new(&cfg)
        .extract(&mut flash, seg, wm.len())
        .unwrap();
    assert_eq!(e.bits(), wm.bits(), "watermark survives the attack on NAND");
}
