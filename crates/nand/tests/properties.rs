//! Property-based tests of the NAND chip and adapter semantics.

use proptest::prelude::*;

use flashmark_nand::{BlockAddr, NandChip, NandGeometry, NandWordAdapter, PageAddr};
use flashmark_nor::interface::FlashInterface;
use flashmark_nor::WordAddr;
use flashmark_physics::Micros;

fn chip(seed: u64) -> NandChip {
    NandChip::new(NandGeometry::tiny(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Page program is AND with current contents for arbitrary data.
    #[test]
    fn page_program_is_and(seed in any::<u64>(), a in any::<u8>(), b in any::<u8>()) {
        let mut c = chip(seed);
        let page = PageAddr::new(BlockAddr::new(0), 0);
        let mut da = vec![0xFFu8; 512];
        da[7] = a;
        let mut db = vec![0xFFu8; 512];
        db[7] = b;
        c.program_page(page, &da).unwrap();
        c.program_page(page, &db).unwrap();
        prop_assert_eq!(c.read_page(page).unwrap()[7], a & b);
    }

    /// Adapter word addressing round-trips over the whole block.
    #[test]
    fn adapter_word_roundtrip(seed in any::<u64>(), word in 0u32..1024, value in any::<u16>()) {
        let mut a = NandWordAdapter::new(chip(seed));
        a.program_word(WordAddr::new(word), value).unwrap();
        prop_assert_eq!(a.read_word(WordAddr::new(word)).unwrap(), value);
    }

    /// Erase pulses never un-erase cells (monotone erased count).
    #[test]
    fn erase_pulses_monotone(seed in any::<u64>(), t1 in 1.0f64..30.0, t2 in 1.0f64..30.0) {
        let mut c = chip(seed);
        for p in 0..4 {
            c.program_page(PageAddr::new(BlockAddr::new(0), p), &vec![0u8; 512]).unwrap();
        }
        c.erase_pulse(BlockAddr::new(0), Micros::new(t1)).unwrap();
        let ones1 = c.ideal_bits(BlockAddr::new(0)).iter().filter(|&&b| b).count();
        c.erase_pulse(BlockAddr::new(0), Micros::new(t2)).unwrap();
        let ones2 = c.ideal_bits(BlockAddr::new(0)).iter().filter(|&&b| b).count();
        prop_assert!(ones2 >= ones1);
    }

    /// Wear never decreases under any page/block operation sequence.
    #[test]
    fn nand_wear_monotone(seed in any::<u64>(), ops in proptest::collection::vec(0u8..3, 1..8)) {
        let mut c = chip(seed);
        let mut prev = c.mean_wear(BlockAddr::new(0));
        for op in ops {
            match op {
                0 => {
                    let _ = c.program_page(PageAddr::new(BlockAddr::new(0), 0), &vec![0u8; 512]);
                }
                1 => {
                    let _ = c.erase_block(BlockAddr::new(0));
                }
                _ => {
                    let _ = c.partial_erase_block(BlockAddr::new(0), Micros::new(10.0));
                }
            }
            let now = c.mean_wear(BlockAddr::new(0));
            prop_assert!(now >= prev - 1e-12);
            prev = now;
        }
    }
}
