//! Intrinsic NAND PUF mode: watermark-free counterfeit detection.
//!
//! NOR and ReRAM carry an *extrinsic* watermark deposited by wear. NAND
//! offers a third road the related work (Prabhu et al., "Extracting Device
//! Fingerprints from Flash Memory by Exploiting Physical Variations")
//! maps out: the die's **intrinsic** process variation is already a
//! fingerprint, no imprint required. A partial-program pulse around half
//! the nominal program time leaves each cell's threshold wherever its
//! intrinsic program speed put it — fast cells read 0, slow cells read 1 —
//! and that bit pattern is stable per die but different between dies.
//!
//! [`NandPuf`] turns the fingerprint into the same accept/reject
//! vocabulary the wear schemes use, via a **fuzzy commitment**: at
//! enrollment the signed [`WatermarkRecord`] is encoded with an extended
//! Hamming(16,11) code and XOR-masked with the fingerprint, producing
//! public helper data. Enrollment also applies the PUF literature's
//! *dark-bit masking*: cells whose senses were not unanimous (those whose
//! threshold landed within read noise of the reference) are excluded, and
//! the mask of selected cells ships with the helper — both are public;
//! neither reveals the fingerprint. Verification re-measures the masked
//! cells, unmasks the codeword, and decodes: on the enrolled die the few
//! remaining unstable bits are corrected block-by-block and the record's
//! CRC and manufacturer check out; on any other die the unmasked word is
//! noise, nearly every block shows channel errors, and the chip is
//! rejected — without the inspector ever holding a fingerprint database.
//! A die that clears the foreign threshold but still carries
//! uncorrectable blocks yields
//! [`InconclusiveReason::FuzzyMatchMarginal`] rather than a guess.

use flashmark_core::scheme::{ImprintCost, SchemeError, SchemeVerification, WatermarkScheme};
use flashmark_core::verify::{CounterfeitReason, InconclusiveReason, Verdict};
use flashmark_core::watermark::{TestStatus, Watermark, WatermarkRecord, RECORD_BITS};
use flashmark_ecc::{Code, Hamming};
use flashmark_physics::Micros;

use crate::chip::{NandChip, NandError};
use crate::geometry::{BlockAddr, PageAddr};

impl From<NandError> for SchemeError {
    fn from(e: NandError) -> Self {
        // NAND chip errors are all persistent (addressing, NOP discipline).
        SchemeError::Backend {
            scheme: "nand_puf",
            message: e.to_string(),
            transient: false,
        }
    }
}

/// Operating point of the intrinsic PUF.
#[derive(Debug, Clone, PartialEq)]
pub struct NandPufConfig {
    /// Partial-program pulse duration. Around `0.37 ×` the nominal
    /// program time (the fraction of the threshold span below the read
    /// reference), so roughly half the cells cross — maximum-entropy
    /// fingerprint.
    pub t_pp: Micros,
    /// Page reads per measurement; each fingerprint cell is the majority
    /// over this many senses (odd; suppresses read noise). Enrollment
    /// keeps only cells whose senses are *unanimous* (dark-bit masking).
    pub reads: u32,
    /// Independent erase/partial-program rounds at enrollment. Read noise
    /// varies within a round, but cycle-to-cycle *program* noise only
    /// shows between rounds: a cell whose intrinsic speed sits near the
    /// pulse boundary reads unanimously in one round and flips in the
    /// next. Masking over several rounds excludes those cells too.
    pub enroll_rounds: u32,
    /// Selected cells per fingerprint bit (odd; a second majority over
    /// disjoint cells suppresses residual near-threshold instability).
    pub cells_per_bit: u32,
    /// Accept when at most this fraction of code blocks carries more
    /// errors than the code corrects (uncorrectable blocks would corrupt
    /// the decoded record, so the default allows none).
    pub accept_frac: f64,
    /// Reject when at least this fraction of code blocks shows *any*
    /// channel error (corrected or uncorrectable). On the enrolled die
    /// nearly every block decodes untouched; on a foreign die the
    /// unmasked word is noise and ~31/32 of blocks are touched, so the
    /// two populations are far apart even for short records. More
    /// uncorrectable blocks than `accept_frac` but fewer touched blocks
    /// than this is marginal (inconclusive).
    pub reject_frac: f64,
}

impl Default for NandPufConfig {
    fn default() -> Self {
        Self {
            t_pp: Micros::new(16.5),
            reads: 7,
            enroll_rounds: 3,
            cells_per_bit: 3,
            accept_frac: 0.05,
            reject_frac: 0.5,
        }
    }
}

/// Parameters of a NAND PUF campaign: the operating point, the fingerprint
/// block, and the identity the inspector expects.
#[derive(Debug, Clone, PartialEq)]
pub struct NandPufParams {
    /// PUF operating point.
    pub config: NandPufConfig,
    /// The block whose process variation is the fingerprint.
    pub block: BlockAddr,
    /// Manufacturer ID the inspector expects in the record.
    pub manufacturer_id: u16,
    /// The record the manufacturer binds to the die at enrollment.
    pub record: WatermarkRecord,
}

/// PUF enrollment: the record plus the public helper data (stable-cell
/// mask and masked codeword). The reference fingerprint is kept for the
/// mismatch diagnostic only; verification needs just the helper.
#[derive(Debug, Clone, PartialEq)]
pub struct NandPufEnrollment {
    /// The die-sort record (identity, grade, status, CRC-16).
    pub record: WatermarkRecord,
    /// Dark-bit mask: block cell indices whose enrollment senses were
    /// unanimous, `cells_per_bit` per fingerprint bit.
    pub mask: Vec<u32>,
    /// Fuzzy-commitment helper data: `encode(record) XOR fingerprint`.
    pub helper: Vec<bool>,
    /// The enrollment-time fingerprint.
    pub reference: Vec<bool>,
}

/// One fingerprint measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NandPufReading {
    /// The majority-voted fingerprint bits (one per code channel bit).
    pub fingerprint: Vec<bool>,
}

/// The intrinsic NAND PUF behind the [`WatermarkScheme`] facade.
#[derive(Debug, Clone, Copy, Default)]
pub struct NandPuf;

fn code() -> Hamming {
    Hamming::extended()
}

/// Per-cell zero-vote counts over `reads` senses of a freshly
/// partial-programmed block (erase, one pulse, repeated page reads,
/// cleanup erase). Deterministic given the chip state — all noise flows
/// from the chip's op RNG.
fn measure_votes(
    chip: &mut NandChip,
    config: &NandPufConfig,
    block: BlockAddr,
) -> Result<Vec<u32>, NandError> {
    chip.erase_block(block)?;
    chip.partial_program_block(block, config.t_pp)?;
    let geometry = chip.geometry();
    let cells_per_page = geometry.cells_per_page();
    let pages = geometry.pages_per_block() as usize;
    let mut zero_votes = vec![0u32; geometry.cells_per_block()];
    for _ in 0..config.reads {
        for p in 0..pages {
            let data = chip.read_page(PageAddr::new(block, p as u32))?;
            for (i, byte) in data.iter().enumerate() {
                for bit in 0..8 {
                    if byte & (1 << bit) == 0 {
                        zero_votes[p * cells_per_page + i * 8 + bit] += 1;
                    }
                }
            }
        }
    }
    chip.erase_block(block)?;
    Ok(zero_votes)
}

/// Condenses masked cell votes into fingerprint bits: majority of
/// `senses` votes per cell, then majority over each `cells_per_bit`
/// group.
fn fingerprint_from_votes(
    votes: &[u32],
    mask: &[u32],
    cells_per_bit: u32,
    senses: u32,
) -> Vec<bool> {
    let group = cells_per_bit as usize;
    let cell_threshold = senses / 2;
    mask.chunks(group)
        .map(|cells| {
            let fast = cells
                .iter()
                .filter(|&&c| votes[c as usize] > cell_threshold)
                .count();
            fast * 2 > group
        })
        .collect()
}

impl WatermarkScheme for NandPuf {
    type Chip = NandChip;
    type Params = NandPufParams;
    type Enrollment = NandPufEnrollment;
    type Evidence = NandPufReading;

    fn name(&self) -> &'static str {
        "nand_puf"
    }

    fn imprints(&self) -> bool {
        false
    }

    fn enroll(
        &self,
        chip: &mut NandChip,
        params: &NandPufParams,
    ) -> Result<NandPufEnrollment, SchemeError> {
        let config = &params.config;
        // Dark-bit masking over several independent erase/program rounds:
        // only cells whose senses were unanimous across *every* round
        // carry fingerprint bits. A single round filters read noise;
        // extra rounds also filter cells that cycle-to-cycle program
        // noise lands on opposite sides of the read reference.
        let rounds = config.enroll_rounds.max(1);
        let mut votes = measure_votes(chip, config, params.block)?;
        for _ in 1..rounds {
            let round = measure_votes(chip, config, params.block)?;
            for (total, v) in votes.iter_mut().zip(round) {
                *total += v;
            }
        }
        let senses = config.reads * rounds;
        let channel_bits = code().encoded_len(RECORD_BITS);
        let cells_needed = channel_bits * config.cells_per_bit as usize;
        let mask: Vec<u32> = votes
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0 || v == senses)
            .map(|(i, _)| i as u32)
            .take(cells_needed)
            .collect();
        if mask.len() < cells_needed {
            return Err(SchemeError::Config(
                "not enough read-stable cells in the block for the fingerprint",
            ));
        }
        let reference = fingerprint_from_votes(&votes, &mask, config.cells_per_bit, senses);
        let codeword = code().encode(params.record.to_watermark().bits());
        debug_assert_eq!(codeword.len(), reference.len());
        let helper = codeword
            .iter()
            .zip(reference.iter())
            .map(|(&c, &w)| c ^ w)
            .collect();
        Ok(NandPufEnrollment {
            record: params.record,
            mask,
            helper,
            reference,
        })
    }

    fn imprint(
        &self,
        _chip: &mut NandChip,
        _params: &NandPufParams,
        _enrollment: &NandPufEnrollment,
    ) -> Result<ImprintCost, SchemeError> {
        // Intrinsic scheme: the fingerprint is the silicon itself.
        Ok(ImprintCost::free())
    }

    fn extract(
        &self,
        chip: &mut NandChip,
        params: &NandPufParams,
        enrollment: &NandPufEnrollment,
    ) -> Result<NandPufReading, SchemeError> {
        let votes = measure_votes(chip, &params.config, params.block)?;
        if enrollment.mask.iter().any(|&c| c as usize >= votes.len()) {
            return Err(SchemeError::Config(
                "helper mask addresses cells outside the fingerprint block",
            ));
        }
        Ok(NandPufReading {
            fingerprint: fingerprint_from_votes(
                &votes,
                &enrollment.mask,
                params.config.cells_per_bit,
                params.config.reads,
            ),
        })
    }

    fn verify(
        &self,
        chip: &mut NandChip,
        params: &NandPufParams,
        enrollment: &NandPufEnrollment,
    ) -> Result<SchemeVerification, SchemeError> {
        let reading = self.extract(chip, params, enrollment)?;
        let mismatch = self.evidence_mismatch(enrollment, &reading);
        if reading.fingerprint.len() != enrollment.helper.len() {
            return Err(SchemeError::Config(
                "helper data does not match the fingerprint geometry",
            ));
        }
        // Unmask: on the enrolled die this is the enrollment codeword plus
        // a few unstable bits; on any other die it is noise.
        let received: Vec<bool> = reading
            .fingerprint
            .iter()
            .zip(enrollment.helper.iter())
            .map(|(&w, &d)| w ^ d)
            .collect();
        let h = code();
        let block_bits = h.encoded_len(1);
        // Two block statistics with very different separations: blocks the
        // decoder had to touch at all (corrected or uncorrectable — the
        // foreign-die discriminator, since random noise lands on a clean
        // codeword only 1 time in 32) and blocks beyond correction (which
        // would corrupt the decoded record, so any of them blocks accept).
        let mut bad_blocks = 0usize;
        let mut touched_blocks = 0usize;
        let mut data = Vec::with_capacity(RECORD_BITS);
        for chunk in received.chunks(block_bits) {
            if let Ok(decoded) = h.decode(chunk) {
                if decoded.detected_uncorrectable {
                    bad_blocks += 1;
                    touched_blocks += 1;
                } else if decoded.corrected > 0 {
                    touched_blocks += 1;
                }
                data.extend_from_slice(&decoded.data);
            } else {
                bad_blocks += 1;
                touched_blocks += 1;
            }
        }
        let blocks = (received.len() / block_bits) as f64;
        let frac_bad = bad_blocks as f64 / blocks;
        let frac_touched = touched_blocks as f64 / blocks;
        let verdict = if frac_touched >= params.config.reject_frac {
            // The unmasked word is noise: this is not the enrolled die.
            Verdict::Counterfeit(CounterfeitReason::NoWatermark)
        } else if frac_bad > params.config.accept_frac {
            Verdict::Inconclusive(InconclusiveReason::FuzzyMatchMarginal)
        } else {
            data.truncate(RECORD_BITS);
            match Watermark::from_bits(data).and_then(|wm| WatermarkRecord::from_watermark(&wm)) {
                Ok(record) if record.manufacturer_id != params.manufacturer_id => {
                    Verdict::Counterfeit(CounterfeitReason::WrongManufacturer {
                        found: record.manufacturer_id,
                    })
                }
                Ok(record) if record.status == TestStatus::Reject => {
                    Verdict::Counterfeit(CounterfeitReason::RejectedDie)
                }
                Ok(_) => Verdict::Genuine,
                // Enough silent miscorrections to break the CRC.
                Err(_) => Verdict::Counterfeit(CounterfeitReason::SignatureMismatch),
            }
        };
        Ok(SchemeVerification {
            verdict,
            resolution: "fuzzy_match",
            mismatch,
        })
    }

    fn evidence_mismatch(
        &self,
        enrollment: &NandPufEnrollment,
        evidence: &NandPufReading,
    ) -> Option<f64> {
        (evidence.fingerprint.len() == enrollment.reference.len()).then(|| {
            let differing = evidence
                .fingerprint
                .iter()
                .zip(enrollment.reference.iter())
                .filter(|(a, b)| a != b)
                .count();
            differing as f64 / enrollment.reference.len() as f64
        })
    }

    fn wear_estimate(&self, chip: &mut NandChip, params: &NandPufParams) -> f64 {
        chip.mean_wear(params.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::NandGeometry;

    fn chip(seed: u64) -> NandChip {
        NandChip::new(NandGeometry::tiny(), seed)
    }

    fn params(manufacturer_id: u16, status: TestStatus) -> NandPufParams {
        NandPufParams {
            config: NandPufConfig::default(),
            block: BlockAddr::new(0),
            manufacturer_id,
            record: WatermarkRecord {
                manufacturer_id,
                die_id: 77,
                speed_grade: 3,
                status,
                year_week: 2032,
            },
        }
    }

    #[test]
    fn fingerprint_is_reproducible_on_the_same_die() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Accept);
        let mut c = chip(201);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let reading = scheme.extract(&mut c, &p, &enrollment).unwrap();
        let mismatch = scheme.evidence_mismatch(&enrollment, &reading).unwrap();
        assert!(mismatch < 0.03, "intra-die mismatch {mismatch}");
    }

    #[test]
    fn fingerprints_differ_between_dies() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Accept);
        let enrollment = scheme.enroll(&mut chip(202), &p).unwrap();
        let reading = scheme.extract(&mut chip(203), &p, &enrollment).unwrap();
        let mismatch = scheme.evidence_mismatch(&enrollment, &reading).unwrap();
        assert!(
            (0.3..=0.7).contains(&mismatch),
            "inter-die mismatch {mismatch}"
        );
    }

    #[test]
    fn enrolled_die_verifies_genuine() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Accept);
        let mut c = chip(204);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let v = scheme.verify(&mut c, &p, &enrollment).unwrap();
        assert_eq!(v.verdict, Verdict::Genuine, "mismatch {:?}", v.mismatch);
        assert_eq!(v.resolution, "fuzzy_match");
    }

    #[test]
    fn foreign_die_rejects() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Accept);
        let enrollment = scheme.enroll(&mut chip(205), &p).unwrap();
        let v = scheme.verify(&mut chip(206), &p, &enrollment).unwrap();
        assert!(
            matches!(v.verdict, Verdict::Counterfeit(_)),
            "verdict {:?}",
            v.verdict
        );
    }

    #[test]
    fn rejected_die_status_is_reported() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Reject);
        let mut c = chip(207);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let v = scheme.verify(&mut c, &p, &enrollment).unwrap();
        assert_eq!(
            v.verdict,
            Verdict::Counterfeit(CounterfeitReason::RejectedDie)
        );
    }

    #[test]
    fn wrong_manufacturer_is_reported() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Accept);
        let mut c = chip(208);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let mut inspector = p.clone();
        inspector.manufacturer_id = 0x9999;
        let v = scheme.verify(&mut c, &inspector, &enrollment).unwrap();
        assert_eq!(
            v.verdict,
            Verdict::Counterfeit(CounterfeitReason::WrongManufacturer { found: 0x4004 })
        );
    }

    #[test]
    fn scheme_is_intrinsic() {
        let scheme = NandPuf;
        assert_eq!(scheme.name(), "nand_puf");
        assert!(!scheme.imprints());
        let p = params(0x4004, TestStatus::Accept);
        let mut c = chip(209);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let cost = scheme.imprint(&mut c, &p, &enrollment).unwrap();
        assert_eq!(cost.cycles, 0);
    }

    #[test]
    fn mask_cells_are_unique_and_in_range() {
        let scheme = NandPuf;
        let p = params(0x4004, TestStatus::Accept);
        let mut c = chip(210);
        let enrollment = scheme.enroll(&mut c, &p).unwrap();
        let total = c.geometry().cells_per_block() as u32;
        let mut seen = std::collections::BTreeSet::new();
        for &cell in &enrollment.mask {
            assert!(cell < total);
            assert!(seen.insert(cell), "cell {cell} repeated in mask");
        }
    }
}
