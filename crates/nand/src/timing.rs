//! SLC NAND operation timing (typical datasheet values).

use flashmark_physics::Micros;

/// Operation durations of an SLC NAND part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandTimings {
    /// Page read (array → page register), `tR`.
    pub page_read: Micros,
    /// Page program, `tPROG`.
    pub page_program: Micros,
    /// Block erase, `tBERS`.
    pub block_erase: Micros,
    /// Erase-abort (reset) latency.
    pub abort_latency: Micros,
    /// Serial transfer of one byte over the 8-bit bus.
    pub byte_io: Micros,
}

impl NandTimings {
    /// Typical SLC small-block NAND timing.
    #[must_use]
    pub fn slc() -> Self {
        Self {
            page_read: Micros::new(25.0),
            page_program: Micros::new(200.0),
            block_erase: Micros::from_millis(2.0),
            abort_latency: Micros::new(5.0),
            byte_io: Micros::new(0.04),
        }
    }

    /// Full page read including transferring the data out.
    #[must_use]
    pub fn page_read_total(&self, bytes: usize) -> Micros {
        self.page_read + self.byte_io * bytes as f64
    }

    /// Full page program including transferring the data in.
    #[must_use]
    pub fn page_program_total(&self, bytes: usize) -> Micros {
        self.page_program + self.byte_io * bytes as f64
    }
}

impl Default for NandTimings {
    fn default() -> Self {
        Self::slc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_is_much_faster_to_erase_than_msp430_nor() {
        // tBERS 2 ms vs TERASE 25 ms: the paper's remark that stand-alone
        // parts would imprint far faster holds a fortiori for NAND.
        assert!(NandTimings::slc().block_erase.as_millis() < 5.0);
    }

    #[test]
    fn totals_include_io() {
        let t = NandTimings::slc();
        assert!(t.page_read_total(512).get() > t.page_read.get());
        assert!(t.page_program_total(512).get() > t.page_program.get());
    }
}
