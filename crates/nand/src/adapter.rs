//! Running the Flashmark procedures on NAND, unchanged.
//!
//! [`NandWordAdapter`] exposes a [`NandChip`] through the
//! [`FlashInterface`] trait the core algorithms are written against:
//!
//! * Flashmark *segment* ↦ NAND *block* (both are the erase granule),
//! * Flashmark *word* ↦ a 16-bit chunk of a page.
//!
//! Word reads go through the **page register**, as on real parts: the first
//! access to a page performs the array sense (`tR`); subsequent sequential
//! word reads stream from the register at bus speed. Accessing a different
//! page re-senses — so the N-read majority of `AnalyzeSegment` still sees
//! fresh noise each pass.

use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::{FlashGeometry, NorError, SegmentAddr, WordAddr};
use flashmark_physics::{Micros, Seconds};

use crate::chip::{NandChip, NandError};
use crate::geometry::{BlockAddr, PageAddr};

/// Adapts a [`NandChip`] to the word/segment [`FlashInterface`].
#[derive(Debug, Clone)]
pub struct NandWordAdapter {
    chip: NandChip,
    page_register: Option<(PageAddr, Vec<u8>)>,
}

fn convert(err: NandError) -> NorError {
    match err {
        NandError::BlockOutOfRange { block, total } => NorError::SegmentOutOfRange {
            segment: block,
            total,
        },
        NandError::PageOutOfRange { page, total } => NorError::WordOutOfRange {
            word: page,
            total: u64::from(total),
        },
        NandError::DataLength { got, expected } => NorError::BlockLengthMismatch { got, expected },
        NandError::NopLimitExceeded { .. } => NorError::AccessViolation { word: 0 },
    }
}

impl NandWordAdapter {
    /// Wraps a chip.
    #[must_use]
    pub fn new(chip: NandChip) -> Self {
        Self {
            chip,
            page_register: None,
        }
    }

    /// The wrapped chip.
    #[must_use]
    pub fn chip(&self) -> &NandChip {
        &self.chip
    }

    /// Mutable access to the wrapped chip.
    pub fn chip_mut(&mut self) -> &mut NandChip {
        self.page_register = None;
        &mut self.chip
    }

    /// Unwraps back into the chip.
    #[must_use]
    pub fn into_chip(self) -> NandChip {
        self.chip
    }

    fn words_per_page(&self) -> u32 {
        self.chip.geometry().bytes_per_page() / 2
    }

    fn page_of_word(&self, word: WordAddr) -> (PageAddr, usize) {
        let wpp = self.words_per_page();
        let wpb = wpp * self.chip.geometry().pages_per_block();
        let block = BlockAddr::new(word.index() / wpb);
        let within = word.index() % wpb;
        (PageAddr::new(block, within / wpp), (within % wpp) as usize)
    }
}

impl FlashInterface for NandWordAdapter {
    fn geometry(&self) -> FlashGeometry {
        let g = self.chip.geometry();
        FlashGeometry::new(1, g.blocks(), g.pages_per_block() * g.bytes_per_page())
            .expect("block dimensions are valid segment dimensions")
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.geometry().check_word(word)?;
        let (page, offset) = self.page_of_word(word);
        let hit = matches!(&self.page_register, Some((p, _)) if *p == page);
        if !hit {
            let data = self.chip.read_page(page).map_err(convert)?;
            self.page_register = Some((page, data));
        }
        let data = &self.page_register.as_ref().expect("just filled").1;
        Ok(u16::from_le_bytes([data[offset * 2], data[offset * 2 + 1]]))
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        self.geometry().check_word(word)?;
        self.page_register = None;
        let (page, offset) = self.page_of_word(word);
        let bytes = self.chip.geometry().bytes_per_page() as usize;
        let mut data = vec![0xFFu8; bytes];
        data[offset * 2] = (value & 0xFF) as u8;
        data[offset * 2 + 1] = (value >> 8) as u8;
        self.chip.program_page(page, &data).map_err(convert)
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        let expected = self.geometry().words_per_segment();
        if values.len() != expected {
            return Err(NorError::BlockLengthMismatch {
                got: values.len(),
                expected,
            });
        }
        self.page_register = None;
        let wpp = self.words_per_page() as usize;
        for (p, chunk) in values.chunks(wpp).enumerate() {
            let bytes: Vec<u8> = chunk.iter().flat_map(|w| w.to_le_bytes()).collect();
            self.chip
                .program_page(PageAddr::new(BlockAddr::new(seg.index()), p as u32), &bytes)
                .map_err(convert)?;
        }
        Ok(())
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        self.page_register = None;
        self.chip
            .erase_block(BlockAddr::new(seg.index()))
            .map_err(convert)
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        self.page_register = None;
        self.chip
            .partial_erase_block(BlockAddr::new(seg.index()), t_pe)
            .map_err(convert)
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.page_register = None;
        self.chip
            .erase_until_clean(BlockAddr::new(seg.index()))
            .map_err(convert)
    }

    fn elapsed(&self) -> Seconds {
        self.chip.elapsed()
    }
}

impl BulkStress for NandWordAdapter {
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        _timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        let expected = self.geometry().words_per_segment();
        if pattern.len() != expected {
            return Err(NorError::BlockLengthMismatch {
                got: pattern.len(),
                expected,
            });
        }
        self.page_register = None;
        let start = self.chip.elapsed();
        let bytes: Vec<u8> = pattern.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.chip
            .bulk_stress(BlockAddr::new(seg.index()), &bytes, cycles)
            .map_err(convert)?;
        Ok(self.chip.elapsed() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::NandGeometry;

    fn adapter() -> NandWordAdapter {
        NandWordAdapter::new(NandChip::new(NandGeometry::tiny(), 0xADA))
    }

    #[test]
    fn geometry_maps_blocks_to_segments() {
        let a = adapter();
        let g = a.geometry();
        assert_eq!(g.total_segments(), 4);
        assert_eq!(g.cells_per_segment(), 16_384);
        assert_eq!(g.words_per_segment(), 1024);
    }

    #[test]
    fn word_roundtrip_through_pages() {
        let mut a = adapter();
        a.program_word(WordAddr::new(0), 0x5443).unwrap();
        assert_eq!(a.read_word(WordAddr::new(0)).unwrap(), 0x5443);
        // A word on another page.
        a.program_word(WordAddr::new(300), 0xBEEF).unwrap();
        assert_eq!(a.read_word(WordAddr::new(300)).unwrap(), 0xBEEF);
        // First word still intact.
        assert_eq!(a.read_word(WordAddr::new(0)).unwrap(), 0x5443);
    }

    #[test]
    fn page_register_serves_sequential_reads() {
        let mut a = adapter();
        let t0 = a.elapsed();
        let _ = a.read_word(WordAddr::new(0)).unwrap();
        let after_first = a.elapsed();
        let _ = a.read_word(WordAddr::new(1)).unwrap();
        let after_second = a.elapsed();
        // The first read pays the array sense; the second streams from the
        // page register (sense time is 25 µs, so the gap is obvious).
        assert!((after_first - t0).get() > (after_second - after_first).get() * 3.0);
    }

    #[test]
    fn program_invalidates_page_register() {
        let mut a = adapter();
        let _ = a.read_word(WordAddr::new(0)).unwrap();
        a.program_word(WordAddr::new(1), 0x0000).unwrap();
        assert_eq!(a.read_word(WordAddr::new(1)).unwrap(), 0x0000);
    }

    #[test]
    fn erase_segment_erases_block() {
        let mut a = adapter();
        a.program_word(WordAddr::new(7), 0x0).unwrap();
        a.erase_segment(SegmentAddr::new(0)).unwrap();
        assert_eq!(a.read_word(WordAddr::new(7)).unwrap(), 0xFFFF);
    }

    #[test]
    fn block_length_checked() {
        let mut a = adapter();
        assert!(matches!(
            a.program_block(SegmentAddr::new(0), &[0u16; 3]),
            Err(NorError::BlockLengthMismatch { .. })
        ));
    }
}
