//! NAND geometry: blocks (erase granule) of pages (program/read granule).

use core::fmt;

/// Index of one NAND block — the erase granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u32);

impl BlockAddr {
    /// Creates a block address.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The linear block index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// A page within a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr {
    /// Containing block.
    pub block: BlockAddr,
    /// Page index within the block.
    pub page: u32,
}

impl PageAddr {
    /// Creates a page address.
    #[must_use]
    pub const fn new(block: BlockAddr, page: u32) -> Self {
        Self { block, page }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/pg#{}", self.block, self.page)
    }
}

/// Shape of a NAND device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NandGeometry {
    blocks: u32,
    pages_per_block: u32,
    bytes_per_page: u32,
}

impl NandGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(blocks: u32, pages_per_block: u32, bytes_per_page: u32) -> Self {
        assert!(
            blocks > 0 && pages_per_block > 0 && bytes_per_page > 0,
            "all NAND dimensions must be non-zero"
        );
        Self {
            blocks,
            pages_per_block,
            bytes_per_page,
        }
    }

    /// A classic small-block SLC layout: 512-byte pages, 32 pages per block.
    #[must_use]
    pub fn small_block(blocks: u32) -> Self {
        Self::new(blocks, 32, 512)
    }

    /// A deliberately tiny layout for fast tests: 512-byte pages, 4 pages
    /// per block (one block = 16 Kib of cells).
    #[must_use]
    pub fn tiny() -> Self {
        Self::new(4, 4, 512)
    }

    /// Number of blocks.
    #[must_use]
    pub const fn blocks(&self) -> u32 {
        self.blocks
    }

    /// Pages per block.
    #[must_use]
    pub const fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Bytes per page.
    #[must_use]
    pub const fn bytes_per_page(&self) -> u32 {
        self.bytes_per_page
    }

    /// Cells (bits) per page.
    #[must_use]
    pub const fn cells_per_page(&self) -> usize {
        self.bytes_per_page as usize * 8
    }

    /// Cells per block.
    #[must_use]
    pub const fn cells_per_block(&self) -> usize {
        self.cells_per_page() * self.pages_per_block as usize
    }

    /// Total device capacity in bytes (main array, no spare).
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64 * self.bytes_per_page as u64
    }

    /// Global cell index of bit `bit` of `page`.
    #[must_use]
    pub fn cell_index(&self, page: PageAddr, bit: usize) -> u64 {
        debug_assert!(bit < self.cells_per_page());
        (page.block.index() as u64 * self.pages_per_block as u64 + page.page as u64)
            * self.cells_per_page() as u64
            + bit as u64
    }
}

impl fmt::Display for NandGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocks x {} pages x {} B",
            self.blocks, self.pages_per_block, self.bytes_per_page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_block_shape() {
        let g = NandGeometry::small_block(64);
        assert_eq!(g.cells_per_page(), 4096);
        assert_eq!(g.cells_per_block(), 4096 * 32);
        assert_eq!(g.total_bytes(), 64 * 32 * 512);
    }

    #[test]
    fn tiny_shape() {
        let g = NandGeometry::tiny();
        assert_eq!(g.blocks(), 4);
        assert_eq!(g.cells_per_block(), 16_384);
    }

    #[test]
    fn cell_indices_are_disjoint_across_pages() {
        let g = NandGeometry::tiny();
        let a = g.cell_index(PageAddr::new(BlockAddr::new(0), 0), 4095);
        let b = g.cell_index(PageAddr::new(BlockAddr::new(0), 1), 0);
        assert_eq!(b, a + 1);
        let c = g.cell_index(PageAddr::new(BlockAddr::new(1), 0), 0);
        assert_eq!(c, g.cells_per_block() as u64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = NandGeometry::new(0, 32, 512);
    }

    #[test]
    fn display() {
        assert_eq!(
            NandGeometry::tiny().to_string(),
            "4 blocks x 4 pages x 512 B"
        );
        assert_eq!(
            PageAddr::new(BlockAddr::new(2), 3).to_string(),
            "blk#2/pg#3"
        );
    }
}
