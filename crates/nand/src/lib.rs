#![forbid(unsafe_code)]
//! SLC NAND flash emulation and the Flashmark-on-NAND adapter.
//!
//! The paper demonstrates Flashmark on embedded NOR but concludes that "the
//! proposed method is applicable broadly to NOR and NAND flash memories".
//! This crate substantiates that claim:
//!
//! * [`NandChip`] emulates a small-block SLC NAND part: page-granular reads
//!   and programs (with the usual partial-page-program NOP limit), block
//!   erase, and — the Flashmark enabler — a block erase that can be
//!   **aborted** after a partial-erase time. Cells reuse the calibrated
//!   [`flashmark_physics`] models (NAND-typical timing/endurance preset).
//! * [`NandWordAdapter`] implements the
//!   [`FlashInterface`](flashmark_nor::interface::FlashInterface) trait over
//!   a chip, mapping a flash *block* to a Flashmark *segment* and 16-bit
//!   page chunks to words — so `Imprinter`, `Extractor`,
//!   `CharacterizeSegment`, and `Verifier` run on NAND **unchanged**.
//!
//! # Example
//!
//! ```
//! use flashmark_nand::{NandChip, NandGeometry, NandWordAdapter};
//! use flashmark_nor::interface::FlashInterface;
//! use flashmark_nor::WordAddr;
//!
//! # fn main() -> Result<(), flashmark_nor::NorError> {
//! let chip = NandChip::new(NandGeometry::tiny(), 0xDA7A);
//! let mut flash = NandWordAdapter::new(chip);
//! flash.program_word(WordAddr::new(0), 0x5443)?; // "TC"
//! assert_eq!(flash.read_word(WordAddr::new(0))?, 0x5443);
//! # Ok(())
//! # }
//! ```

pub mod adapter;
pub mod chip;
pub mod geometry;
pub mod puf;
pub mod timing;

pub use adapter::NandWordAdapter;
pub use chip::{NandChip, NandError};
pub use geometry::{BlockAddr, NandGeometry, PageAddr};
pub use puf::{NandPuf, NandPufConfig, NandPufEnrollment, NandPufParams, NandPufReading};
pub use timing::NandTimings;
