//! The NAND chip: page register semantics, NOP limits, abortable block
//! erase.

use std::collections::BTreeMap;

use flashmark_nor::timing::SimClock;
use flashmark_physics::cell::{sense, CellState, CellStatics};
use flashmark_physics::erase::apply_erase;
use flashmark_physics::noise::PulseNoise;
use flashmark_physics::program::{apply_partial_program, apply_program};
use flashmark_physics::rng::{mix2, SplitMix64};
use flashmark_physics::variation::Normal;
use flashmark_physics::wear::bulk_pe_stress;
use flashmark_physics::{Micros, PhysicsParams, Seconds};

use crate::geometry::{BlockAddr, NandGeometry, PageAddr};
use crate::timing::NandTimings;

/// Maximum partial-page programs between erases (classic SLC NOP limit).
pub const NOP_LIMIT: u8 = 4;

/// Errors from the NAND chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// Block index past the device.
    BlockOutOfRange {
        /// Offending block.
        block: u32,
        /// Device block count.
        total: u32,
    },
    /// Page index past the block.
    PageOutOfRange {
        /// Offending page.
        page: u32,
        /// Pages per block.
        total: u32,
    },
    /// Page buffer length does not match the page size.
    DataLength {
        /// Bytes supplied.
        got: usize,
        /// Bytes per page.
        expected: usize,
    },
    /// More partial-page programs than the NOP limit allows.
    NopLimitExceeded {
        /// The limit.
        limit: u8,
    },
}

impl core::fmt::Display for NandError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BlockOutOfRange { block, total } => {
                write!(f, "block {block} out of range (device has {total})")
            }
            Self::PageOutOfRange { page, total } => {
                write!(f, "page {page} out of range (block has {total})")
            }
            Self::DataLength { got, expected } => {
                write!(f, "page buffer has {got} bytes, page holds {expected}")
            }
            Self::NopLimitExceeded { limit } => {
                write!(
                    f,
                    "page programmed more than {limit} times since the last erase"
                )
            }
        }
    }
}

impl std::error::Error for NandError {}

#[derive(Debug, Clone)]
struct BlockCells {
    statics: Vec<CellStatics>,
    states: Vec<CellState>,
    nop_counts: Vec<u8>,
}

/// A NAND-flavoured physics preset: same wear physics as the NOR model but
/// with the slightly wider cell-to-cell variation typical of NAND arrays.
#[must_use]
pub fn nand_physics() -> PhysicsParams {
    let mut p = PhysicsParams::msp430_like();
    p.vth_erased = Normal::new(1.8, 0.08);
    p.vth_programmed = Normal::new(5.6, 0.11);
    p.read_noise_sigma = 0.05;
    p
}

/// One simulated SLC NAND chip.
#[derive(Debug, Clone)]
pub struct NandChip {
    params: PhysicsParams,
    geometry: NandGeometry,
    timings: NandTimings,
    chip_seed: u64,
    blocks: BTreeMap<u32, BlockCells>,
    op_rng: SplitMix64,
    clock: SimClock,
}

impl NandChip {
    /// Creates a chip with NAND-preset physics.
    #[must_use]
    pub fn new(geometry: NandGeometry, chip_seed: u64) -> Self {
        Self::with_params(nand_physics(), geometry, NandTimings::slc(), chip_seed)
    }

    /// Creates a chip with explicit physics/timing.
    #[must_use]
    pub fn with_params(
        params: PhysicsParams,
        geometry: NandGeometry,
        timings: NandTimings,
        chip_seed: u64,
    ) -> Self {
        Self {
            params,
            geometry,
            timings,
            chip_seed,
            blocks: BTreeMap::new(),
            op_rng: SplitMix64::new(mix2(chip_seed, 0x0DA1)),
            clock: SimClock::new(),
        }
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> NandGeometry {
        self.geometry
    }

    /// The timing set.
    #[must_use]
    pub fn timings(&self) -> &NandTimings {
        &self.timings
    }

    /// Simulated time elapsed on this chip.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.clock.now()
    }

    fn check_block(&self, block: BlockAddr) -> Result<(), NandError> {
        if block.index() < self.geometry.blocks() {
            Ok(())
        } else {
            Err(NandError::BlockOutOfRange {
                block: block.index(),
                total: self.geometry.blocks(),
            })
        }
    }

    fn check_page(&self, page: PageAddr) -> Result<(), NandError> {
        self.check_block(page.block)?;
        if page.page < self.geometry.pages_per_block() {
            Ok(())
        } else {
            Err(NandError::PageOutOfRange {
                page: page.page,
                total: self.geometry.pages_per_block(),
            })
        }
    }

    fn block_cells(&mut self, block: BlockAddr) -> &mut BlockCells {
        let n = self.geometry.cells_per_block();
        let base = block.index() as u64 * n as u64;
        let params = &self.params;
        let seed = self.chip_seed;
        let pages = self.geometry.pages_per_block() as usize;
        self.blocks.entry(block.index()).or_insert_with(|| {
            let statics: Vec<CellStatics> = (0..n as u64)
                .map(|i| CellStatics::derive(params, seed, base + i))
                .collect();
            let states = statics.iter().map(CellState::fresh).collect();
            BlockCells {
                statics,
                states,
                nop_counts: vec![0; pages],
            }
        })
    }

    /// Reads one page (one array sense + serial out).
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn read_page(&mut self, page: PageAddr) -> Result<Vec<u8>, NandError> {
        self.check_page(page)?;
        let params = self.params.clone();
        let cells_per_page = self.geometry.cells_per_page();
        let bytes = self.geometry.bytes_per_page() as usize;
        let mut rng = self
            .op_rng
            .fork(mix2(page.block.index() as u64, page.page as u64));
        let cells = self.block_cells(page.block);
        let base = page.page as usize * cells_per_page;
        let mut out = vec![0u8; bytes];
        for (i, byte) in out.iter_mut().enumerate() {
            for bit in 0..8 {
                if sense(&params, &cells.states[base + i * 8 + bit], &mut rng) {
                    *byte |= 1 << bit;
                }
            }
        }
        self.clock.advance(self.timings.page_read_total(bytes));
        Ok(out)
    }

    /// Programs a page (0-bits only, AND semantics). Each page may be
    /// programmed at most [`NOP_LIMIT`] times between erases.
    ///
    /// # Errors
    ///
    /// Address, length, or NOP-limit errors.
    pub fn program_page(&mut self, page: PageAddr, data: &[u8]) -> Result<(), NandError> {
        self.check_page(page)?;
        let bytes = self.geometry.bytes_per_page() as usize;
        if data.len() != bytes {
            return Err(NandError::DataLength {
                got: data.len(),
                expected: bytes,
            });
        }
        let params = self.params.clone();
        let cells_per_page = self.geometry.cells_per_page();
        let mut rng = self.op_rng.fork(mix2(
            0x9806,
            mix2(page.block.index() as u64, page.page as u64),
        ));
        let total = self.timings.page_program_total(bytes);
        let cells = self.block_cells(page.block);
        let nop = &mut cells.nop_counts[page.page as usize];
        if *nop >= NOP_LIMIT {
            return Err(NandError::NopLimitExceeded { limit: NOP_LIMIT });
        }
        *nop += 1;
        let base = page.page as usize * cells_per_page;
        for (i, &byte) in data.iter().enumerate() {
            for bit in 0..8 {
                if byte & (1 << bit) == 0 {
                    let idx = base + i * 8 + bit;
                    apply_program(
                        &params,
                        &cells.statics[idx],
                        &mut cells.states[idx],
                        &mut rng,
                    );
                }
            }
        }
        self.clock.advance(total);
        Ok(())
    }

    /// Applies an erase pulse of `t` to a whole block; returns `true` once
    /// every cell has fully erased. Resets the block's NOP counters.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn erase_pulse(&mut self, block: BlockAddr, t: Micros) -> Result<bool, NandError> {
        self.check_block(block)?;
        let params = self.params.clone();
        let pulse = PulseNoise::draw(&params, &mut self.op_rng);
        let base = block.index() as u64 * self.geometry.cells_per_block() as u64;
        let cells = self.block_cells(block);
        let mut done = true;
        for (i, (st, state)) in cells
            .statics
            .iter()
            .zip(cells.states.iter_mut())
            .enumerate()
        {
            let eff = pulse.effective_us(&params, base + i as u64, t.get());
            done &= apply_erase(&params, st, state, eff).completed;
        }
        cells.nop_counts.fill(0);
        Ok(done)
    }

    /// Full block erase (`tBERS` always completes the physics).
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn erase_block(&mut self, block: BlockAddr) -> Result<(), NandError> {
        let done = self.erase_pulse(block, self.timings.block_erase)?;
        debug_assert!(done, "nominal block erase did not complete");
        self.clock.advance(self.timings.block_erase);
        Ok(())
    }

    /// Starts a block erase and aborts (reset command) after `t`.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn partial_erase_block(&mut self, block: BlockAddr, t: Micros) -> Result<(), NandError> {
        self.erase_pulse(block, t)?;
        self.clock.advance(t + self.timings.abort_latency);
        Ok(())
    }

    /// Erases with early exit: short pulses, polling after each, until the
    /// block reads clean. Returns erase time spent.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn erase_until_clean(&mut self, block: BlockAddr) -> Result<Micros, NandError> {
        let step = Micros::new(25.0);
        let mut spent = Micros::new(0.0);
        for _ in 0..4096 {
            let done = self.erase_pulse(block, step)?;
            spent += step;
            self.clock.advance(step + self.timings.abort_latency);
            if done {
                break;
            }
        }
        Ok(spent)
    }

    /// Applies a *partial program* pulse of `t_pp` to every cell of a block
    /// and aborts (reset command): each cell's threshold rises in
    /// proportion to its intrinsic program speed, so after a pulse around
    /// half the nominal program time, which cells read 0 is a fingerprint
    /// of the die's process variation — the intrinsic-PUF enrollment
    /// primitive. A test-mode operation: it bypasses the page registers
    /// and does not count toward the NOP limit.
    ///
    /// # Errors
    ///
    /// Address errors.
    pub fn partial_program_block(
        &mut self,
        block: BlockAddr,
        t_pp: Micros,
    ) -> Result<(), NandError> {
        self.check_block(block)?;
        let params = self.params.clone();
        let mut rng = self.op_rng.fork(mix2(0x9A27, block.index() as u64));
        let cells = self.block_cells(block);
        for (st, state) in cells.statics.iter().zip(cells.states.iter_mut()) {
            apply_partial_program(&params, st, state, t_pp.get(), &mut rng);
        }
        self.clock.advance(t_pp + self.timings.abort_latency);
        Ok(())
    }

    /// Noise-free logical value of every cell of a block (ground truth).
    pub fn ideal_bits(&mut self, block: BlockAddr) -> Vec<bool> {
        let params = self.params.clone();
        let cells = self.block_cells(block);
        cells.states.iter().map(|s| s.ideal_bit(&params)).collect()
    }

    /// Mean wear over a block's cells (ground truth), in cycles.
    pub fn mean_wear(&mut self, block: BlockAddr) -> f64 {
        let cells = self.block_cells(block);
        let n = cells.states.len() as f64;
        cells.states.iter().map(|s| s.wear_cycles / n).sum()
    }

    /// Closed-form stress: `cycles` erase+program cycles of `pattern` (one
    /// byte-per-cell-byte over the whole block). The simulated clock
    /// advances by `cycles × (block erase + per-page programs)`.
    ///
    /// # Errors
    ///
    /// Address/length errors.
    pub fn bulk_stress(
        &mut self,
        block: BlockAddr,
        pattern: &[u8],
        cycles: u64,
    ) -> Result<(), NandError> {
        self.check_block(block)?;
        let expected = self.geometry.cells_per_block() / 8;
        if pattern.len() != expected {
            return Err(NandError::DataLength {
                got: pattern.len(),
                expected,
            });
        }
        let params = self.params.clone();
        let page_bytes = self.geometry.bytes_per_page() as usize;
        let pages = self.geometry.pages_per_block() as f64;
        let cells = self.block_cells(block);
        for (i, &byte) in pattern.iter().enumerate() {
            for bit in 0..8 {
                let idx = i * 8 + bit;
                let programmed = byte & (1 << bit) == 0;
                bulk_pe_stress(
                    &params,
                    &cells.statics[idx],
                    &mut cells.states[idx],
                    cycles as f64,
                    programmed,
                    programmed,
                );
            }
        }
        let per_cycle =
            self.timings.block_erase + self.timings.page_program_total(page_bytes) * pages;
        self.clock.advance(per_cycle * cycles as f64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> NandChip {
        NandChip::new(NandGeometry::tiny(), 0xDA7A)
    }

    fn page0() -> PageAddr {
        PageAddr::new(BlockAddr::new(0), 0)
    }

    #[test]
    fn fresh_chip_reads_all_ones() {
        let mut c = chip();
        assert!(c.read_page(page0()).unwrap().iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn program_read_roundtrip() {
        let mut c = chip();
        let mut data = vec![0xFFu8; 512];
        data[0] = 0x54;
        data[1] = 0x43;
        c.program_page(page0(), &data).unwrap();
        assert_eq!(c.read_page(page0()).unwrap(), data);
    }

    #[test]
    fn nop_limit_enforced() {
        let mut c = chip();
        let data = vec![0xFFu8; 512];
        for _ in 0..NOP_LIMIT {
            c.program_page(page0(), &data).unwrap();
        }
        assert_eq!(
            c.program_page(page0(), &data).unwrap_err(),
            NandError::NopLimitExceeded { limit: NOP_LIMIT }
        );
        // Erase resets the counter.
        c.erase_block(BlockAddr::new(0)).unwrap();
        assert!(c.program_page(page0(), &data).is_ok());
    }

    #[test]
    fn erase_restores_ones() {
        let mut c = chip();
        c.program_page(page0(), &vec![0u8; 512]).unwrap();
        c.erase_block(BlockAddr::new(0)).unwrap();
        assert!(c.read_page(page0()).unwrap().iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn partial_erase_leaves_mixed_state() {
        let mut c = chip();
        for p in 0..4 {
            c.program_page(PageAddr::new(BlockAddr::new(0), p), &vec![0u8; 512])
                .unwrap();
        }
        c.partial_erase_block(BlockAddr::new(0), Micros::new(20.5))
            .unwrap();
        let ones = c
            .ideal_bits(BlockAddr::new(0))
            .iter()
            .filter(|&&b| b)
            .count();
        assert!((1000..16_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn bulk_stress_wears_block() {
        let mut c = chip();
        let pattern = vec![0u8; 2048];
        c.bulk_stress(BlockAddr::new(1), &pattern, 30_000).unwrap();
        assert!(c.mean_wear(BlockAddr::new(1)) > 29_000.0);
        // Wear slows the erase down.
        for p in 0..4 {
            let _ = c.program_page(PageAddr::new(BlockAddr::new(1), p), &vec![0u8; 512]);
        }
        // A fresh-block erase time no longer suffices.
        let done = c.erase_pulse(BlockAddr::new(1), Micros::new(40.0)).unwrap();
        assert!(!done);
    }

    #[test]
    fn erase_until_clean_converges() {
        let mut c = chip();
        c.program_page(page0(), &vec![0u8; 512]).unwrap();
        let took = c.erase_until_clean(BlockAddr::new(0)).unwrap();
        assert!(took.get() <= 200.0, "fresh block took {took}");
        assert!(c.ideal_bits(BlockAddr::new(0)).iter().all(|&b| b));
    }

    #[test]
    fn address_validation() {
        let mut c = chip();
        assert!(matches!(
            c.read_page(PageAddr::new(BlockAddr::new(9), 0)),
            Err(NandError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            c.read_page(PageAddr::new(BlockAddr::new(0), 9)),
            Err(NandError::PageOutOfRange { .. })
        ));
        assert!(matches!(
            c.program_page(page0(), &[0u8; 3]),
            Err(NandError::DataLength { .. })
        ));
    }

    #[test]
    fn clock_advances() {
        let mut c = chip();
        let t0 = c.elapsed();
        let _ = c.read_page(page0());
        assert!(c.elapsed() > t0);
    }
}
