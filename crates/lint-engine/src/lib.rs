#![forbid(unsafe_code)]
//! Token-aware static analysis for the Flashmark workspace.
//!
//! Every guarantee this reproduction ships — byte-identical artifacts at
//! any `--threads` count, replayable fault schedules, the 0-flip campaign
//! results — rests on determinism discipline that a line-oriented text
//! scanner can only spot-check. This crate is the real static-analysis
//! layer behind `cargo xtask lint`:
//!
//! * [`lexer`] — a Rust lexer that strips comments, strings, raw strings
//!   and char literals *correctly*, with token spans preserved;
//! * [`scope`] — file classification (which rule families apply where)
//!   and a lightweight item/scope parser (`#[cfg(test)]` regions,
//!   `macro_rules!` bodies, per-function scopes);
//! * [`rules`] — the six rule families ported from the old scanner plus
//!   the families a text pass cannot express: seed-dataflow, map-order
//!   determinism, merge-commutativity, the unsafe/unchecked audit, and
//!   workspace pub-API liveness;
//! * [`suppress`] — `// flashmark-lint: allow(<rule>) -- <justification>`
//!   comments (justification mandatory);
//! * [`finding`] — findings, the deterministic JSON report
//!   (`results/lint_report.json`), and the committed baseline.
//!
//! The engine is plain `std`, fully offline, and deterministic: the same
//! sources produce a byte-identical report on every run.
//!
//! # Example
//!
//! ```
//! use flashmark_lint_engine::{analyze, SourceFile};
//!
//! let files = vec![SourceFile {
//!     path: "crates/nor/src/seeded.rs".to_string(),
//!     source: "/// Doc.\npub fn hot(v: Option<u32>) -> u32 { v.unwrap() }\n".to_string(),
//! }];
//! let report = analyze(&files);
//! assert_eq!(report.findings.len(), 2); // panic-free + pub-liveness
//! ```

pub mod finding;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod suppress;

pub use finding::{baseline_from_json, baseline_to_json, BaselineEntry, Finding, Report, Rule};
pub use scope::FileScope;

/// One workspace source file handed to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full source text.
    pub source: String,
}

/// Analyzes a set of workspace sources.
///
/// Pass **every** `.rs` file in the workspace (library sources, binary
/// targets, integration tests, examples): files outside the lint scope
/// are not themselves linted, but they feed the pub-liveness reference
/// index — a `pub` item used only from a test or example is live.
///
/// The returned report is normalized (sorted) and carries suppression
/// accounting; the caller applies the baseline.
#[must_use]
pub fn analyze(files: &[SourceFile]) -> Report {
    let mut report = Report::default();
    let mut index = rules::liveness::ReferenceIndex::default();
    let mut defs = Vec::new();
    let mut all_suppressions: Vec<(String, Vec<suppress::Suppression>)> = Vec::new();
    let mut findings = Vec::new();

    // Deterministic order regardless of how the caller collected files.
    let mut sorted: Vec<&SourceFile> = files.iter().collect();
    sorted.sort_by(|a, b| a.path.cmp(&b.path));

    for file in sorted {
        let tokens = lexer::lex(&file.source);
        index.add_file(&tokens);
        let Some(scope) = FileScope::classify(&file.path) else {
            continue;
        };
        report.files_checked += 1;
        let structure = scope::Structure::analyze(&tokens);
        let (suppressions, suppression_problems) = suppress::parse(&scope.path, &tokens);
        findings.extend(suppression_problems);
        findings.extend(rules::run_file(&scope, &tokens, &structure));
        if scope.rules.pub_liveness {
            defs.extend(rules::liveness::collect_defs(
                &scope.path,
                &tokens,
                &structure,
            ));
        }
        all_suppressions.push((scope.path.clone(), suppressions));
    }

    rules::liveness::check(&defs, &index, &mut findings);

    // Apply suppressions file by file (a suppression only ever covers
    // findings in its own file).
    let mut kept = Vec::new();
    for finding in findings {
        let suppressions = all_suppressions
            .iter()
            .find(|(path, _)| *path == finding.file)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[]);
        let covered = finding.rule != Rule::Suppression
            && suppressions
                .iter()
                .any(|s| s.covers(finding.rule, finding.line));
        if covered {
            report.suppressed += 1;
        } else {
            kept.push(finding);
        }
    }
    report.findings = kept;
    report.normalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, source: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            source: source.to_string(),
        }
    }

    #[test]
    fn end_to_end_injected_violation_is_found() {
        let report = analyze(&[file(
            "crates/physics/src/seeded.rs",
            "/// Doc.\npub fn noise_stream() -> SplitMix64 {\n    SplitMix64::new(0xBAD_5EED_u64)\n}\n",
        )]);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::SeedDataflow && f.line == 3));
    }

    #[test]
    fn suppression_with_justification_silences() {
        let src = "/// Doc.\npub fn noise_stream(seed: u64) -> SplitMix64 {\n    // flashmark-lint: allow(seed-dataflow) -- fixture stream, seed threaded by caller\n    SplitMix64::new(0x1234)\n}\n";
        let report = analyze(&[file("crates/physics/src/seeded.rs", src)]);
        assert!(report.findings.iter().all(|f| f.rule != Rule::SeedDataflow));
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn unjustified_suppression_does_not_silence() {
        let src = "/// Doc.\npub fn noise_stream(seed: u64) -> SplitMix64 {\n    // flashmark-lint: allow(seed-dataflow)\n    SplitMix64::new(0x1234)\n}\n";
        let report = analyze(&[file("crates/physics/src/seeded.rs", src)]);
        assert!(report.findings.iter().any(|f| f.rule == Rule::SeedDataflow));
        assert!(report.findings.iter().any(|f| f.rule == Rule::Suppression));
        assert_eq!(report.suppressed, 0);
    }

    #[test]
    fn cross_file_liveness_sees_test_references() {
        let lib = file(
            "crates/nor/src/thing.rs",
            "/// Doc.\npub fn exercised_by_test() {}\n/// Doc.\npub fn truly_orphaned() {}\n",
        );
        let test = file(
            "crates/nor/tests/t.rs",
            "#[test]\nfn t() { exercised_by_test(); }\n",
        );
        let report = analyze(&[lib, test]);
        let liveness: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PubLiveness)
            .collect();
        assert_eq!(liveness.len(), 1);
        assert!(liveness[0].message.contains("truly_orphaned"));
    }

    #[test]
    fn report_is_byte_identical_across_runs() {
        let files = vec![
            file(
                "crates/nor/src/a.rs",
                "pub fn undocumented_thing() { x.unwrap(); }\n",
            ),
            file(
                "crates/core/src/b.rs",
                "fn f() { let m = HashMap::new(); }\n",
            ),
        ];
        let a = analyze(&files).to_json();
        let mut reversed: Vec<SourceFile> = files.clone();
        reversed.reverse();
        let b = analyze(&reversed).to_json();
        assert_eq!(a, b, "input order must not matter");
    }

    #[test]
    fn files_checked_counts_only_linted_files() {
        let report = analyze(&[
            file("crates/nor/src/a.rs", "fn f() {}\n"),
            file("crates/nor/tests/t.rs", "fn t() {}\n"),
            file("examples/e.rs", "fn main() {}\n"),
        ]);
        assert_eq!(report.files_checked, 1);
    }
}
