//! Suppression comments.
//!
//! Syntax: `// flashmark-lint: allow(rule-a, rule-b) -- justification`
//!
//! A suppression silences findings of the listed rules on its own line
//! (trailing-comment style) and on the following line (comment-above
//! style). The justification after `--` is **mandatory and non-empty**: a
//! suppression without one is itself reported under the `suppression`
//! rule and has no effect, so the gate cannot be waved through silently.

use crate::finding::{Finding, Rule};
use crate::lexer::{Token, TokenKind};

/// The marker every suppression comment starts with (after `//`).
const MARKER: &str = "flashmark-lint:";

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The silenced rules.
    pub rules: Vec<Rule>,
    /// The 1-based line the comment sits on (it also covers `line + 1`).
    pub line: u32,
    /// The justification text (guaranteed non-empty).
    pub justification: String,
}

impl Suppression {
    /// Whether this suppression covers a finding of `rule` at `line`.
    #[must_use]
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        (line == self.line || line == self.line + 1) && self.rules.contains(&rule)
    }
}

/// Extracts suppressions from a token stream. Malformed or unjustified
/// suppressions are returned as findings instead of suppressions.
#[must_use]
pub fn parse(file: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut suppressions = Vec::new();
    let mut findings = Vec::new();
    for token in tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let body = token.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        match parse_body(rest.trim()) {
            Ok((rules, justification)) => suppressions.push(Suppression {
                rules,
                line: token.line,
                justification,
            }),
            Err(problem) => findings.push(Finding {
                file: file.to_string(),
                line: token.line,
                rule: Rule::Suppression,
                message: problem,
            }),
        }
    }
    (suppressions, findings)
}

/// Parses `allow(rule, ...) -- justification`, returning the rules and the
/// justification or a description of what is wrong.
fn parse_body(body: &str) -> Result<(Vec<Rule>, String), String> {
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err(format!(
            "malformed suppression: expected `{MARKER} allow(<rule>, ...) -- <justification>`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed suppression: unclosed `allow(`".to_string());
    };
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match Rule::parse(name) {
            Some(rule) => rules.push(rule),
            None => return Err(format!("suppression names unknown rule `{name}`")),
        }
    }
    if rules.is_empty() {
        return Err("suppression allows no rules".to_string());
    }
    let after = rest[close + 1..].trim();
    let Some(justification) = after.strip_prefix("--") else {
        return Err(
            "suppression without justification: append `-- <why this is sound>`".to_string(),
        );
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err(
            "suppression without justification: append `-- <why this is sound>`".to_string(),
        );
    }
    Ok((rules, justification.to_string()))
}

/// Applies suppressions to a finding list, returning the surviving
/// findings and the number silenced.
#[must_use]
pub fn apply(findings: Vec<Finding>, suppressions: &[Suppression]) -> (Vec<Finding>, usize) {
    let before = findings.len();
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            // The suppression meta-rule can never silence itself.
            f.rule == Rule::Suppression || !suppressions.iter().any(|s| s.covers(f.rule, f.line))
        })
        .collect();
    let silenced = before - kept.len();
    (kept, silenced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn finding(line: u32, rule: Rule) -> Finding {
        Finding {
            file: "x.rs".to_string(),
            line,
            rule,
            message: "m".to_string(),
        }
    }

    #[test]
    fn justified_suppression_parses_and_covers() {
        let src = "// flashmark-lint: allow(map-order) -- lookup table, never iterated\nlet m = HashMap::new();";
        let (sups, probs) = parse("x.rs", &lex(src));
        assert!(probs.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rules, vec![Rule::MapOrder]);
        assert_eq!(sups[0].justification, "lookup table, never iterated");
        assert!(sups[0].covers(Rule::MapOrder, 1));
        assert!(sups[0].covers(Rule::MapOrder, 2));
        assert!(!sups[0].covers(Rule::MapOrder, 3));
        assert!(!sups[0].covers(Rule::PanicFree, 2));
    }

    #[test]
    fn unjustified_suppression_is_a_finding_and_inert() {
        let src = "// flashmark-lint: allow(panic-free)\nx.unwrap();";
        let (sups, probs) = parse("x.rs", &lex(src));
        assert!(sups.is_empty());
        assert_eq!(probs.len(), 1);
        assert_eq!(probs[0].rule, Rule::Suppression);
        assert!(probs[0].message.contains("without justification"));
        // Empty justification is equally rejected.
        let src = "// flashmark-lint: allow(panic-free) --   \nx.unwrap();";
        let (sups, probs) = parse("x.rs", &lex(src));
        assert!(sups.is_empty());
        assert_eq!(probs.len(), 1);
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let src = "// flashmark-lint: allow(made-up) -- because";
        let (sups, probs) = parse("x.rs", &lex(src));
        assert!(sups.is_empty());
        assert!(probs[0].message.contains("unknown rule `made-up`"));
    }

    #[test]
    fn multiple_rules_in_one_allow() {
        let src = "// flashmark-lint: allow(map-order, print-discipline) -- harness output path";
        let (sups, _) = parse("x.rs", &lex(src));
        assert_eq!(sups[0].rules, vec![Rule::MapOrder, Rule::PrintDiscipline]);
    }

    #[test]
    fn apply_silences_only_covered_findings() {
        let sups = vec![Suppression {
            rules: vec![Rule::MapOrder],
            line: 4,
            justification: "j".to_string(),
        }];
        let findings = vec![
            finding(4, Rule::MapOrder),
            finding(5, Rule::MapOrder),
            finding(6, Rule::MapOrder),
            finding(5, Rule::PanicFree),
        ];
        let (kept, silenced) = apply(findings, &sups);
        assert_eq!(silenced, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn suppression_rule_cannot_suppress_itself() {
        let sups = vec![Suppression {
            rules: vec![Rule::Suppression],
            line: 1,
            justification: "nice try".to_string(),
        }];
        let findings = vec![finding(1, Rule::Suppression)];
        let (kept, silenced) = apply(findings, &sups);
        assert_eq!(silenced, 0);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn suppressions_inside_raw_strings_are_ignored() {
        let src = r###"let s = r#"// flashmark-lint: allow(panic-free) -- fake"#;"###;
        let (sups, probs) = parse("x.rs", &lex(src));
        assert!(sups.is_empty() && probs.is_empty());
    }
}
