//! The six rule families ported from the original line-oriented scanner,
//! re-expressed over the token stream. Comments, strings (raw strings
//! included), test regions, and macro templates can no longer produce
//! false positives — the tokens simply are not code.

use crate::finding::{Finding, Rule};
use crate::lexer::{Token, TokenKind};
use crate::scope::Structure;

fn push(findings: &mut Vec<Finding>, file: &str, line: u32, rule: Rule, message: String) {
    findings.push(Finding {
        file: file.to_string(),
        line,
        rule,
        message,
    });
}

/// Iterator over indices of live (non-test, non-macro-template) code tokens.
fn live_code<'a>(
    tokens: &'a [Token],
    structure: &'a Structure,
) -> impl Iterator<Item = usize> + 'a {
    (0..tokens.len()).filter(move |&i| tokens[i].is_code() && structure.is_live_code(i))
}

/// `.unwrap()` / `.expect(...)` / `panic!`-family macros in non-test code.
pub fn panic_free(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for i in live_code(tokens, structure) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_is_dot = i > 0 && tokens[i - 1].is_punct(".");
        let next = tokens.get(i + 1);
        match t.text.as_str() {
            "unwrap" if prev_is_dot && next.is_some_and(|n| n.is_punct("(")) => push(
                findings,
                file,
                t.line,
                Rule::PanicFree,
                "`.unwrap()` in non-test code: use a typed error (`?` / `ok_or`) instead".into(),
            ),
            "expect" if prev_is_dot && next.is_some_and(|n| n.is_punct("(")) => push(
                findings,
                file,
                t.line,
                Rule::PanicFree,
                "`.expect(...)` in non-test code: use a typed error instead".into(),
            ),
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next.is_some_and(|n| n.is_punct("!")) =>
            {
                push(
                    findings,
                    file,
                    t.line,
                    Rule::PanicFree,
                    format!(
                        "`{}!` in non-test code: return a typed error instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Tokens allowed inside a comparison operand chain.
fn operand_token(t: &Token) -> bool {
    matches!(t.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float)
        || (t.kind == TokenKind::Punct
            && matches!(t.text.as_str(), "." | "::" | "(" | ")" | "[" | "]"))
}

/// Whether an operand token slice reads as an f64 quantity: a float
/// literal, a unit-wrapper `.get()` read, or an `f64::` constant.
fn operand_is_float(ops: &[&Token]) -> bool {
    for (i, t) in ops.iter().enumerate() {
        if t.kind == TokenKind::Float {
            return true;
        }
        if t.is_ident("f64") && ops.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            return true;
        }
        if t.is_ident("get")
            && i > 0
            && ops[i - 1].is_punct(".")
            && ops.get(i + 1).is_some_and(|n| n.is_punct("("))
            && ops.get(i + 2).is_some_and(|n| n.is_punct(")"))
        {
            return true;
        }
    }
    false
}

/// Exact `==` / `!=` with a float operand.
pub fn float_eq(file: &str, tokens: &[Token], structure: &Structure, findings: &mut Vec<Finding>) {
    let live: Vec<usize> = live_code(tokens, structure).collect();
    for (pos, &i) in live.iter().enumerate() {
        let t = &tokens[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        // Collect up to 8 operand tokens on each side.
        let left: Vec<&Token> = live[..pos]
            .iter()
            .rev()
            .map(|&j| &tokens[j])
            .take_while(|t| operand_token(t))
            .take(8)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let right: Vec<&Token> = live[pos + 1..]
            .iter()
            .map(|&j| &tokens[j])
            .take_while(|t| operand_token(t))
            .take(8)
            .collect();
        if operand_is_float(&left) || operand_is_float(&right) {
            let render = |ops: &[&Token]| {
                ops.iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join("")
            };
            push(
                findings,
                file,
                t.line,
                Rule::FloatEq,
                format!(
                    "exact f64 comparison `{} {} {}`: compare with a tolerance or restructure",
                    render(&left),
                    t.text,
                    render(&right)
                ),
            );
        }
    }
}

/// Wall clock or OS randomness in simulation code.
pub fn nondeterminism(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for i in live_code(tokens, structure) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_colons = tokens.get(i + 1).is_some_and(|n| n.is_punct("::"));
        let flagged = match t.text.as_str() {
            "SystemTime" | "Instant" | "thread_rng" => true,
            "rand" if next_colons => true,
            "std" if next_colons && tokens.get(i + 2).is_some_and(|n| n.is_ident("time")) => true,
            _ => false,
        };
        if flagged {
            push(
                findings,
                file,
                t.line,
                Rule::Nondeterminism,
                format!(
                    "`{}` in a simulation crate: all entropy must flow through crates/physics/src/rng.rs and all timing through the bench layer",
                    t.text
                ),
            );
        }
    }
}

/// Keywords introducing public items that must carry a doc comment.
const DOC_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

/// Undocumented `pub` items; attributes between the docs and the item are
/// transparent, and `#[doc...]` attributes count as documentation.
pub fn missing_docs(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for i in live_code(tokens, structure) {
        if !tokens[i].is_ident("pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` items are not public API.
        let Some(kw_idx) = next_code(tokens, i) else {
            continue;
        };
        let kw = &tokens[kw_idx];
        if kw.kind != TokenKind::Ident || !DOC_KEYWORDS.contains(&kw.text.as_str()) {
            continue;
        }
        let name = next_code(tokens, kw_idx)
            .map(|j| tokens[j].text.clone())
            .unwrap_or_default();
        // `pub mod foo;` documents itself with `//!` inner docs inside the
        // module file, which rustc's `missing_docs` covers.
        if kw.text == "mod"
            && next_code(tokens, kw_idx)
                .and_then(|j| next_code(tokens, j))
                .is_some_and(|j| tokens[j].is_punct(";"))
        {
            continue;
        }
        if !has_doc_above(tokens, i) {
            push(
                findings,
                file,
                tokens[i].line,
                Rule::MissingDocs,
                format!(
                    "public item without a doc comment: `pub {} {name}`",
                    kw.text
                ),
            );
        }
    }
}

/// Index of the next code token after `i`.
fn next_code(tokens: &[Token], i: usize) -> Option<usize> {
    ((i + 1)..tokens.len()).find(|&j| tokens[j].is_code())
}

/// Walks upward from a `pub` token over attributes looking for docs.
fn has_doc_above(tokens: &[Token], pub_idx: usize) -> bool {
    let mut k = pub_idx;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        match t.kind {
            TokenKind::DocComment => {
                // Inner docs (`//!`, `/*!`) document the enclosing module,
                // not the item below them.
                if !t.text.starts_with("//!") && !t.text.starts_with("/*!") {
                    return true;
                }
            }
            TokenKind::LineComment | TokenKind::BlockComment => {
                if t.text.starts_with("/**") {
                    return true;
                }
            }
            TokenKind::Punct if t.text == "]" => {
                // Walk back over one attribute; `#[doc = "..."]` counts.
                let mut depth = 1usize;
                let mut saw_doc = false;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if tokens[k].is_punct("]") {
                        depth += 1;
                    } else if tokens[k].is_punct("[") {
                        depth -= 1;
                    } else if tokens[k].is_ident("doc") {
                        saw_doc = true;
                    }
                }
                if saw_doc {
                    return true;
                }
                // Step over the leading `#` (and `!` for inner attrs).
                while k > 0 && (tokens[k - 1].is_punct("#") || tokens[k - 1].is_punct("!")) {
                    k -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Raw thread spawning outside `crates/par`.
pub fn thread_discipline(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for i in live_code(tokens, structure) {
        let t = &tokens[i];
        if !t.is_ident("thread") {
            continue;
        }
        let Some(j) = next_code(tokens, i) else {
            continue;
        };
        if !tokens[j].is_punct("::") {
            continue;
        }
        let Some(k) = next_code(tokens, j) else {
            continue;
        };
        let target = &tokens[k];
        if target.is_ident("spawn") || target.is_ident("Builder") || target.is_ident("scope") {
            push(
                findings,
                file,
                t.line,
                Rule::ThreadDiscipline,
                format!(
                    "`thread::{}` outside crates/par: fan work out through `flashmark_par::TrialRunner` so parallel runs stay bit-identical to serial ones",
                    target.text
                ),
            );
        }
    }
}

/// `println!` / `eprintln!` from library code.
pub fn print_discipline(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for i in live_code(tokens, structure) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            push(
                findings,
                file,
                t.line,
                Rule::PrintDiscipline,
                format!(
                    "`{}!` in a library crate: report through typed results or emit a `flashmark_obs` event; only binary targets own stdout",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::Structure;

    fn run(rule: fn(&str, &[Token], &Structure, &mut Vec<Finding>), src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let structure = Structure::analyze(&tokens);
        let mut findings = Vec::new();
        rule("x.rs", &tokens, &structure, &mut findings);
        findings
    }

    #[test]
    fn panic_family_flagged_variants_clean() {
        let f = run(
            panic_free,
            "fn f() { y.unwrap(); w.expect(\"no\"); panic!(\"b\"); unreachable!(); }",
        );
        assert_eq!(f.len(), 4);
        let ok = run(
            panic_free,
            "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); d.expect_err(\"e\"); }",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn panic_inside_raw_string_or_test_is_clean() {
        assert!(run(
            panic_free,
            r###"fn f() { let s = r#"x.unwrap() panic!"#; }"###
        )
        .is_empty());
        assert!(run(panic_free, "#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }").is_empty());
    }

    #[test]
    fn float_eq_detection() {
        let f = run(
            float_eq,
            "fn f(x: f64, s: usize) { if x == 0.0 {} if t.get() != limit.get() {} if s == 0 {} if w == 0xFFFF {} for i in 0..=5 {} if s >= 3 {} }",
        );
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("0.0"));
    }

    #[test]
    fn float_eq_f64_constants() {
        let f = run(float_eq, "fn f(x: f64) { if x == f64::NAN {} }");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn nondeterminism_detection() {
        let f = run(
            nondeterminism,
            "fn f() { let t = std::time::Instant::now(); let r = rand::random(); }",
        );
        assert!(f.len() >= 2);
        assert!(run(nondeterminism, "fn f() { let standard = 1; }").is_empty());
    }

    #[test]
    fn missing_docs_through_attributes() {
        let f = run(
            missing_docs,
            "#[derive(Debug)]\npub struct S;\n\n/// Documented.\n#[derive(Debug)]\npub struct T;\n\npub use other::Thing;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn missing_docs_exemptions() {
        assert!(run(
            missing_docs,
            "/// Doc'd.\npub mod inline { }\npub mod file;"
        )
        .is_empty());
        assert!(run(missing_docs, "pub(crate) fn internal() {}").is_empty());
        assert!(
            run(missing_docs, "#[doc = \"macro docs\"]\npub fn f() {}").is_empty(),
            "#[doc] attributes count as documentation"
        );
        assert!(
            run(
                missing_docs,
                "macro_rules! m { () => { pub fn gen() {} }; }"
            )
            .is_empty(),
            "macro templates are not items"
        );
    }

    #[test]
    fn thread_discipline_detection() {
        let f = run(
            thread_discipline,
            "fn f() { std::thread::spawn(|| {}); let b = thread::Builder::new(); }",
        );
        assert_eq!(f.len(), 2);
        assert!(run(thread_discipline, "fn g(r: &TrialRunner) { r.threads(); }").is_empty());
    }

    #[test]
    fn print_discipline_detection() {
        let f = run(
            print_discipline,
            "fn f() { println!(\"x\"); eprintln!(\"y\"); }",
        );
        assert_eq!(f.len(), 2);
        assert!(run(
            print_discipline,
            "fn g(out: &mut String) { writeln!(out, \"z\"); }"
        )
        .is_empty());
        assert!(
            run(print_discipline, "/// Call `println!` never.\nfn h() {}").is_empty(),
            "doc comments are not code"
        );
    }
}
