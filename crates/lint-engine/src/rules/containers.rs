//! Map-order determinism.
//!
//! `HashMap`/`HashSet` iteration order is randomized per process; one
//! stray iteration feeding a report, artifact, or serialization path
//! breaks the byte-identical guarantee the whole harness is built on.
//! The repo-wide rule is therefore structural: hash-ordered containers
//! are banned outright in workspace code — `BTreeMap`/`BTreeSet` provide
//! the same API with deterministic order (as `crates/obs` already
//! demonstrates), and genuinely order-free hot paths can carry a
//! justified suppression.
//!
//! [`wall_clock`] is the same family applied to time: `Instant` /
//! `SystemTime` reads are banned outside the two quarantined timing
//! modules, so wall-clock data can only ever reach the `*_timings.json`
//! quarantine artifacts, never the deterministic ones.

use crate::finding::{Finding, Rule};
use crate::lexer::{Token, TokenKind};
use crate::scope::Structure;

/// Banned hash-ordered container type names.
const HASH_CONTAINERS: [&str; 3] = ["HashMap", "HashSet", "RandomState"];

/// Flags every mention of a hash-ordered container in live code.
pub fn map_order(file: &str, tokens: &[Token], structure: &Structure, findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !t.is_code() || !structure.is_live_code(i) {
            continue;
        }
        if t.kind == TokenKind::Ident && HASH_CONTAINERS.contains(&t.text.as_str()) {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::MapOrder,
                message: format!(
                    "`{}` in workspace code: hash iteration order is nondeterministic and can reach artifact/report paths — use `BTreeMap`/`BTreeSet` (pattern: crates/obs metrics)",
                    t.text
                ),
            });
        }
    }
}

/// Wall-clock sources whose mere mention in quarantine-free code means a
/// timing read is (or is about to be) feeding a deterministic path.
const WALL_CLOCK_SOURCES: [&str; 2] = ["Instant", "SystemTime"];

/// Flags every wall-clock read (`Instant`, `SystemTime`) in live code.
///
/// Same structural shape as [`map_order`]: the telemetry/trend layer's
/// byte-identical guarantee dies the moment a wall-clock value reaches a
/// snapshot, trend record, or exposition line, so outside the two
/// quarantined timing modules (`crates/bench/src/suite.rs`,
/// `crates/bench/src/microbench.rs` — which may *only* write the
/// `*_timings.json` quarantine artifacts) the types are banned outright.
pub fn wall_clock(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !t.is_code() || !structure.is_live_code(i) {
            continue;
        }
        if t.kind == TokenKind::Ident && WALL_CLOCK_SOURCES.contains(&t.text.as_str()) {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::WallClock,
                message: format!(
                    "`{}` outside a quarantined timing module: wall-clock reads poison byte-identical artifacts — measure in suite.rs/microbench.rs and route the value into a `*_timings.json` quarantine file",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let structure = Structure::analyze(&tokens);
        let mut findings = Vec::new();
        map_order("x.rs", &tokens, &structure, &mut findings);
        findings
    }

    fn run_clock(src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let structure = Structure::analyze(&tokens);
        let mut findings = Vec::new();
        wall_clock("x.rs", &tokens, &structure, &mut findings);
        findings
    }

    #[test]
    fn wall_clock_reads_are_flagged() {
        let f = run_clock(
            "use std::time::Instant;\nfn f() { let t = Instant::now(); let s = std::time::SystemTime::now(); }",
        );
        assert_eq!(f.len(), 3, "import, now() read, SystemTime read");
        assert!(f[0].message.contains("quarantine"));
    }

    #[test]
    fn virtual_time_is_clean() {
        assert!(run_clock("fn f(cost: u64) -> u64 { cost * 8 }").is_empty());
    }

    #[test]
    fn wall_clock_in_tests_and_strings_is_exempt() {
        assert!(run_clock("#[cfg(test)]\nmod t { use std::time::Instant; }").is_empty());
        assert!(run_clock("fn f() { let s = \"Instant::now\"; }").is_empty());
    }

    #[test]
    fn hash_containers_are_flagged() {
        let f = run(
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(
            f.len(),
            3,
            "import, annotation, and constructor each flagged"
        );
        assert!(f[0].message.contains("BTreeMap"));
    }

    #[test]
    fn btree_containers_are_clean() {
        assert!(
            run("use std::collections::BTreeMap;\nfn f() { let m = BTreeMap::new(); }").is_empty()
        );
    }

    #[test]
    fn tests_and_strings_are_exempt() {
        assert!(run("#[cfg(test)]\nmod t { use std::collections::HashSet; }").is_empty());
        assert!(run("fn f() { let s = \"HashMap\"; }").is_empty());
    }
}
