//! Rule passes.
//!
//! Each pass walks the token stream (plus the [`Structure`] facts) of one
//! file; [`liveness`] additionally runs as a workspace-level pass over a
//! cross-file reference index. Every pass skips comment/string tokens and
//! `#[cfg(test)]` / `macro_rules!` regions through [`Structure`], which is
//! what the old line-oriented scanner could only approximate.

pub mod classic;
pub mod containers;
pub mod dataflow;
pub mod liveness;
pub mod unsafety;

use crate::finding::Finding;
use crate::lexer::Token;
use crate::scope::{FileScope, Structure};

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleSet {
    /// Panic-free hot paths.
    pub panic_free: bool,
    /// No exact f64 equality.
    pub float_eq: bool,
    /// No wall clock / OS randomness.
    pub nondeterminism: bool,
    /// Public items documented.
    pub missing_docs: bool,
    /// No raw thread spawning.
    pub thread_discipline: bool,
    /// No library printing.
    pub print_discipline: bool,
    /// RNG constructions derive from seed parameters.
    pub seed_dataflow: bool,
    /// No hash-ordered containers.
    pub map_order: bool,
    /// No wall-clock reads outside the quarantined timing modules.
    pub wall_clock: bool,
    /// No ad-hoc float accumulation in merge code.
    pub merge_commutativity: bool,
    /// `unsafe` / unchecked inventory + `forbid(unsafe_code)` presence.
    pub unsafe_audit: bool,
    /// Wrapping-arithmetic inventory (physics/core numeric code).
    pub wrapping_audit: bool,
    /// Definitions participate in the workspace pub-liveness pass.
    pub pub_liveness: bool,
}

/// Runs every per-file pass enabled for the file.
#[must_use]
pub fn run_file(scope: &FileScope, tokens: &[Token], structure: &Structure) -> Vec<Finding> {
    let mut findings = Vec::new();
    let r = scope.rules;
    let path = scope.path.as_str();
    if r.panic_free {
        classic::panic_free(path, tokens, structure, &mut findings);
    }
    if r.float_eq {
        classic::float_eq(path, tokens, structure, &mut findings);
    }
    if r.nondeterminism {
        classic::nondeterminism(path, tokens, structure, &mut findings);
    }
    if r.missing_docs {
        classic::missing_docs(path, tokens, structure, &mut findings);
    }
    if r.thread_discipline {
        classic::thread_discipline(path, tokens, structure, &mut findings);
    }
    if r.print_discipline {
        classic::print_discipline(path, tokens, structure, &mut findings);
    }
    if r.seed_dataflow {
        dataflow::seed_dataflow(path, tokens, structure, &mut findings);
    }
    if r.map_order {
        containers::map_order(path, tokens, structure, &mut findings);
    }
    if r.wall_clock {
        containers::wall_clock(path, tokens, structure, &mut findings);
    }
    if r.merge_commutativity {
        dataflow::merge_commutativity(path, tokens, structure, &mut findings);
    }
    if r.unsafe_audit {
        unsafety::unsafe_audit(scope, tokens, structure, &mut findings);
    }
    if r.wrapping_audit {
        unsafety::wrapping_audit(path, tokens, structure, &mut findings);
    }
    findings
}
