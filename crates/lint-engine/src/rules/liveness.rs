//! Pub-API liveness: `pub` items nothing in the workspace ever names.
//!
//! The reference index counts every identifier occurrence across **all**
//! workspace Rust sources — library code, binary targets, integration
//! tests, examples — plus identifier-shaped words inside doc comments (so
//! API demonstrated only in doc examples stays live). A `pub` item is
//! dead when the workspace-wide occurrence count of its name does not
//! exceed the number of definition sites carrying that name: nothing but
//! the definitions themselves ever says the name.
//!
//! Matching is by bare name, which is deliberately conservative: common
//! method names (`new`, `len`, `get`) are trivially live, so the rule
//! only surfaces API whose name appears nowhere else at all — exactly the
//! exports that should be demoted to `pub(crate)` or deleted.

use std::collections::BTreeMap;

use crate::finding::{Finding, Rule};
use crate::lexer::{Token, TokenKind};
use crate::scope::Structure;

/// Item keywords that can follow `pub` and define a named item.
const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

/// One `pub` item definition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubDef {
    /// Defining file (workspace-relative).
    pub file: String,
    /// Line of the `pub` keyword.
    pub line: u32,
    /// Item keyword (`fn`, `struct`, …).
    pub kw: String,
    /// Item name.
    pub name: String,
}

/// The cross-file identifier occurrence index.
#[derive(Debug, Default)]
pub struct ReferenceIndex {
    counts: BTreeMap<String, usize>,
}

impl ReferenceIndex {
    /// Folds one file's tokens into the index: every code identifier plus
    /// every identifier-shaped word inside doc comments.
    pub fn add_file(&mut self, tokens: &[Token]) {
        for t in tokens {
            match t.kind {
                TokenKind::Ident => {
                    *self.counts.entry(t.text.clone()).or_insert(0) += 1;
                }
                TokenKind::DocComment | TokenKind::BlockComment => {
                    for word in t
                        .text
                        .split(|c: char| !(c == '_' || c.is_alphanumeric()))
                        .filter(|w| !w.is_empty())
                    {
                        *self.counts.entry(word.to_string()).or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
    }

    /// Occurrences of a name across the workspace.
    #[must_use]
    pub fn occurrences(&self, name: &str) -> usize {
        self.counts.get(name).copied().unwrap_or(0)
    }
}

/// Collects `pub` item definitions from one file's live code.
#[must_use]
pub fn collect_defs(file: &str, tokens: &[Token], structure: &Structure) -> Vec<PubDef> {
    let mut defs = Vec::new();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].is_code() && structure.is_live_code(i))
        .collect();
    for (pos, &i) in code.iter().enumerate() {
        if !tokens[i].is_ident("pub") {
            continue;
        }
        let Some(&kw_i) = code.get(pos + 1) else {
            continue;
        };
        let kw = &tokens[kw_i];
        if kw.kind != TokenKind::Ident || !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            continue;
        }
        let Some(&name_i) = code.get(pos + 2) else {
            continue;
        };
        let name = &tokens[name_i];
        if name.kind != TokenKind::Ident {
            continue;
        }
        if name.text == "main" || name.text.starts_with('_') {
            continue;
        }
        defs.push(PubDef {
            file: file.to_string(),
            line: tokens[i].line,
            kw: kw.text.clone(),
            name: name.text.clone(),
        });
    }
    defs
}

/// Emits a finding for every definition whose name the workspace never
/// mentions outside definition sites.
pub fn check(defs: &[PubDef], index: &ReferenceIndex, findings: &mut Vec<Finding>) {
    let mut def_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in defs {
        *def_counts.entry(d.name.as_str()).or_insert(0) += 1;
    }
    for d in defs {
        let defs_of_name = def_counts.get(d.name.as_str()).copied().unwrap_or(1);
        // Each definition site contributes one occurrence of the name (the
        // definition token itself); anything beyond that is a real use.
        if index.occurrences(&d.name) <= defs_of_name {
            findings.push(Finding {
                file: d.file.clone(),
                line: d.line,
                rule: Rule::PubLiveness,
                message: format!(
                    "pub {} `{}` is never referenced anywhere else in the workspace (code, tests, examples, or docs) — demote to pub(crate) or remove",
                    d.kw, d.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn analyze(src: &str) -> (Vec<Token>, Structure) {
        let tokens = lex(src);
        let structure = Structure::analyze(&tokens);
        (tokens, structure)
    }

    #[test]
    fn dead_pub_item_is_flagged() {
        let (tok_a, s_a) = analyze("/// D.\npub fn orphan_api() {}\n/// D.\npub fn used_api() {}");
        let (tok_b, _) = analyze("fn main() { used_api(); }");
        let mut index = ReferenceIndex::default();
        index.add_file(&tok_a);
        index.add_file(&tok_b);
        let defs = collect_defs("a.rs", &tok_a, &s_a);
        assert_eq!(defs.len(), 2);
        let mut findings = Vec::new();
        check(&defs, &index, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("orphan_api"));
    }

    #[test]
    fn doc_example_keeps_item_live() {
        let src = "/// Use [`special_entry`] for this.\npub fn special_entry() {}";
        let (tokens, structure) = analyze(src);
        let mut index = ReferenceIndex::default();
        index.add_file(&tokens);
        let defs = collect_defs("a.rs", &tokens, &structure);
        let mut findings = Vec::new();
        check(&defs, &index, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn multiple_defs_of_same_name_need_an_external_use() {
        // Two types each define `pub fn reset`; no caller anywhere.
        let (tok, s) = analyze("/// D.\npub fn reset() {}\nmod b { /// D.\n pub fn reset() {} }");
        let mut index = ReferenceIndex::default();
        index.add_file(&tok);
        let defs = collect_defs("a.rs", &tok, &s);
        assert_eq!(defs.len(), 2);
        let mut findings = Vec::new();
        check(&defs, &index, &mut findings);
        assert_eq!(findings.len(), 2, "doc comments say `D`, not `reset`");
    }

    #[test]
    fn pub_crate_items_are_not_collected() {
        let (tok, s) = analyze("pub(crate) fn internal() {}");
        assert!(collect_defs("a.rs", &tok, &s).is_empty());
    }

    #[test]
    fn test_region_defs_are_not_collected() {
        let (tok, s) = analyze("#[cfg(test)]\nmod t { pub fn helper() {} }");
        assert!(collect_defs("a.rs", &tok, &s).is_empty());
    }
}
