//! The unsafe/unchecked audit.
//!
//! The workspace is 100% safe Rust today; the upcoming SIMD kernels
//! (ROADMAP item 2) will change that, and this rule keeps the inventory
//! mechanical instead of tribal:
//!
//! * every `unsafe` block/fn/impl in live code is a finding (additions
//!   must be explicitly suppressed with a safety justification or
//!   baselined — either way they are on the books);
//! * unchecked access (`get_unchecked`, `unwrap_unchecked`, …) likewise;
//! * every crate root must carry `#![forbid(unsafe_code)]` until the day
//!   it deliberately opts out (the attribute's *absence* is the finding);
//! * wrapping arithmetic is inventoried in the numeric simulation crates
//!   (`physics`, `core`) where silent wraparound corrupts physics, while
//!   checksum/hash code elsewhere wraps by design.

use crate::finding::{Finding, Rule};
use crate::lexer::{Token, TokenKind};
use crate::scope::{FileScope, Structure};

/// Unchecked-access method names.
const UNCHECKED: [&str; 6] = [
    "get_unchecked",
    "get_unchecked_mut",
    "unwrap_unchecked",
    "from_utf8_unchecked",
    "unchecked_add",
    "unchecked_mul",
];

/// Whether a path is a crate root that must carry the forbid attribute.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs"))
            && path.matches('/').count() == 3)
}

/// Whether the token stream contains `#![forbid(unsafe_code)]` (or a
/// `forbid` list naming `unsafe_code`).
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.iter().enumerate().any(|(i, t)| {
        t.is_ident("forbid")
            && tokens[i + 1..]
                .iter()
                .filter(|n| n.is_code())
                .take(8)
                .any(|n| n.is_ident("unsafe_code"))
    })
}

/// `unsafe` keyword and unchecked-access inventory, plus the crate-root
/// `#![forbid(unsafe_code)]` presence check.
pub fn unsafe_audit(
    scope: &FileScope,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    let file = scope.path.as_str();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_code() || !structure.is_live_code(i) || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "unsafe" {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::UnsafeAudit,
                message: "`unsafe` in workspace code: every unsafe region must be inventoried — suppress with a safety justification or remove".to_string(),
            });
        } else if UNCHECKED.contains(&t.text.as_str()) {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::UnsafeAudit,
                message: format!(
                    "`{}`: unchecked access in workspace code — prove the bound with a checked form or suppress with a safety justification",
                    t.text
                ),
            });
        }
    }
    if is_crate_root(file) && !has_forbid_unsafe(tokens) {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            rule: Rule::UnsafeAudit,
            message: "crate root missing `#![forbid(unsafe_code)]`: every crate stays provably safe until it deliberately opts out".to_string(),
        });
    }
}

/// Wrapping-arithmetic inventory for numeric simulation code.
pub fn wrapping_audit(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_code() || !structure.is_live_code(i) || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text.starts_with("wrapping_") {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: Rule::UnsafeAudit,
                message: format!(
                    "`{}` in numeric simulation code: silent wraparound corrupts physics — use checked/saturating arithmetic or suppress with a justification",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::FileScope;

    fn run_audit(path: &str, src: &str) -> Vec<Finding> {
        let scope = FileScope::classify(path).unwrap();
        let tokens = lex(src);
        let structure = Structure::analyze(&tokens);
        let mut findings = Vec::new();
        unsafe_audit(&scope, &tokens, &structure, &mut findings);
        findings
    }

    const FORBID: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn unsafe_keyword_is_inventoried() {
        let f = run_audit(
            "crates/nor/src/array.rs",
            "fn f(xs: &[u8]) { let x = unsafe { xs.get_unchecked(0) }; }",
        );
        assert_eq!(f.len(), 2, "unsafe block and unchecked access");
    }

    #[test]
    fn crate_root_requires_forbid_attribute() {
        let f = run_audit("crates/nor/src/lib.rs", "//! Docs.\npub mod array;\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("forbid(unsafe_code)"));
        let clean = format!("{FORBID}//! Docs.\npub mod array;\n");
        assert!(run_audit("crates/nor/src/lib.rs", &clean).is_empty());
    }

    #[test]
    fn non_roots_do_not_need_the_attribute() {
        assert!(run_audit("crates/nor/src/array.rs", "fn f() {}").is_empty());
        assert!(run_audit("crates/bench/src/bin/run_all.rs", "fn main() {}").is_empty());
    }

    #[test]
    fn wrapping_scoped_to_numeric_crates() {
        let tokens = lex("fn f(a: u64) -> u64 { a.wrapping_mul(3) }");
        let structure = Structure::analyze(&tokens);
        let mut findings = Vec::new();
        wrapping_audit(
            "crates/physics/src/erase.rs",
            &tokens,
            &structure,
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_test_is_exempt() {
        let clean = format!("{FORBID}fn f() {{ let s = \"unsafe\"; }}");
        assert!(run_audit("crates/nor/src/lib.rs", &clean).is_empty());
        let test_only =
            format!("{FORBID}#[cfg(test)]\nmod t {{ fn g() {{ let x = unsafe {{ 1 }}; }} }}");
        assert!(run_audit("crates/nor/src/lib.rs", &test_only).is_empty());
    }
}
