//! Intra-function dataflow rules.
//!
//! * [`seed_dataflow`] — every RNG/stream construction in simulation code
//!   must derive from a function parameter or a seed-carrying value,
//!   traced forward through `let` chains. `SplitMix64::new(42)` in a
//!   library is exactly the bug class that silently collapses a
//!   million-trial campaign onto one stream.
//! * [`merge_commutativity`] — cross-trial merge/absorb functions must
//!   not accumulate floats ad hoc (`f64 +=` is order-sensitive under
//!   re-association); aggregates go through the `flashmark_obs`
//!   counter/histogram types, whose merge is pointwise integer addition.

use std::collections::BTreeSet;

use crate::finding::{Finding, Rule};
use crate::lexer::{Token, TokenKind};
use crate::scope::{FnScope, Structure};

/// RNG construction entry points the rule recognizes.
const RNG_CONSTRUCTORS: [&str; 5] = [
    "SplitMix64",
    "CounterStream",
    "cell_uniform",
    "cell_normal",
    "cell_stream",
];

/// Identifier names that inherently carry seed provenance (field reads
/// like `self.seed`, `config.chip_seed`, `t.seed` keep their last path
/// segment).
fn is_seedful_name(name: &str) -> bool {
    name.to_ascii_lowercase().contains("seed")
}

/// Collects the parameter names of a function: identifiers directly
/// followed by `:` inside the parameter list, plus `self`.
fn param_names(tokens: &[Token], f: &FnScope) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let range = f.params.clone();
    let code: Vec<usize> = range.filter(|&i| tokens[i].is_code()).collect();
    for (pos, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.is_ident("self") {
            names.insert("self".to_string());
        }
        if t.kind == TokenKind::Ident && code.get(pos + 1).is_some_and(|&j| tokens[j].is_punct(":"))
        {
            names.insert(t.text.clone());
        }
    }
    names
}

/// Forward taint propagation through `let` statements: a binding whose
/// initializer mentions a tainted identifier taints its pattern names.
fn propagate_lets(tokens: &[Token], body: std::ops::Range<usize>, taint: &mut BTreeSet<String>) {
    let code: Vec<usize> = body.filter(|&i| tokens[i].is_code()).collect();
    let mut pos = 0;
    while pos < code.len() {
        if !tokens[code[pos]].is_ident("let") {
            pos += 1;
            continue;
        }
        // Pattern: idents up to `=` (skipping a `==`-free zone; type
        // annotations contribute harmless extra names).
        let mut pattern: Vec<String> = Vec::new();
        let mut j = pos + 1;
        while j < code.len() && !tokens[code[j]].is_punct("=") {
            if tokens[code[j]].is_punct(";") {
                break;
            }
            if tokens[code[j]].kind == TokenKind::Ident {
                pattern.push(tokens[code[j]].text.clone());
            }
            j += 1;
        }
        if j >= code.len() || !tokens[code[j]].is_punct("=") {
            pos = j;
            continue;
        }
        // Initializer: tokens up to the statement-ending `;` at depth 0.
        let init_start = j + 1;
        let mut depth = 0i32;
        let mut k = init_start;
        while k < code.len() {
            let t = &tokens[code[k]];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct(";") && depth <= 0 {
                break;
            }
            k += 1;
        }
        let init_tainted = (init_start..k).any(|p| {
            let t = &tokens[code[p]];
            t.kind == TokenKind::Ident && (taint.contains(&t.text) || is_seedful_name(&t.text))
        });
        if init_tainted {
            taint.extend(pattern);
        }
        pos = k + 1;
    }
}

/// RNG constructions whose arguments carry no seed provenance.
pub fn seed_dataflow(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for f in &structure.fns {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        let mut taint = param_names(tokens, f);
        propagate_lets(tokens, f.body.clone(), &mut taint);
        let code: Vec<usize> = f.body.clone().filter(|&i| tokens[i].is_code()).collect();
        for (pos, &i) in code.iter().enumerate() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident || !RNG_CONSTRUCTORS.contains(&t.text.as_str()) {
                continue;
            }
            // `SplitMix64::new(args)` / `CounterStream::new(args)` or
            // `cell_uniform(args)`.
            let open = if t.text == "SplitMix64" || t.text == "CounterStream" {
                let Some(&c1) = code.get(pos + 1) else {
                    continue;
                };
                let Some(&c2) = code.get(pos + 2) else {
                    continue;
                };
                if !(tokens[c1].is_punct("::") && tokens[c2].is_ident("new")) {
                    continue;
                }
                pos + 3
            } else {
                pos + 1
            };
            if !code.get(open).is_some_and(|&j| tokens[j].is_punct("(")) {
                continue;
            }
            // Argument token span to the matching close paren.
            let mut depth = 0i32;
            let mut end = open;
            while end < code.len() {
                let a = &tokens[code[end]];
                if a.is_punct("(") {
                    depth += 1;
                } else if a.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                end += 1;
            }
            let args_tainted = (open + 1..end).any(|p| {
                let a = &tokens[code[p]];
                a.kind == TokenKind::Ident && (taint.contains(&a.text) || is_seedful_name(&a.text))
            });
            if !args_tainted {
                let ctor = if t.text == "SplitMix64" || t.text == "CounterStream" {
                    format!("{}::new", t.text)
                } else {
                    t.text.clone()
                };
                findings.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: Rule::SeedDataflow,
                    message: format!(
                        "`{ctor}` constructed from a constant in fn `{}`: derive every stream from a per-trial seed parameter (trace: no argument reaches a parameter or seed-carrying binding)",
                        f.name
                    ),
                });
            }
        }
    }
}

/// Function names that mark cross-trial aggregation code.
fn is_merge_fn(name: &str) -> bool {
    let n = name.to_ascii_lowercase();
    n.contains("merge") || n.contains("absorb") || n == "merged"
}

/// Collects identifiers with float evidence: params annotated `f64`/`f32`
/// and `let` bindings whose annotation or initializer is float-typed.
fn float_idents(tokens: &[Token], f: &FnScope) -> BTreeSet<String> {
    let mut floats = BTreeSet::new();
    let collect = |range: std::ops::Range<usize>, floats: &mut BTreeSet<String>| {
        let code: Vec<usize> = range.filter(|&i| tokens[i].is_code()).collect();
        for (pos, &i) in code.iter().enumerate() {
            let t = &tokens[i];
            // `name : f64` (possibly through `&`/`mut`).
            if t.kind == TokenKind::Ident
                && code.get(pos + 1).is_some_and(|&j| tokens[j].is_punct(":"))
            {
                let is_float_ty = (pos + 2..(pos + 5).min(code.len()))
                    .any(|q| tokens[code[q]].is_ident("f64") || tokens[code[q]].is_ident("f32"));
                if is_float_ty {
                    floats.insert(t.text.clone());
                }
            }
            // `let name = <float literal or cast>` — nearest let-pattern
            // ident before an initializer with float evidence.
            if t.is_ident("let") {
                if let Some(&name_j) = code.get(pos + 1) {
                    if tokens[name_j].kind == TokenKind::Ident && tokens[name_j].text != "mut" {
                        let until_semi: Vec<usize> = code[pos..]
                            .iter()
                            .copied()
                            .take_while(|&j| !tokens[j].is_punct(";"))
                            .collect();
                        if float_evidence(tokens, &until_semi, &floats) {
                            floats.insert(tokens[name_j].text.clone());
                        }
                    } else if tokens[name_j].is_ident("mut") {
                        if let Some(&name_k) = code.get(pos + 2) {
                            let until_semi: Vec<usize> = code[pos..]
                                .iter()
                                .copied()
                                .take_while(|&j| !tokens[j].is_punct(";"))
                                .collect();
                            if float_evidence(tokens, &until_semi, &floats) {
                                floats.insert(tokens[name_k].text.clone());
                            }
                        }
                    }
                }
            }
        }
    };
    collect(f.params.clone(), &mut floats);
    collect(f.body.clone(), &mut floats);
    floats
}

/// Whether a token span carries float evidence.
fn float_evidence(tokens: &[Token], span: &[usize], known_floats: &BTreeSet<String>) -> bool {
    for (pos, &i) in span.iter().enumerate() {
        let t = &tokens[i];
        if t.kind == TokenKind::Float {
            return true;
        }
        if t.kind == TokenKind::Ident {
            if matches!(t.text.as_str(), "f64" | "f32") {
                return true;
            }
            if matches!(t.text.as_str(), "next_f64" | "as_secs_f64" | "ber") {
                return true;
            }
            if known_floats.contains(&t.text) {
                return true;
            }
            // `.sum::<f64>()` caught by the `f64` ident above already.
            let _ = pos;
        }
    }
    false
}

/// Ad-hoc float accumulation inside merge/absorb functions.
pub fn merge_commutativity(
    file: &str,
    tokens: &[Token],
    structure: &Structure,
    findings: &mut Vec<Finding>,
) {
    for f in &structure.fns {
        if f.in_test || f.body.is_empty() || !is_merge_fn(&f.name) {
            continue;
        }
        let floats = float_idents(tokens, f);
        let code: Vec<usize> = f.body.clone().filter(|&i| tokens[i].is_code()).collect();
        for (pos, &i) in code.iter().enumerate() {
            let t = &tokens[i];
            if !(t.is_punct("+=") || t.is_punct("-=") || t.is_punct("*=") || t.is_punct("/=")) {
                continue;
            }
            // LHS: nearest ident left of the operator.
            let lhs_float = code[..pos]
                .iter()
                .rev()
                .take(6)
                .find(|&&j| tokens[j].kind == TokenKind::Ident)
                .is_some_and(|&j| floats.contains(&tokens[j].text));
            // RHS: tokens to the statement-ending `;`.
            let rhs: Vec<usize> = code[pos + 1..]
                .iter()
                .copied()
                .take_while(|&j| !tokens[j].is_punct(";"))
                .collect();
            if lhs_float || float_evidence(tokens, &rhs, &floats) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: Rule::MergeCommutativity,
                    message: format!(
                        "float accumulation `{}` in merge fn `{}`: cross-trial float aggregation is order-sensitive — route it through the flashmark_obs counter/histogram types (pointwise integer merge)",
                        t.text, f.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&str, &[Token], &Structure, &mut Vec<Finding>), src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let structure = Structure::analyze(&tokens);
        let mut findings = Vec::new();
        rule("x.rs", &tokens, &structure, &mut findings);
        findings
    }

    #[test]
    fn constant_seeded_rng_is_flagged() {
        let f = run(seed_dataflow, "fn f() { let rng = SplitMix64::new(42); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("fn `f`"));
        let f = run(
            seed_dataflow,
            "fn f() { let rng = SplitMix64::new(0xDEAD_BEEF); }",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn param_seeded_rng_is_clean() {
        assert!(run(
            seed_dataflow,
            "fn f(seed: u64) { let rng = SplitMix64::new(seed); }"
        )
        .is_empty());
        assert!(
            run(
                seed_dataflow,
                "fn f(chip: u64) { let rng = SplitMix64::new(mix2(chip, 0x0505)); }"
            )
            .is_empty(),
            "any parameter counts: the caller owns the provenance"
        );
        assert!(run(
            seed_dataflow,
            "fn f(&self) { let rng = SplitMix64::new(self.seed); }"
        )
        .is_empty());
        assert!(run(
            seed_dataflow,
            "fn f(cfg: &Config) { let r = SplitMix64::new(cfg.seed); }"
        )
        .is_empty());
    }

    #[test]
    fn taint_flows_through_let_chains() {
        let src = "fn f(seed: u64) { let a = mix2(seed, 1); let b = a ^ 7; let rng = SplitMix64::new(b); }";
        assert!(run(seed_dataflow, src).is_empty());
        let bad = "fn f(seed: u64) { let a = 7; let rng = SplitMix64::new(a); }";
        assert_eq!(run(seed_dataflow, bad).len(), 1);
    }

    #[test]
    fn cell_draws_need_seeds_too() {
        let bad = "fn f(i: u64) { let v = cell_normal(77, i, Channel::EraseSpeed); }";
        // `i` is a parameter, so this is clean; a fully-constant call is not.
        assert!(run(seed_dataflow, bad).is_empty());
        let worse = "fn f() { let v = cell_normal(77, 3, Channel::EraseSpeed); }";
        // `Channel` / `EraseSpeed` are idents but carry no taint... they do
        // count as idents; ensure enum paths do not accidentally launder.
        assert_eq!(run(seed_dataflow, worse).len(), 1);
    }

    #[test]
    fn counter_stream_constructor_is_traced() {
        let bad = "fn f() { let s = CounterStream::new(7, 3, 1); }";
        let f = run(seed_dataflow, bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("CounterStream::new"));
        let clean =
            "fn f(trial_seed: u64, cell: u64) { let s = CounterStream::new(trial_seed, cell, 1); }";
        assert!(run(seed_dataflow, clean).is_empty());
        let chained =
            "fn f(chip: u64) { let op_seed = mix2(chip, 5); let s = CounterStream::new(op_seed, 0, 0); }";
        assert!(run(seed_dataflow, chained).is_empty());
    }

    #[test]
    fn test_fns_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f() { let rng = SplitMix64::new(42); } }";
        assert!(run(seed_dataflow, src).is_empty());
    }

    #[test]
    fn float_accumulation_in_merge_is_flagged() {
        let f = run(
            merge_commutativity,
            "fn merge(&mut self, x: f64) { self.total += x; }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("fn `merge`"));
        let f = run(
            merge_commutativity,
            "fn absorb(&mut self) { self.mean += 0.5; }",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn integer_merge_is_clean() {
        assert!(run(
            merge_commutativity,
            "fn merge(&mut self, c: &Collector) { self.trials += 1; self.ops += c.ops(); }"
        )
        .is_empty());
    }

    #[test]
    fn float_math_outside_merge_fns_is_fine() {
        assert!(run(
            merge_commutativity,
            "fn ber(&self) -> f64 { let mut acc = 0.0; acc += self.x; acc }"
        )
        .is_empty());
    }

    #[test]
    fn sum_into_float_let_then_accumulate() {
        let src = "fn merge_all(&mut self, xs: &[f64]) { let s = xs.iter().sum::<f64>(); self.acc += s; }";
        let f = run(merge_commutativity, src);
        assert_eq!(f.len(), 1);
    }
}
