//! Findings, the machine-readable report, and the committed baseline.
//!
//! The report serializer is deterministic by construction: findings are
//! sorted by `(file, line, rule, message)`, rule counts live in a
//! `BTreeMap`, and nothing timestamped ever enters the document — so
//! `results/lint_report.json` is byte-identical across repeated runs.
//!
//! The baseline (`lint_baseline.json` at the workspace root) is a list of
//! *accepted* findings matched as a multiset on `(rule, file, message)` —
//! line numbers are deliberately excluded so unrelated edits shifting a
//! file do not churn the baseline.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Every rule family the engine knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-free hot paths (`unwrap`/`expect`/`panic!` family).
    PanicFree,
    /// No exact f64 equality on physics quantities.
    FloatEq,
    /// No wall-clock / OS randomness outside sanctioned modules.
    Nondeterminism,
    /// Every public item documented.
    MissingDocs,
    /// No raw thread spawning outside `crates/par`.
    ThreadDiscipline,
    /// No direct printing from library crates.
    PrintDiscipline,
    /// RNG/stream constructions must derive from a seed parameter.
    SeedDataflow,
    /// No `HashMap`/`HashSet` where iteration order can reach artifacts.
    MapOrder,
    /// No wall-clock reads outside the quarantined timing modules.
    WallClock,
    /// No ad-hoc float accumulation in cross-trial merge code.
    MergeCommutativity,
    /// `unsafe` / unchecked-access inventory and `forbid(unsafe_code)`.
    UnsafeAudit,
    /// Unreferenced `pub` items across the workspace.
    PubLiveness,
    /// Malformed or unjustified `flashmark-lint: allow(...)` comments.
    Suppression,
}

impl Rule {
    /// Stable kebab-case name used in reports, baselines, and
    /// suppression comments.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::PanicFree => "panic-free",
            Self::FloatEq => "float-eq",
            Self::Nondeterminism => "nondeterminism",
            Self::MissingDocs => "missing-docs",
            Self::ThreadDiscipline => "thread-discipline",
            Self::PrintDiscipline => "print-discipline",
            Self::SeedDataflow => "seed-dataflow",
            Self::MapOrder => "map-order",
            Self::WallClock => "wall-clock",
            Self::MergeCommutativity => "merge-commutativity",
            Self::UnsafeAudit => "unsafe-audit",
            Self::PubLiveness => "pub-liveness",
            Self::Suppression => "suppression",
        }
    }

    /// Parses a kebab-case rule name (as written in `allow(...)`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 13] = [
    Rule::PanicFree,
    Rule::FloatEq,
    Rule::Nondeterminism,
    Rule::MissingDocs,
    Rule::ThreadDiscipline,
    Rule::PrintDiscipline,
    Rule::SeedDataflow,
    Rule::MapOrder,
    Rule::WallClock,
    Rule::MergeCommutativity,
    Rule::UnsafeAudit,
    Rule::PubLiveness,
    Rule::Suppression,
];

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The result of one engine run over the workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted for stable output.
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_checked: usize,
    /// Findings silenced by a justified suppression comment.
    pub suppressed: usize,
    /// Findings matched (and removed) by the committed baseline.
    pub baselined: usize,
}

impl Report {
    /// Sorts findings into the canonical report order.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
    }

    /// Removes findings matched by the baseline (multiset on
    /// `(rule, file, message)`), counting them in `baselined`. Returns the
    /// baseline entries that matched nothing (stale entries).
    pub fn apply_baseline(&mut self, baseline: &[BaselineEntry]) -> Vec<BaselineEntry> {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in baseline {
            *budget
                .entry((e.rule.clone(), e.file.clone(), e.message.clone()))
                .or_insert(0) += 1;
        }
        let mut matched = 0usize;
        self.findings.retain(|f| {
            let key = (f.rule.name().to_string(), f.file.clone(), f.message.clone());
            if let Some(n) = budget.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    matched += 1;
                    return false;
                }
            }
            true
        });
        self.baselined += matched;
        budget
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .flat_map(|((rule, file, message), n)| {
                std::iter::repeat_with(move || BaselineEntry {
                    rule: rule.clone(),
                    file: file.clone(),
                    message: message.clone(),
                })
                .take(n)
            })
            .collect()
    }

    /// Serializes the report as deterministic pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule.name()).or_insert(0) += 1;
        }
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"flashmark-lint/1\",\n");
        let _ = writeln!(out, "  \"files_checked\": {},", self.files_checked);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(out, "  \"baselined\": {},", self.baselined);
        out.push_str("  \"rule_counts\": {");
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{rule}\": {n}");
        }
        if counts.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, " \"rule\": {},", json_string(f.rule.name()));
            let _ = write!(out, " \"file\": {},", json_string(&f.file));
            let _ = write!(out, " \"line\": {},", f.line);
            let _ = write!(out, " \"message\": {} }}", json_string(&f.message));
        }
        if self.findings.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// One accepted finding in the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name (kebab-case).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Exact finding message.
    pub message: String,
}

/// Serializes a baseline document.
#[must_use]
pub fn baseline_to_json(entries: &[BaselineEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"flashmark-lint-baseline/1\",\n  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, " \"rule\": {},", json_string(&e.rule));
        let _ = write!(out, " \"file\": {},", json_string(&e.file));
        let _ = write!(out, " \"message\": {} }}", json_string(&e.message));
    }
    if entries.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Parses a baseline document. Returns an error string on malformed input
/// so the gate fails loudly rather than silently accepting everything.
pub fn baseline_from_json(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("baseline root must be an object")?;
    let entries = obj
        .iter()
        .find(|(k, _)| k == "entries")
        .map(|(_, v)| v)
        .ok_or("baseline missing `entries`")?;
    let arr = entries.as_array().ok_or("`entries` must be an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let e = item.as_object().ok_or("baseline entry must be an object")?;
        let get = |key: &str| -> Result<String, String> {
            e.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str().map(str::to_string))
                .ok_or_else(|| format!("baseline entry missing string `{key}`"))
        };
        out.push(BaselineEntry {
            rule: get("rule")?,
            file: get("file")?,
            message: get("message")?,
        });
    }
    Ok(out)
}

/// Escapes a string into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal recursive-descent JSON parser — just enough to read the
/// baseline document back in an offline build (no serde available).
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (f64 precision is plenty for line counts).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object with source-ordered keys.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Self::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The element list, if this is an array.
        #[must_use]
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Self::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The key/value list, if this is an object.
        #[must_use]
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Self::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing characters at offset {}", p.pos));
        }
        Ok(v)
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while self.peek().is_some_and(char::is_whitespace) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, c: char) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{c}` at offset {}", self.pos))
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            for c in word.chars() {
                self.expect(c)?;
            }
            Ok(value)
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some('{') => self.object(),
                Some('[') => self.array(),
                Some('"') => self.string().map(Value::Str),
                Some('t') => self.literal("true", Value::Bool(true)),
                Some('f') => self.literal("false", Value::Bool(false)),
                Some('n') => self.literal("null", Value::Null),
                Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect('{')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(':')?;
                let val = self.value()?;
                out.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(',') => self.pos += 1,
                    Some('}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(out));
                    }
                    other => return Err(format!("expected `,` or `}}`, got {other:?}")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect('[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(',') => self.pos += 1,
                    Some(']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    other => return Err(format!("expected `,` or `]`, got {other:?}")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some('"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some('\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("dangling escape")?;
                        self.pos += 1;
                        match esc {
                            'n' => out.push('\n'),
                            'r' => out.push('\r'),
                            't' => out.push('\t'),
                            'u' => {
                                let hex: String = self.chars
                                    [self.pos..(self.pos + 4).min(self.chars.len())]
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                self.pos += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                            other => out.push(other),
                        }
                    }
                    Some(c) => {
                        self.pos += 1;
                        out.push(c);
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || "-+.eE".contains(c))
            {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: Rule, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn report_json_is_deterministic_and_sorted() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 9, Rule::MapOrder, "z"),
                finding("a.rs", 3, Rule::PanicFree, "y"),
                finding("a.rs", 1, Rule::PanicFree, "x"),
            ],
            files_checked: 2,
            suppressed: 1,
            baselined: 0,
        };
        r.normalize();
        let one = r.to_json();
        let two = r.to_json();
        assert_eq!(one, two);
        let a1 = one.find("\"a.rs\", \"line\": 1").unwrap();
        let a3 = one.find("\"a.rs\", \"line\": 3").unwrap();
        let b9 = one.find("\"b.rs\"").unwrap();
        assert!(a1 < a3 && a3 < b9);
        assert!(one.contains("\"panic-free\": 2"));
        assert!(one.ends_with("}\n"));
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let r = Report::default();
        let json = r.to_json();
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"rule_counts\": {}"));
    }

    #[test]
    fn json_escaping_round_trips() {
        let entries = vec![BaselineEntry {
            rule: "panic-free".to_string(),
            file: "a \"b\"\\c.rs".to_string(),
            message: "line1\nline2\ttabbed".to_string(),
        }];
        let doc = baseline_to_json(&entries);
        let back = baseline_from_json(&doc).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn baseline_matching_is_a_multiset() {
        let mut r = Report {
            findings: vec![
                finding("a.rs", 1, Rule::MapOrder, "m"),
                finding("a.rs", 5, Rule::MapOrder, "m"),
                finding("a.rs", 9, Rule::MapOrder, "m"),
            ],
            files_checked: 1,
            ..Report::default()
        };
        let baseline = vec![
            BaselineEntry {
                rule: "map-order".to_string(),
                file: "a.rs".to_string(),
                message: "m".to_string(),
            };
            2
        ];
        let stale = r.apply_baseline(&baseline);
        assert!(stale.is_empty());
        assert_eq!(r.baselined, 2);
        assert_eq!(r.findings.len(), 1, "third copy is NOT baselined");
    }

    #[test]
    fn stale_baseline_entries_are_reported() {
        let mut r = Report::default();
        let baseline = vec![BaselineEntry {
            rule: "float-eq".to_string(),
            file: "gone.rs".to_string(),
            message: "old".to_string(),
        }];
        let stale = r.apply_baseline(&baseline);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "gone.rs");
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::parse(rule.name()), Some(rule));
        }
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn mini_json_parses_nested_documents() {
        let v = json::parse(r#"{"a": [1, 2.5, "s"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[2].as_str(), Some("s"));
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("1 2").is_err());
    }
}
