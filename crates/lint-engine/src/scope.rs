//! File classification and structural analysis.
//!
//! Two layers:
//!
//! * [`FileScope::classify`] — which rule families apply to a file, derived
//!   from its workspace-relative path. This is the successor of the old
//!   `rules_for` in `crates/xtask/src/lint.rs`, with the scoping bug fixed:
//!   **binary targets** (`src/bin/*.rs`, `src/main.rs`) are classified as
//!   drivers that own their stdout and wall clock, while **library**
//!   sources — including the bench crate's library and the root
//!   `src/lib.rs` facade — carry full library discipline.
//! * [`Structure::analyze`] — a lightweight item/scope parse over the token
//!   stream: `#[cfg(test)]` regions (nested mods included), `macro_rules!`
//!   bodies, and per-function scopes with parameter and body token ranges
//!   for the dataflow rules.

use crate::lexer::{Token, TokenKind};
use crate::rules::RuleSet;

/// Classification of one workspace source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileScope {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The crate directory under `crates/` (empty for the root package).
    pub crate_name: String,
    /// Whether this is a binary target (`src/bin/*.rs` or `src/main.rs`).
    pub is_bin: bool,
    /// The rule families that apply.
    pub rules: RuleSet,
}

/// Crates whose sources are the analysis tooling itself: they spell the
/// forbidden patterns as data and print diagnostics by design.
fn is_tooling(crate_name: &str) -> bool {
    matches!(crate_name, "xtask" | "lint-engine")
}

/// The one sanctioned entropy-source module.
const SANCTIONED_RNG: &str = "crates/physics/src/rng.rs";

/// The quarantined timing modules: the only library sources allowed to
/// read the wall clock, because everything they measure lands in the
/// `obs_timings.json` / `service_timings.json` quarantine artifacts that
/// the determinism tests exempt by name.
const WALL_CLOCK_QUARANTINE: [&str; 2] = [
    "crates/bench/src/suite.rs",
    "crates/bench/src/microbench.rs",
];

impl FileScope {
    /// Classifies a workspace-relative path; `None` for files the engine
    /// skips entirely (tests, benches, examples, non-Rust files).
    #[must_use]
    pub fn classify(path: &str) -> Option<Self> {
        let path = path.replace('\\', "/");
        let in_src =
            path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
        if !in_src || !path.ends_with(".rs") {
            return None;
        }
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("")
            .to_string();
        let c = crate_name.as_str();
        // Binary targets are top-level drivers: they own stdout/stderr, may
        // read the wall clock to time real executions, and may panic on
        // startup misconfiguration. Library discipline does not apply.
        let is_bin = path.contains("/src/bin/") || path.ends_with("src/main.rs");
        let tooling = is_tooling(c);
        let sanctioned_rng = path == SANCTIONED_RNG;
        // The root package (`src/lib.rs`) is the public facade: full
        // library discipline, including the hot-path families.
        let root_lib = c.is_empty();
        let rules = RuleSet {
            panic_free: !is_bin && (matches!(c, "nor" | "core" | "reram") || root_lib),
            float_eq: !is_bin && (matches!(c, "physics" | "nor" | "core" | "reram") || root_lib),
            // Drivers and the bench harness time real executions; the RNG
            // module is the sanctioned entropy source; the tooling spells
            // the forbidden patterns.
            nondeterminism: !is_bin && !tooling && c != "bench" && !sanctioned_rng,
            missing_docs: true,
            // `crates/par` is the sanctioned home for worker threads.
            thread_discipline: c != "par",
            // Only binary targets own stdout; the bench *library* reports
            // through its output/markdown layer (sanctioned prints carry
            // justified suppressions).
            print_discipline: !is_bin && !tooling,
            seed_dataflow: !is_bin && !tooling && !sanctioned_rng,
            // Deterministic map order is global: even the tooling's own
            // report must be byte-stable.
            map_order: true,
            // Wall-clock reads are quarantined harder than general
            // nondeterminism: even the bench *library* (where the broad
            // rule is off so it can time kernels) may only touch the
            // clock inside the two timing modules whose output lands in
            // the `*_timings.json` quarantine artifacts. Drivers own
            // their wall clock; the tooling spells the type names.
            wall_clock: !is_bin && !tooling && !WALL_CLOCK_QUARANTINE.contains(&path.as_str()),
            merge_commutativity: !is_bin && !tooling,
            unsafe_audit: true,
            // Wrapping-arithmetic inventory only where silent wraparound
            // could corrupt simulated physics, not in checksum/hash code.
            wrapping_audit: !sanctioned_rng && matches!(c, "physics" | "core"),
            pub_liveness: !is_bin,
        };
        Some(Self {
            path,
            crate_name,
            is_bin,
            rules,
        })
    }
}

/// One function scope found in the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnScope {
    /// The function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the parameter list (excluding the parentheses).
    pub params: std::ops::Range<usize>,
    /// Token range of the body (excluding the braces); empty for
    /// body-less trait method declarations.
    pub body: std::ops::Range<usize>,
    /// Whether the function lives inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Structural facts about one file's token stream.
#[derive(Debug, Clone)]
pub struct Structure {
    /// Per-token flag: inside a `#[cfg(test)]` item (attribute included).
    pub test_mask: Vec<bool>,
    /// Per-token flag: inside a `macro_rules!` body (templates are not
    /// items; rustc checks expansion sites).
    pub macro_mask: Vec<bool>,
    /// Every function scope, in source order.
    pub fns: Vec<FnScope>,
}

impl Structure {
    /// Analyzes a token stream.
    #[must_use]
    pub fn analyze(tokens: &[Token]) -> Self {
        let test_mask = cfg_test_mask(tokens);
        let macro_mask = macro_rules_mask(tokens);
        let fns = fn_scopes(tokens, &test_mask);
        Self {
            test_mask,
            macro_mask,
            fns,
        }
    }

    /// Whether the token at `idx` is non-test, non-macro-template code.
    #[must_use]
    pub fn is_live_code(&self, idx: usize) -> bool {
        !self.test_mask.get(idx).copied().unwrap_or(false)
            && !self.macro_mask.get(idx).copied().unwrap_or(false)
    }
}

/// Returns the token index just past an attribute starting at `i` (which
/// must point at `#`), or `None` if it is not an attribute.
fn attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct("#") {
        return None;
    }
    let mut j = i + 1;
    // Inner attribute `#![...]`.
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return None;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    Some(tokens.len())
}

/// Whether the attribute tokens in `[start, end)` gate on `test`
/// (`#[cfg(test)]`, `#[cfg(all(test, …))]`, …).
fn attr_is_cfg_test(tokens: &[Token], start: usize, end: usize) -> bool {
    let has_cfg = tokens[start..end].iter().any(|t| t.is_ident("cfg"));
    let has_test = tokens[start..end].iter().any(|t| t.is_ident("test"));
    has_cfg && has_test
}

/// Finds the end (exclusive token index) of the item starting at `i`:
/// skips leading attributes and doc comments, then runs to the matching
/// close of the first `{` block, or to a `;` if none opens first.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip any further attributes / doc comments between the cfg attr and
    // the item keyword.
    loop {
        match tokens.get(i) {
            Some(t) if t.kind == TokenKind::DocComment => i += 1,
            Some(t) if t.is_punct("#") => match attr_end(tokens, i) {
                Some(end) => i = end,
                None => break,
            },
            _ => break,
        }
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item. Handles
/// nested `#[cfg(test)] mod` blocks naturally (the outer region already
/// covers them).
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(end_attr) = attr_end(tokens, i) else {
            i += 1;
            continue;
        };
        if attr_is_cfg_test(tokens, i, end_attr) {
            let end = item_end(tokens, end_attr);
            for m in &mut mask[i..end] {
                *m = true;
            }
            i = end;
        } else {
            i = end_attr;
        }
    }
    mask
}

/// Marks every token inside a `macro_rules! name { … }` body.
fn macro_rules_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("macro_rules") {
            let end = item_end(tokens, i);
            for m in &mut mask[i..end] {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// Extracts every `fn` scope: name, parameter token range, body token
/// range. Works at any nesting depth (free fns, impl methods, nested fns).
fn fn_scopes(tokens: &[Token], test_mask: &[bool]) -> Vec<FnScope> {
    let mut fns = Vec::new();
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
    let mut ci = 0;
    while ci < code.len() {
        let i = code[ci];
        if !tokens[i].is_ident("fn") {
            ci += 1;
            continue;
        }
        // Name is the next code token (skip nothing else: `fn` is always
        // followed by the name in valid Rust, generics come after).
        let Some(&name_i) = code.get(ci + 1) else {
            break;
        };
        if tokens[name_i].kind != TokenKind::Ident {
            ci += 1;
            continue;
        }
        let name = tokens[name_i].text.clone();
        let line = tokens[i].line;
        // Find the opening paren of the parameter list, skipping generics
        // `<…>` (angle depth tracked; `->`/`=>` already lexed as single
        // puncts so they cannot desync it).
        let mut j = ci + 2;
        let mut angle = 0i32;
        let mut params = 0..0;
        while let Some(&k) = code.get(j) {
            let t = &tokens[k];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct("<<") {
                angle += 2;
            } else if t.is_punct(">>") {
                // `Vec<Vec<u8>>` lexes its closer as one `>>` token.
                angle -= 2;
            } else if t.is_punct("(") && angle <= 0 {
                // Match the parens.
                let mut depth = 0usize;
                let start = k + 1;
                while let Some(&p) = code.get(j) {
                    if tokens[p].is_punct("(") {
                        depth += 1;
                    } else if tokens[p].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            params = start..p;
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        // Scan to the body `{` (or `;` for a declaration).
        let mut body = 0..0;
        while let Some(&k) = code.get(j) {
            let t = &tokens[k];
            if t.is_punct(";") {
                break;
            }
            if t.is_punct("{") {
                let mut depth = 0usize;
                let start = k + 1;
                while let Some(&p) = code.get(j) {
                    if tokens[p].is_punct("{") {
                        depth += 1;
                    } else if tokens[p].is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            body = start..p;
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        fns.push(FnScope {
            name,
            line,
            params,
            body,
            in_test: test_mask.get(i).copied().unwrap_or(false),
        });
        ci += 2;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn bin_targets_are_drivers() {
        let bin = FileScope::classify("crates/bench/src/bin/run_all.rs").unwrap();
        assert!(bin.is_bin);
        assert!(!bin.rules.print_discipline, "bins own their stdout");
        assert!(!bin.rules.nondeterminism, "bins time real executions");
        assert!(!bin.rules.wall_clock, "bins own their wall clock");
        assert!(!bin.rules.panic_free);
        assert!(bin.rules.missing_docs);
        assert!(bin.rules.thread_discipline);
        assert!(bin.rules.map_order);
    }

    #[test]
    fn root_facade_gets_full_library_discipline() {
        let root = FileScope::classify("src/lib.rs").unwrap();
        assert!(!root.is_bin);
        assert!(root.rules.panic_free && root.rules.float_eq);
        assert!(root.rules.print_discipline && root.rules.nondeterminism);
        assert!(root.rules.seed_dataflow);
    }

    #[test]
    fn bench_library_is_print_disciplined() {
        let lib = FileScope::classify("crates/bench/src/suite.rs").unwrap();
        assert!(
            lib.rules.print_discipline,
            "the bench library reports through its output layer; only bins own stdout"
        );
        assert!(!lib.rules.nondeterminism, "the bench library times kernels");
    }

    #[test]
    fn wall_clock_quarantine_scope() {
        for quarantined in WALL_CLOCK_QUARANTINE {
            let scope = FileScope::classify(quarantined).unwrap();
            assert!(
                !scope.rules.wall_clock,
                "{quarantined} is a quarantined timing module"
            );
        }
        for banned in [
            "crates/bench/src/service_campaign.rs",
            "crates/serve/src/service.rs",
            "crates/obs/src/metrics.rs",
            "src/lib.rs",
        ] {
            let scope = FileScope::classify(banned).unwrap();
            assert!(
                scope.rules.wall_clock,
                "{banned} must not read the wall clock"
            );
        }
        let tooling = FileScope::classify("crates/lint-engine/src/rules/containers.rs").unwrap();
        assert!(
            !tooling.rules.wall_clock,
            "the engine spells the banned type names as data"
        );
    }

    #[test]
    fn sanctioned_scopes() {
        let rng = FileScope::classify("crates/physics/src/rng.rs").unwrap();
        assert!(!rng.rules.nondeterminism && !rng.rules.seed_dataflow);
        assert!(!rng.rules.wrapping_audit, "the mixer is wrapping by design");
        let par = FileScope::classify("crates/par/src/lib.rs").unwrap();
        assert!(!par.rules.thread_discipline);
        let xtask = FileScope::classify("crates/xtask/src/main.rs").unwrap();
        assert!(xtask.is_bin);
        assert!(!xtask.rules.print_discipline);
        let engine = FileScope::classify("crates/lint-engine/src/lexer.rs").unwrap();
        assert!(!engine.rules.seed_dataflow && engine.rules.map_order);
    }

    #[test]
    fn reram_backend_gets_library_discipline() {
        let chip = FileScope::classify("crates/reram/src/chip.rs").unwrap();
        assert!(chip.rules.panic_free, "reram is a simulation backend");
        assert!(chip.rules.float_eq, "reram carries analog physics");
        assert!(chip.rules.pub_liveness && chip.rules.seed_dataflow);
        assert!(chip.rules.nondeterminism && chip.rules.wall_clock);
    }

    #[test]
    fn skipped_files() {
        assert!(FileScope::classify("crates/nor/tests/properties.rs").is_none());
        assert!(FileScope::classify("examples/quickstart.rs").is_none());
        assert!(FileScope::classify("tests/determinism.rs").is_none());
        assert!(FileScope::classify("README.md").is_none());
    }

    #[test]
    fn wrapping_audit_scope() {
        assert!(
            FileScope::classify("crates/physics/src/erase.rs")
                .unwrap()
                .rules
                .wrapping_audit
        );
        assert!(
            !FileScope::classify("crates/msp430/src/info_memory.rs")
                .unwrap()
                .rules
                .wrapping_audit,
            "checksum code wraps by design"
        );
    }

    #[test]
    fn cfg_test_regions_cover_nested_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  mod inner {\n    fn t() { x.unwrap(); }\n  }\n}\nfn after() {}";
        let tokens = lex(src);
        let s = Structure::analyze(&tokens);
        let unwrap_idx = tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(s.test_mask[unwrap_idx]);
        let after_idx = tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(!s.test_mask[after_idx]);
        let fns: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fns, ["live", "t", "after"]);
        assert!(s.fns[1].in_test && !s.fns[2].in_test);
    }

    #[test]
    fn cfg_test_single_item_with_semicolon() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn live() {}";
        let tokens = lex(src);
        let s = Structure::analyze(&tokens);
        let live = tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!s.test_mask[live]);
        let thing = tokens.iter().position(|t| t.is_ident("thing")).unwrap();
        assert!(s.test_mask[thing]);
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn live() {}";
        let tokens = lex(src);
        let s = Structure::analyze(&tokens);
        let f = tokens.iter().position(|t| t.is_ident("f")).unwrap();
        assert!(s.test_mask[f]);
    }

    #[test]
    fn fn_scope_params_and_body() {
        let src =
            "fn seed_me(trial_seed: u64, n: usize) -> u64 {\n  let x = trial_seed + 1;\n  x\n}";
        let tokens = lex(src);
        let s = Structure::analyze(&tokens);
        assert_eq!(s.fns.len(), 1);
        let f = &s.fns[0];
        assert_eq!(f.name, "seed_me");
        let param_text: Vec<&str> = tokens[f.params.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(param_text.contains(&"trial_seed"));
        let body_text: Vec<&str> = tokens[f.body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(body_text.contains(&"let"));
    }

    #[test]
    fn generic_fn_with_closure_param() {
        let src = "fn run<F: Fn(u64) -> u64>(f: F) { f(1); }\nfn next() {}";
        let tokens = lex(src);
        let s = Structure::analyze(&tokens);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "run");
        assert_eq!(s.fns[1].name, "next");
    }

    #[test]
    fn macro_rules_bodies_are_masked() {
        let src = "macro_rules! m {\n  ($x:ident) => { pub fn $x() {} };\n}\npub fn real() {}";
        let tokens = lex(src);
        let s = Structure::analyze(&tokens);
        let dollar = tokens.iter().position(|t| t.is_punct("$")).unwrap();
        assert!(s.macro_mask[dollar]);
        let real = tokens.iter().position(|t| t.is_ident("real")).unwrap();
        assert!(!s.macro_mask[real]);
    }
}
