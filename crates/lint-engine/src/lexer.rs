//! A lossless-enough Rust lexer for static analysis.
//!
//! Produces a flat token stream with 1-based line numbers. Comments and
//! string literals are kept as *tokens* (so the suppression parser can read
//! `// flashmark-lint: ...` comments and the missing-docs rule can see
//! `///` docs) but rule passes that scan for code patterns simply skip
//! non-code token kinds — which is what makes the engine immune to
//! `.unwrap()` appearing inside a raw string or a comment.
//!
//! Handled: line and nested block comments, doc comments (`///`, `//!`,
//! `/** */`), string literals with escapes, byte strings, raw strings
//! `r"…"` / `r#"…"#` at any hash depth, char literals vs lifetimes,
//! numeric literals (with float detection), multi-character operators.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `SplitMix64`, `r#match`).
    Ident,
    /// A lifetime such as `'a` (including `'static`).
    Lifetime,
    /// Any string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `c"…"`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// An integer literal.
    Int,
    /// A floating-point literal (`1.0`, `1e5`, `0.5e-3`).
    Float,
    /// An operator or punctuation token, possibly multi-character (`==`,
    /// `+=`, `::`, `->`).
    Punct,
    /// A `//` comment that is *not* a doc comment.
    LineComment,
    /// A `///` or `//!` doc comment line.
    DocComment,
    /// A `/* … */` comment (nested blocks folded into one token); doc
    /// block comments (`/** … */`, `/*! … */`) also land here with their
    /// doc flag carried in the text.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Source text. For comments this includes the comment markers; for
    /// strings it is the *full literal* including quotes (rules never scan
    /// inside it); for everything else it is the exact slice.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// Whether this token participates in code-pattern scanning.
    #[must_use]
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::DocComment | TokenKind::BlockComment
        )
    }

    /// Whether this is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Multi-character operators joined into single `Punct` tokens, longest
/// first so maximal munch wins (`..=` before `..` before `.`).
const MULTI_PUNCT: [&str; 25] = [
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..", ".",
];

/// Lexes one source file into a token stream.
///
/// The lexer never fails: malformed input degrades to punct/ident tokens,
/// which at worst makes a rule miss a pattern on a line that would not
/// compile anyway.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advances one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                ch if ch.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(line, "r".to_string());
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, "b".to_string());
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line, "b".to_string());
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line, "br".to_string());
                }
                'c' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, "c".to_string());
                }
                '\'' => self.quote(line),
                ch if ch.is_ascii_digit() => self.number(line),
                ch if ch == '_' || ch.is_alphabetic() => self.ident(line),
                _ => self.punct(line),
            }
        }
        self.tokens
    }

    /// Whether `r`/`br` at the current position starts a raw string: `r`
    /// followed by zero or more `#` then `"`. (`offset` points just past
    /// the `r`.) Distinguishes `r"…"` from an identifier like `r#match`
    /// (raw identifier — `#` then a letter).
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let is_doc =
            (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        let kind = if is_doc {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        };
        self.push(kind, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// A `"…"` string with escape handling; `prefix` carries `b`/`c`.
    fn string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// A raw string `r##"…"##` at any hash depth; no escapes inside.
    fn raw_string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        let closer: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        let mut tail = String::new();
        while let Some(c) = self.bump() {
            tail.push(c);
            if tail.ends_with(&closer) {
                break;
            }
        }
        text.push_str(&tail);
        self.push(TokenKind::Str, text, line);
    }

    /// A `'…'` token: lifetime or char literal.
    fn quote(&mut self, line: u32) {
        // Lifetime: `'` + ident char(s) NOT followed by a closing `'`.
        // Char literal: `'x'`, `'\n'`, `'\u{1F600}'`.
        let c1 = self.peek(1);
        let is_lifetime = match c1 {
            Some(c) if c == '_' || c.is_alphabetic() => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_literal(line, String::new());
        }
    }

    fn char_literal(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push('\'');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            if c == '\'' {
                break;
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Radix prefixes are integer-only.
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Int, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part: `.` followed by a digit (not `..` or a method
        // call like `1.max(2)`).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // A trailing `1.` (float with empty fraction) — only when not `..`.
        else if self.peek(0) == Some('.')
            && self.peek(1) != Some('.')
            && !self.peek(1).is_some_and(|c| c == '_' || c.is_alphabetic())
        {
            is_float = true;
            text.push('.');
            self.bump();
        }
        // Exponent: `e`/`E` with optional sign and at least one digit.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                for _ in 0..=sign {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`u64`, `f64`, `usize`) — glued to the literal.
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        // Raw identifier `r#keyword`.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            text.push_str("r#");
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn punct(&mut self, line: u32) {
        let remaining: String = self.chars[self.pos..self.pos + 3.min(self.chars.len() - self.pos)]
            .iter()
            .collect();
        for op in MULTI_PUNCT {
            if remaining.starts_with(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(TokenKind::Punct, op.to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn f(x: u64) -> u64 { x == 0 }");
        assert!(toks.contains(&(TokenKind::Punct, "->".into())));
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Ident, "u64".into())));
    }

    #[test]
    fn raw_string_hides_patterns() {
        let toks = lex(r###"let s = r#"x.unwrap() panic!"#;"###);
        let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap"));
        // No Ident token named `unwrap` escapes the literal.
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_string_with_hash_in_body() {
        let toks = lex(r####"let s = r##"end "# not yet"##; done"####);
        assert!(toks.iter().any(|t| t.is_ident("done")));
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text.contains("not yet"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[1].is_ident("code"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(lifetimes[0].text, "'a");
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let toks = lex("x: &'static str");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("1.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e5")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.5e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFF_u64")[0].0, TokenKind::Int);
        assert_eq!(kinds("3f64")[0].0, TokenKind::Float);
        // `0..5` is Int Punct(..) Int, not a float.
        let r = kinds("0..5");
        assert_eq!(r[0].0, TokenKind::Int);
        assert_eq!(r[1], (TokenKind::Punct, "..".into()));
        assert_eq!(r[2].0, TokenKind::Int);
        // `1.max(2)` keeps 1 as an int (method call on a literal).
        let m = kinds("1.max(2)");
        assert_eq!(m[0].0, TokenKind::Int);
        assert!(m.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn doc_vs_plain_comments() {
        let toks = lex("/// doc\n//! inner\n// plain\n//// not doc\ncode");
        assert_eq!(toks[0].kind, TokenKind::DocComment);
        assert_eq!(toks[1].kind, TokenKind::DocComment);
        assert_eq!(toks[2].kind, TokenKind::LineComment);
        assert_eq!(toks[3].kind, TokenKind::LineComment);
        assert!(toks[4].is_ident("code"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn multiline_string_keeps_line_of_start_and_resumes() {
        let toks = lex("let s = \"one\ntwo\";\nnext");
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.line, 1);
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#"let s = "quote \" inside"; after"#);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text.contains("inside"));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = lex(r##"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr";"##);
        let strs = toks.iter().filter(|t| t.kind == TokenKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn raw_ident_is_not_raw_string() {
        let toks = lex("let r#match = 1; r#\"s\"#");
        assert!(toks.iter().any(|t| t.is_ident("r#match")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn compound_assign_ops() {
        let toks = kinds("a += 1.0; b -= 2; c *= 3;");
        assert!(toks.contains(&(TokenKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "-=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "*=".into())));
    }
}
