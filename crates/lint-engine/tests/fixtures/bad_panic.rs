//! Fixture: panic-free violations in simulator code.

/// Reads a register or dies.
pub fn read_register(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// Looks up a segment or dies with a message.
pub fn lookup_segment(v: Option<u32>) -> u32 {
    v.expect("segment must exist")
}

/// Unreachable state handler.
pub fn handle(state: u8) -> u8 {
    match state {
        0 => 1,
        _ => unreachable!("corrupt state"),
    }
}
