//! Fixture: classic-family violations — float-eq, nondeterminism,
//! thread-discipline, print-discipline, missing-docs.

pub fn undocumented_helper() {}

/// Exact float comparison against a simulated threshold.
pub fn same_level(a: f64) -> bool {
    a == 0.5
}

/// Wall-clock timing inside simulation code.
pub fn elapsed_s() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

/// Raw thread spawn outside the deterministic runner.
pub fn fan_out() {
    std::thread::spawn(|| {});
}

/// Library code writing to stdout/stderr.
pub fn narrate(step: u32) {
    println!("step {step}");
    eprintln!("step {step} done");
}
