//! Fixture: forbidden patterns inside strings and comments must not fire.
//! The doc generator renders `.unwrap()` calls like `x.unwrap()` here.

/// Emits a code snippet for the docs; the snippet text is data, not code.
pub fn snippet() -> &'static str {
    r#"let value = reading.unwrap(); panic!("HashMap: {value}");"#
}

/// Raw string at hash depth two, containing an inner `"#` terminator.
pub fn nested_snippet() -> &'static str {
    r##"segments.get(&seg).expect("missing"); r#"thread::spawn"#"##
}

// A line comment mentioning x.unwrap() and println!("...") is also inert.
/// Byte strings carry patterns too.
pub fn byte_snippet() -> &'static [u8] {
    b"SystemTime::now().unwrap()"
}
