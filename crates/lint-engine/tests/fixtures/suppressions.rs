//! Fixture: suppression syntax — justified, unjustified, and unknown.

/// Justified suppression: the finding is silenced and accounted.
pub fn justified(v: Option<u32>) -> u32 {
    // flashmark-lint: allow(panic-free) -- fixture: invariant checked by caller, fails closed
    v.unwrap()
}

/// Unjustified suppression: inert, and itself a finding.
pub fn unjustified(v: Option<u32>) -> u32 {
    // flashmark-lint: allow(panic-free)
    v.unwrap()
}

/// Unknown rule name: a finding; the unwrap underneath still fires.
pub fn unknown_rule(v: Option<u32>) -> u32 {
    // flashmark-lint: allow(no-such-rule) -- justification present but rule is unknown
    v.unwrap()
}

/// Multi-rule suppression covering the next line.
pub fn multi() -> u32 {
    // flashmark-lint: allow(panic-free, map-order) -- fixture: both findings on the next line are intended
    std::collections::HashMap::<u32, u32>::new().get(&0).copied().unwrap()
}
