//! Fixture: seed-dataflow clean patterns — provenance from parameters.

/// Direct parameter use.
pub fn stream_from_param(trial_seed: u64) -> SplitMix64 {
    SplitMix64::new(trial_seed)
}

/// Provenance traced through a `let` chain.
pub fn stream_via_lets(cfg: &TrialConfig) -> SplitMix64 {
    let base = cfg.seed_for_trial();
    let forked = mix2(base, 0x9E37);
    SplitMix64::new(forked)
}

/// Seed-carrying field reads count as provenance.
pub struct Harness {
    /// Per-trial seed.
    pub seed: u64,
}

impl Harness {
    /// Stream derived from the struct's seed field.
    pub fn stream(&self) -> SplitMix64 {
        SplitMix64::new(self.seed ^ 0x5EED)
    }
}

/// Counter-based stream keyed off a parameter-derived op seed.
pub fn counter_stream_from_param(op_seed: u64, word: u64) -> CounterStream {
    CounterStream::new(op_seed, word, 0x9806)
}
