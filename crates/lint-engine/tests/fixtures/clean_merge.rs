//! Fixture: merge-commutativity clean pattern — integer counters only.

/// Merges one shard using exact integer arithmetic (commutative).
pub fn merge_shard(total: &mut Counts, shard: &Counts) {
    total.trials += shard.trials;
    total.bit_errors += shard.bit_errors;
    total.flip_histogram_sum += shard.flip_histogram_sum;
}

/// Float math outside merge functions is unrestricted.
pub fn summarize(c: &Counts) -> f64 {
    let mut ber = c.bit_errors as f64;
    ber /= (c.trials as f64).max(1.0);
    ber
}

/// Struct for the fixture.
pub struct Counts {
    /// Trial count.
    pub trials: u64,
    /// Exact error count.
    pub bit_errors: u64,
    /// Histogram mass as integer micro-units.
    pub flip_histogram_sum: u64,
}
