//! Fixture: merge-commutativity violations — ad-hoc float accumulation.

/// Merges one shard of metrics into the aggregate.
pub fn merge_shard(total: &mut Totals, shard: &Totals) {
    total.trials += shard.trials;
    total.ber_sum += shard.ber;
    total.wall_s += shard.wall_s * 1.0;
}

/// Absorbs a trial outcome.
pub fn absorb_outcome(acc: &mut Acc, wall_s: f64) {
    let weighted = wall_s * 0.5;
    acc.wall += weighted;
}

/// Struct for the fixture.
pub struct Totals {
    /// Trial count.
    pub trials: u64,
    /// Sum of bit-error rates.
    pub ber_sum: f64,
    /// Wall-clock accumulator.
    pub wall_s: f64,
    /// Per-shard bit-error rate.
    pub ber: f64,
}
