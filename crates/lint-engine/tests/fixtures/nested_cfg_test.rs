//! Fixture: deeply nested `#[cfg(test)]` regions are exempt from rules.

/// Live code stays clean.
pub fn live(v: u32) -> u32 {
    v + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct() {
        assert_eq!(live(1).checked_add(1).unwrap(), 3);
    }

    mod nested {
        #[test]
        fn inner() {
            // Test-only panics, prints, and hash maps are all allowed.
            let mut m = std::collections::HashMap::new();
            m.insert(1u32, 2u32);
            println!("{:?}", m.get(&1).unwrap());
            panic!("intentional");
        }

        #[cfg(test)]
        mod doubly_nested {
            #[test]
            fn deepest() {
                let rng = SplitMix64::new(42);
                let _ = rng;
            }
        }
    }
}

#[cfg(test)]
use std::collections::HashSet;
