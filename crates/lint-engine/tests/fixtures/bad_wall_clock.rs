//! Fixture: wall-clock violations — `Instant` / `SystemTime` reads in a
//! library source that is not one of the quarantined timing modules.

use std::time::Instant;

/// Times a batch with the wall clock and bakes the reading into the
/// returned figure — exactly the poison the rule exists to catch.
pub fn timed_batch(n: u64) -> u64 {
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i);
    }
    acc ^ start.elapsed().as_nanos() as u64
}

/// Stamps a record with the OS clock.
pub fn stamp() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
