//! Fixture: map-order violations — hash-ordered containers.

use std::collections::HashMap;
use std::collections::HashSet;

/// Collects per-segment counts into a hash map (iteration order random).
pub fn tally(segs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &s in segs {
        *m.entry(s).or_insert(0) += 1;
    }
    m
}

/// Deduplicates addresses with a hash set.
pub fn dedup(addrs: &[u32]) -> HashSet<u32> {
    addrs.iter().copied().collect()
}
