//! Fixture: seed-dataflow violations — streams built from constants.

/// Builds a noise stream from a hard-coded literal.
pub fn constant_stream() -> SplitMix64 {
    SplitMix64::new(0xDEAD_BEEF)
}

/// The laundering variant: the constant passes through a local binding,
/// but no parameter or seed-carrying name ever reaches the constructor.
pub fn laundered_stream() -> SplitMix64 {
    let salt = 17u64;
    let mixed = salt * 3;
    SplitMix64::new(mixed)
}

/// Free-function cell draws need provenance too.
pub fn constant_cell_draw() -> f64 {
    cell_uniform(7, 9, Channel::Program)
}

/// Counter-based streams are construction points too: a constant key
/// collapses every (cell, op) lane onto one deterministic sequence.
pub fn constant_counter_stream() -> CounterStream {
    CounterStream::new(42, 3, 1)
}
