//! Fixture: unsafe/unchecked audit findings.

/// Reads a cell without a bounds check.
pub fn fast_read(cells: &[u8], idx: usize) -> u8 {
    unsafe { *cells.get_unchecked(idx) }
}

/// Unchecked unwrap of a known-Some value.
pub fn known_some(v: Option<u8>) -> u8 {
    unsafe { v.unwrap_unchecked() }
}
