//! Fixture-corpus tests: every rule family exercised against known-bad
//! and known-clean snippets under `tests/fixtures/`. The fixture files
//! are data (the xtask workspace walk skips `/fixtures/` paths), so they
//! are free to violate every rule on purpose.

use flashmark_lint_engine::{analyze, Report, Rule, SourceFile};

/// Analyzes one fixture as if it lived at `path` inside the workspace.
fn analyze_at(path: &str, source: &str) -> Report {
    analyze(&[SourceFile {
        path: path.to_string(),
        source: source.to_string(),
    }])
}

/// Findings of one rule.
fn of(report: &Report, rule: Rule) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn bad_panic_fires_three_times() {
    let r = analyze_at(
        "crates/nor/src/fixture.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert_eq!(of(&r, Rule::PanicFree), 3, "unwrap, expect, unreachable!");
}

#[test]
fn raw_strings_and_comments_never_fire() {
    let r = analyze_at(
        "crates/nor/src/fixture.rs",
        include_str!("fixtures/clean_raw_string.rs"),
    );
    for rule in [
        Rule::PanicFree,
        Rule::PrintDiscipline,
        Rule::MapOrder,
        Rule::WallClock,
        Rule::Nondeterminism,
        Rule::ThreadDiscipline,
        Rule::UnsafeAudit,
        Rule::FloatEq,
    ] {
        assert_eq!(of(&r, rule), 0, "{} fired inside string data", rule.name());
    }
}

#[test]
fn nested_cfg_test_regions_are_fully_exempt() {
    let r = analyze_at(
        "crates/nor/src/fixture.rs",
        include_str!("fixtures/nested_cfg_test.rs"),
    );
    assert!(
        r.findings.is_empty(),
        "test-only code produced findings: {:?}",
        r.findings
    );
}

#[test]
fn constant_seeded_streams_are_flagged() {
    let r = analyze_at(
        "crates/physics/src/fixture.rs",
        include_str!("fixtures/bad_seed.rs"),
    );
    assert_eq!(
        of(&r, Rule::SeedDataflow),
        4,
        "direct constant, laundered constant, constant cell draw, constant counter stream"
    );
}

#[test]
fn param_derived_streams_are_clean() {
    let r = analyze_at(
        "crates/physics/src/fixture.rs",
        include_str!("fixtures/clean_seed.rs"),
    );
    assert_eq!(of(&r, Rule::SeedDataflow), 0, "{:?}", r.findings);
}

#[test]
fn float_accumulation_in_merge_code_is_flagged() {
    let r = analyze_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/bad_merge.rs"),
    );
    assert_eq!(
        of(&r, Rule::MergeCommutativity),
        3,
        "ber read, float-literal RHS, float let-binding"
    );
}

#[test]
fn integer_merges_are_clean() {
    let r = analyze_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/clean_merge.rs"),
    );
    assert_eq!(of(&r, Rule::MergeCommutativity), 0, "{:?}", r.findings);
}

#[test]
fn hash_containers_are_flagged_everywhere() {
    let r = analyze_at(
        "crates/nor/src/fixture.rs",
        include_str!("fixtures/bad_map_order.rs"),
    );
    assert_eq!(
        of(&r, Rule::MapOrder),
        5,
        "two imports, two signatures, one constructor"
    );
}

#[test]
fn wall_clock_reads_are_flagged_outside_quarantine() {
    // The bench *library* is where the rule earns its keep: the broad
    // nondeterminism family is off there (the bench layer times kernels),
    // so only wall-clock catches a clock read leaking into artifact code.
    let r = analyze_at(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/bad_wall_clock.rs"),
    );
    assert_eq!(
        of(&r, Rule::WallClock),
        3,
        "import, Instant::now read, SystemTime read"
    );
    assert_eq!(
        of(&r, Rule::Nondeterminism),
        0,
        "the bench library is exempt from the broad family — wall-clock is the only gate"
    );
}

#[test]
fn quarantined_timing_modules_may_read_the_clock() {
    let r = analyze_at(
        "crates/bench/src/microbench.rs",
        include_str!("fixtures/bad_wall_clock.rs"),
    );
    assert_eq!(
        of(&r, Rule::WallClock),
        0,
        "the quarantined timing module owns the wall clock: {:?}",
        r.findings
    );
}

#[test]
fn unsafe_and_unchecked_are_inventoried() {
    let r = analyze_at(
        "crates/nor/src/fixture.rs",
        include_str!("fixtures/bad_unsafe.rs"),
    );
    assert_eq!(
        of(&r, Rule::UnsafeAudit),
        4,
        "two unsafe blocks, get_unchecked, unwrap_unchecked"
    );
}

#[test]
fn classic_families_each_fire() {
    let r = analyze_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/bad_classic.rs"),
    );
    assert_eq!(of(&r, Rule::MissingDocs), 1, "undocumented_helper");
    assert_eq!(of(&r, Rule::FloatEq), 1, "a == 0.5");
    assert!(of(&r, Rule::Nondeterminism) >= 1, "Instant::now");
    assert_eq!(of(&r, Rule::ThreadDiscipline), 1, "thread::spawn");
    assert_eq!(of(&r, Rule::PrintDiscipline), 2, "println + eprintln");
}

#[test]
fn suppression_semantics_end_to_end() {
    let r = analyze_at(
        "crates/nor/src/fixture.rs",
        include_str!("fixtures/suppressions.rs"),
    );
    // Kept: the unwraps under the unjustified and unknown-rule comments.
    assert_eq!(of(&r, Rule::PanicFree), 2, "{:?}", r.findings);
    // The bad comments themselves are findings.
    assert_eq!(of(&r, Rule::Suppression), 2, "{:?}", r.findings);
    // Silenced: the justified unwrap plus the multi-rule line (2 findings).
    assert_eq!(r.suppressed, 3);
    assert_eq!(of(&r, Rule::MapOrder), 0, "multi-rule allow covers HashMap");
}
