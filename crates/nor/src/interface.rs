//! The digital interface traits the Flashmark algorithms are written
//! against.
//!
//! [`FlashInterface`] is exactly what a flash controller exposes to software:
//! reads, programs, segment erases, and the emergency-exit-based partial
//! erase. `flashmark-core` drives *only* this trait, so the algorithms run
//! unmodified against the simulator or (with an adapter) real hardware.
//!
//! [`BulkStress`] is a simulator-only fast path: applying tens of thousands
//! of identical P/E cycles in closed form. The faithful cycle-by-cycle loop
//! and the bulk path are asserted equivalent in tests.

use flashmark_physics::{Micros, Seconds};

use crate::addr::{SegmentAddr, WordAddr};
use crate::error::NorError;
use crate::geometry::FlashGeometry;

/// Which imprint schedule to account time for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImprintTiming {
    /// Full-length segment erase every cycle (the paper's baseline:
    /// 1380 s at 40 K cycles).
    Baseline,
    /// Early-exited erase every cycle (the paper's accelerated procedure:
    /// ~3.5× faster, 387 s at 40 K cycles).
    Accelerated,
}

/// A word/segment-granular NOR flash digital interface.
///
/// Mirrors an MCU flash controller: reads and programs are word-granular,
/// erases are segment-granular, programming can only flip bits `1 → 0`, and
/// an in-flight erase can be aborted after a chosen partial-erase time.
pub trait FlashInterface {
    /// Device geometry.
    fn geometry(&self) -> FlashGeometry;

    /// Reads one word (with physical read noise).
    ///
    /// # Errors
    ///
    /// Address or controller-state errors ([`NorError`]).
    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError>;

    /// Programs the 0-bits of `value` into a word.
    ///
    /// # Errors
    ///
    /// Address, lock, or (strict mode) overwrite errors.
    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError>;

    /// Reads every word of a segment in one burst.
    ///
    /// Semantically identical to reading each word of the segment in order
    /// with [`FlashInterface::read_word`] (the default implementation does
    /// exactly that); implementations may batch the underlying physics
    /// sweep for speed, as long as results stay bit-identical.
    ///
    /// # Errors
    ///
    /// Address or controller-state errors ([`NorError`]).
    fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        self.geometry()
            .segment_words(seg)
            .map(|w| self.read_word(w))
            .collect()
    }

    /// Programs a whole segment in block-write mode (faster per word).
    ///
    /// # Errors
    ///
    /// [`NorError::BlockLengthMismatch`] if `values` is not exactly one
    /// segment long, plus address/lock errors.
    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError>;

    /// Fully erases a segment (all cells read 1 afterwards).
    ///
    /// # Errors
    ///
    /// Address or lock errors.
    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError>;

    /// Starts a segment erase and issues the emergency exit after `t_pe`,
    /// leaving cells wherever their threshold voltage landed.
    ///
    /// # Errors
    ///
    /// Address or lock errors.
    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError>;

    /// Erases a segment but exits as soon as every cell reads erased
    /// (polling between short pulses). Returns the erase time actually
    /// spent. This is the paper's accelerated-imprint primitive.
    ///
    /// # Errors
    ///
    /// Address or lock errors.
    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError>;

    /// Total simulated time elapsed on this controller.
    fn elapsed(&self) -> Seconds;
}

/// Extension helpers over any [`FlashInterface`].
pub trait FlashInterfaceExt: FlashInterface {
    /// Reads every word of a segment once (delegates to the possibly-batched
    /// [`FlashInterface::read_block`]).
    ///
    /// # Errors
    ///
    /// Propagates the first read error.
    fn read_segment(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        self.read_block(seg)
    }

    /// Programs every word of a segment to 0 (all cells programmed) using
    /// block-write mode.
    ///
    /// # Errors
    ///
    /// Propagates program errors.
    fn program_all_zero(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        let n = self.geometry().words_per_segment();
        self.program_block(seg, &vec![0u16; n])
    }
}

impl<T: FlashInterface + ?Sized> FlashInterfaceExt for T {}

// Mutable references are flash interfaces too, so wrappers (sanitizers,
// adapters) can be layered over a borrow without taking ownership.
impl<T: FlashInterface + ?Sized> FlashInterface for &mut T {
    fn geometry(&self) -> FlashGeometry {
        (**self).geometry()
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        (**self).read_word(word)
    }

    fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        (**self).read_block(seg)
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        (**self).program_word(word, value)
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        (**self).program_block(seg, values)
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        (**self).erase_segment(seg)
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        (**self).partial_erase(seg, t_pe)
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        (**self).erase_until_clean(seg)
    }

    fn elapsed(&self) -> Seconds {
        (**self).elapsed()
    }
}

impl<T: PartialProgram + ?Sized> PartialProgram for &mut T {
    fn partial_program(&mut self, seg: SegmentAddr, t_pp: Micros) -> Result<(), NorError> {
        (**self).partial_program(seg, t_pp)
    }
}

impl<T: BulkStress + ?Sized> BulkStress for &mut T {
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        (**self).bulk_imprint(seg, pattern, cycles, timing)
    }
}

/// Optional capability: partial (aborted) program pulses over a whole
/// segment — the sensing primitive of the FFD-style recycled-flash
/// detectors the paper cites as related work (\[6\], \[7\]). Not every part
/// supports aborting a program, hence a separate trait.
pub trait PartialProgram: FlashInterface {
    /// Applies a program pulse of duration `t_pp` to every cell of `seg`,
    /// aborted before typical cells reach the programmed level.
    ///
    /// # Errors
    ///
    /// Address or lock errors.
    fn partial_program(&mut self, seg: SegmentAddr, t_pp: Micros) -> Result<(), NorError>;
}

/// Simulator-only closed-form stress application.
pub trait BulkStress: FlashInterface {
    /// Applies `cycles` erase+program cycles of `pattern` to `seg` and
    /// advances the simulated clock by the time the chosen schedule would
    /// take. Returns the time spent.
    ///
    /// End state and accumulated wear are identical to running the faithful
    /// loop (asserted by equivalence tests).
    ///
    /// # Errors
    ///
    /// Address, lock, or pattern-length errors.
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        timing: ImprintTiming,
    ) -> Result<Seconds, NorError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FlashController;
    use crate::timing::FlashTimings;
    use flashmark_physics::PhysicsParams;

    #[test]
    fn ext_read_segment_and_program_all_zero() {
        let mut ctl = FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            FlashTimings::msp430(),
            1,
        );
        let seg = SegmentAddr::new(0);
        let words = ctl.read_segment(seg).unwrap();
        assert_eq!(words.len(), 256);
        assert!(words.iter().all(|&w| w == 0xFFFF));
        ctl.program_all_zero(seg).unwrap();
        let words = ctl.read_segment(seg).unwrap();
        assert!(words.iter().all(|&w| w == 0x0000));
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_f: &mut dyn FlashInterface) {}
    }
}
