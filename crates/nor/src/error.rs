//! Error type of the NOR flash emulation.

use core::fmt;

/// Errors raised by the flash array, controller, or register front-end.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NorError {
    /// A geometry parameter was invalid.
    InvalidGeometry(&'static str),
    /// Segment index past the end of the device.
    SegmentOutOfRange {
        /// Offending segment index.
        segment: u32,
        /// Number of segments on the device.
        total: u32,
    },
    /// Word index past the end of the device.
    WordOutOfRange {
        /// Offending word index.
        word: u32,
        /// Number of words on the device.
        total: u64,
    },
    /// The controller is locked (`LOCK` bit set); the operation was refused.
    Locked,
    /// The controller is mid-operation and cannot accept the command.
    Busy,
    /// An abort was issued with no erase in flight.
    NoEraseInProgress,
    /// A program tried to flip bits from 0 to 1, which flash cannot do
    /// without an erase (strict mode only).
    OverwriteWithoutErase {
        /// Word that was being programmed.
        word: u32,
    },
    /// A register write used a wrong password key (sets `KEYV` on real
    /// parts).
    KeyViolation,
    /// A flash access conflicted with the controller mode bits (sets
    /// `ACCVIFG` on real parts), e.g. a write with neither `WRT` nor `ERASE`
    /// set.
    AccessViolation {
        /// Word involved in the access.
        word: u32,
    },
    /// A block buffer had the wrong length for the segment.
    BlockLengthMismatch {
        /// Words supplied.
        got: usize,
        /// Words per segment required.
        expected: usize,
    },
    /// The cumulative program time of a segment since its last erase
    /// exceeded the datasheet limit (`tCPT`); an erase is required before
    /// further programming.
    CumulativeProgramTime {
        /// Segment involved.
        segment: u32,
    },
    /// The segment has exceeded the point where the simulator can model it
    /// (wear far beyond endurance).
    WearModelRange {
        /// Wear in kcycles.
        kcycles: f64,
    },
    /// The interface NAK'ed the command (bus glitch, handshake timeout).
    /// The operation had no effect on the array; re-issuing it is expected
    /// to succeed.
    TransientNak,
    /// Power was lost mid-operation. The operation's effect on the array is
    /// partial or absent; once power returns the device accepts commands
    /// again.
    PowerLoss,
}

// f64 in WearModelRange breaks Eq; keep Eq by comparing bits.
impl Eq for NorError {}

impl NorError {
    /// Whether the error is transient: the command failed for reasons that
    /// do not persist (NAK, busy controller, mid-operation power loss), so
    /// a bounded retry of the same operation is the correct response.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::TransientNak | Self::PowerLoss | Self::Busy)
    }
}

impl fmt::Display for NorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidGeometry(why) => write!(f, "invalid flash geometry: {why}"),
            Self::SegmentOutOfRange { segment, total } => {
                write!(
                    f,
                    "segment {segment} out of range (device has {total} segments)"
                )
            }
            Self::WordOutOfRange { word, total } => {
                write!(f, "word {word} out of range (device has {total} words)")
            }
            Self::Locked => write!(f, "flash controller is locked"),
            Self::Busy => write!(f, "flash controller is busy"),
            Self::NoEraseInProgress => write!(f, "no erase operation in progress to abort"),
            Self::OverwriteWithoutErase { word } => {
                write!(
                    f,
                    "program of word {word} would flip 0 bits to 1 without an erase"
                )
            }
            Self::KeyViolation => write!(f, "register write with invalid password key"),
            Self::AccessViolation { word } => {
                write!(
                    f,
                    "flash access violation at word {word} (mode bits do not allow it)"
                )
            }
            Self::BlockLengthMismatch { got, expected } => {
                write!(f, "block buffer has {got} words, segment needs {expected}")
            }
            Self::CumulativeProgramTime { segment } => {
                write!(
                    f,
                    "cumulative program time of segment {segment} exceeded; erase required"
                )
            }
            Self::WearModelRange { kcycles } => {
                write!(
                    f,
                    "wear of {kcycles} kcycles is outside the calibrated model range"
                )
            }
            Self::TransientNak => write!(f, "interface rejected the command (transient nak)"),
            Self::PowerLoss => write!(f, "power lost mid-operation"),
        }
    }
}

impl std::error::Error for NorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_prose() {
        let samples: Vec<NorError> = vec![
            NorError::InvalidGeometry("zero banks"),
            NorError::SegmentOutOfRange {
                segment: 9,
                total: 8,
            },
            NorError::WordOutOfRange {
                word: 4096,
                total: 4096,
            },
            NorError::Locked,
            NorError::Busy,
            NorError::NoEraseInProgress,
            NorError::OverwriteWithoutErase { word: 3 },
            NorError::KeyViolation,
            NorError::BlockLengthMismatch {
                got: 3,
                expected: 256,
            },
            NorError::TransientNak,
            NorError::PowerLoss,
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NorError>();
    }

    #[test]
    fn equality() {
        assert_eq!(NorError::Locked, NorError::Locked);
        assert_ne!(NorError::Locked, NorError::Busy);
    }

    #[test]
    fn transient_classification() {
        assert!(NorError::TransientNak.is_transient());
        assert!(NorError::PowerLoss.is_transient());
        assert!(NorError::Busy.is_transient());
        assert!(!NorError::Locked.is_transient());
        assert!(!NorError::KeyViolation.is_transient());
    }
}
