//! Typed flash addresses.
//!
//! Segments and words are indexed linearly across the whole device; the
//! [`FlashGeometry`](crate::geometry::FlashGeometry) maps between the two and
//! into per-cell indices.

use core::fmt;

/// Index of one 512-byte flash segment (the erase granule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SegmentAddr(u32);

impl SegmentAddr {
    /// Creates a segment address from a linear segment index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The linear segment index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SegmentAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}

impl From<u32> for SegmentAddr {
    fn from(i: u32) -> Self {
        Self(i)
    }
}

/// Index of one 16-bit flash word (the program/read granule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(u32);

impl WordAddr {
    /// Creates a word address from a linear word index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The linear word index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The word `offset` words after this one.
    #[must_use]
    pub const fn offset(self, offset: u32) -> Self {
        Self(self.0 + offset)
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word#{}", self.0)
    }
}

impl From<u32> for WordAddr {
    fn from(i: u32) -> Self {
        Self(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_roundtrip() {
        let s = SegmentAddr::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(SegmentAddr::from(7u32), s);
        assert_eq!(s.to_string(), "seg#7");
    }

    #[test]
    fn word_offset() {
        let w = WordAddr::new(100);
        assert_eq!(w.offset(28).index(), 128);
        assert_eq!(w.to_string(), "word#100");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SegmentAddr::new(1) < SegmentAddr::new(2));
        assert!(WordAddr::new(5) < WordAddr::new(6));
    }
}
