//! Device geometry: banks, segments, words, cells.

use crate::addr::{SegmentAddr, WordAddr};
use crate::error::NorError;
use core::fmt;

/// Width of a flash word in bits (NOR flash in the paper's parts is
/// word-organized at 16 bits).
pub const WORD_BITS: usize = 16;

/// Shape of a NOR flash device.
///
/// A device is `banks × segments_per_bank` segments of `bytes_per_segment`
/// bytes each; the segment is the erase granule, the 16-bit word is the
/// program/read granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    banks: u16,
    segments_per_bank: u32,
    bytes_per_segment: u32,
}

impl FlashGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::InvalidGeometry`] if any dimension is zero or the
    /// segment size is not a multiple of the word size.
    pub fn new(
        banks: u16,
        segments_per_bank: u32,
        bytes_per_segment: u32,
    ) -> Result<Self, NorError> {
        if banks == 0 || segments_per_bank == 0 || bytes_per_segment == 0 {
            return Err(NorError::InvalidGeometry("all dimensions must be non-zero"));
        }
        if !bytes_per_segment.is_multiple_of(WORD_BITS as u32 / 8) {
            return Err(NorError::InvalidGeometry(
                "segment size must be a multiple of the word size",
            ));
        }
        Ok(Self {
            banks,
            segments_per_bank,
            bytes_per_segment,
        })
    }

    /// A single bank of `segments` standard 512-byte segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    #[must_use]
    pub fn single_bank(segments: u32) -> Self {
        assert!(segments > 0, "segment count must be non-zero");
        Self {
            banks: 1,
            segments_per_bank: segments,
            bytes_per_segment: 512,
        }
    }

    /// Number of banks.
    #[must_use]
    pub const fn banks(&self) -> u16 {
        self.banks
    }

    /// Segments in each bank.
    #[must_use]
    pub const fn segments_per_bank(&self) -> u32 {
        self.segments_per_bank
    }

    /// Bytes in each segment.
    #[must_use]
    pub const fn bytes_per_segment(&self) -> u32 {
        self.bytes_per_segment
    }

    /// Total number of segments on the device.
    #[must_use]
    pub const fn total_segments(&self) -> u32 {
        self.banks as u32 * self.segments_per_bank
    }

    /// Total flash capacity in bytes.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.total_segments() as u64 * self.bytes_per_segment as u64
    }

    /// Words per segment.
    #[must_use]
    pub const fn words_per_segment(&self) -> usize {
        (self.bytes_per_segment as usize * 8) / WORD_BITS
    }

    /// Cells (bits) per segment.
    #[must_use]
    pub const fn cells_per_segment(&self) -> usize {
        self.bytes_per_segment as usize * 8
    }

    /// Total number of words on the device.
    #[must_use]
    pub const fn total_words(&self) -> u64 {
        self.total_segments() as u64 * self.words_per_segment() as u64
    }

    /// Bank containing `seg`.
    #[must_use]
    pub const fn bank_of(&self, seg: SegmentAddr) -> u16 {
        (seg.index() / self.segments_per_bank) as u16
    }

    /// First word of a segment.
    #[must_use]
    pub fn first_word(&self, seg: SegmentAddr) -> WordAddr {
        WordAddr::new(seg.index() * self.words_per_segment() as u32)
    }

    /// Segment containing a word.
    #[must_use]
    pub fn segment_of(&self, word: WordAddr) -> SegmentAddr {
        SegmentAddr::new(word.index() / self.words_per_segment() as u32)
    }

    /// Offset (in words) of `word` within its segment.
    #[must_use]
    pub fn word_offset_in_segment(&self, word: WordAddr) -> usize {
        (word.index() as usize) % self.words_per_segment()
    }

    /// Global cell index of bit `bit` of word `word`.
    #[must_use]
    pub fn cell_index(&self, word: WordAddr, bit: usize) -> u64 {
        debug_assert!(bit < WORD_BITS);
        word.index() as u64 * WORD_BITS as u64 + bit as u64
    }

    /// Checks that a segment address is on the device.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] otherwise.
    pub fn check_segment(&self, seg: SegmentAddr) -> Result<(), NorError> {
        if seg.index() < self.total_segments() {
            Ok(())
        } else {
            Err(NorError::SegmentOutOfRange {
                segment: seg.index(),
                total: self.total_segments(),
            })
        }
    }

    /// Checks that a word address is on the device.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::WordOutOfRange`] otherwise.
    pub fn check_word(&self, word: WordAddr) -> Result<(), NorError> {
        if (word.index() as u64) < self.total_words() {
            Ok(())
        } else {
            Err(NorError::WordOutOfRange {
                word: word.index(),
                total: self.total_words(),
            })
        }
    }

    /// Iterator over the word addresses of a segment.
    pub fn segment_words(&self, seg: SegmentAddr) -> impl Iterator<Item = WordAddr> + use<> {
        let base = self.first_word(seg).index();
        let n = self.words_per_segment() as u32;
        (base..base + n).map(WordAddr::new)
    }
}

impl fmt::Display for FlashGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bank(s) x {} segments x {} B",
            self.banks, self.segments_per_bank, self.bytes_per_segment
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_segment_shape() {
        let g = FlashGeometry::single_bank(16);
        assert_eq!(g.words_per_segment(), 256);
        assert_eq!(g.cells_per_segment(), 4096);
        assert_eq!(g.total_segments(), 16);
        assert_eq!(g.total_bytes(), 16 * 512);
    }

    #[test]
    fn word_segment_mapping_roundtrip() {
        let g = FlashGeometry::single_bank(8);
        let seg = SegmentAddr::new(3);
        let w = g.first_word(seg);
        assert_eq!(g.segment_of(w), seg);
        assert_eq!(g.segment_of(w.offset(255)), seg);
        assert_eq!(g.segment_of(w.offset(256)), SegmentAddr::new(4));
        assert_eq!(g.word_offset_in_segment(w.offset(10)), 10);
    }

    #[test]
    fn cell_index_is_contiguous() {
        let g = FlashGeometry::single_bank(2);
        let w = WordAddr::new(5);
        assert_eq!(g.cell_index(w, 0), 80);
        assert_eq!(g.cell_index(w, 15), 95);
    }

    #[test]
    fn bounds_checks() {
        let g = FlashGeometry::single_bank(4);
        assert!(g.check_segment(SegmentAddr::new(3)).is_ok());
        assert!(g.check_segment(SegmentAddr::new(4)).is_err());
        assert!(g.check_word(WordAddr::new(4 * 256 - 1)).is_ok());
        assert!(g.check_word(WordAddr::new(4 * 256)).is_err());
    }

    #[test]
    fn multi_bank_layout() {
        let g = FlashGeometry::new(4, 128, 512).unwrap();
        assert_eq!(g.total_segments(), 512);
        assert_eq!(g.total_bytes(), 256 * 1024);
        assert_eq!(g.bank_of(SegmentAddr::new(0)), 0);
        assert_eq!(g.bank_of(SegmentAddr::new(127)), 0);
        assert_eq!(g.bank_of(SegmentAddr::new(128)), 1);
        assert_eq!(g.bank_of(SegmentAddr::new(511)), 3);
    }

    #[test]
    fn rejects_degenerate_geometry() {
        assert!(FlashGeometry::new(0, 1, 512).is_err());
        assert!(FlashGeometry::new(1, 0, 512).is_err());
        assert!(FlashGeometry::new(1, 1, 0).is_err());
        assert!(FlashGeometry::new(1, 1, 3).is_err());
    }

    #[test]
    fn segment_words_iterates_whole_segment() {
        let g = FlashGeometry::single_bank(4);
        let words: Vec<_> = g.segment_words(SegmentAddr::new(1)).collect();
        assert_eq!(words.len(), 256);
        assert_eq!(words[0], WordAddr::new(256));
        assert_eq!(words[255], WordAddr::new(511));
    }

    #[test]
    fn display_formats() {
        let g = FlashGeometry::single_bank(4);
        assert!(g.to_string().contains("512 B"));
    }
}
