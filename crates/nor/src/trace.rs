//! Operation tracing for debugging and experiment narration.

use crate::addr::{SegmentAddr, WordAddr};
use flashmark_physics::{Micros, Seconds};

/// One flash-controller event.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FlashEvent {
    /// A full segment erase completed.
    EraseSegment {
        /// Erased segment.
        seg: SegmentAddr,
    },
    /// An erase was started and aborted after a partial-erase time.
    PartialErase {
        /// Target segment.
        seg: SegmentAddr,
        /// Partial-erase time before the emergency exit.
        t_pe: Micros,
    },
    /// An early-exited erase ran until the segment read clean.
    EraseUntilClean {
        /// Target segment.
        seg: SegmentAddr,
        /// Total erase time actually spent.
        took: Micros,
    },
    /// A word was programmed.
    ProgramWord {
        /// Target word.
        word: WordAddr,
    },
    /// A whole segment was block-programmed.
    ProgramBlock {
        /// Target segment.
        seg: SegmentAddr,
    },
    /// A word was read.
    ReadWord {
        /// Source word.
        word: WordAddr,
    },
    /// All segments were mass erased.
    MassErase,
    /// A bulk (closed-form) imprint was applied by the simulator.
    BulkImprint {
        /// Target segment.
        seg: SegmentAddr,
        /// Number of P/E cycles applied.
        cycles: u64,
    },
}

/// A bounded event trace.
///
/// Disabled by default (recording 100 K imprint cycles would be pointless);
/// enable around the window of interest. Reads are recorded only when
/// `record_reads` is set — they dominate event counts otherwise.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<(Seconds, FlashEvent)>,
    enabled: bool,
    record_reads: bool,
    capacity: usize,
    dropped: u64,
    /// Precomputed `enabled && capacity > 0`: [`Trace::record`] tests only
    /// this one always-false-on-hot-paths flag, so a disabled or capacity-0
    /// trace costs a single well-predicted branch per operation.
    armed: bool,
}

impl Trace {
    /// Creates a disabled trace with the default capacity (64 K events).
    #[must_use]
    pub fn new() -> Self {
        Self {
            capacity: 65_536,
            ..Self::default()
        }
    }

    /// Creates a trace that can never record (capacity 0): the cheapest
    /// possible configuration for benchmark hot loops. Enabling it later is
    /// a no-op until [`Trace::set_capacity`] grants room.
    #[must_use]
    pub fn off() -> Self {
        Self::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.rearm();
    }

    /// Disables recording (events already captured are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
        self.rearm();
    }

    fn rearm(&mut self) {
        self.armed = self.enabled && self.capacity > 0;
    }

    /// Whether recording is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Also record individual reads (noisy; off by default).
    pub fn set_record_reads(&mut self, on: bool) {
        self.record_reads = on;
    }

    /// Changes the event capacity. Shrinking below the current event count
    /// discards the oldest events (counted as dropped), keeping the most
    /// recent window — the part a backtrace wants.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if self.events.len() > capacity {
            let excess = self.events.len() - capacity;
            self.events.drain(..excess);
            self.dropped += excess as u64;
        }
        self.rearm();
    }

    /// The event capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event at simulated time `at`.
    ///
    /// When the trace is disarmed (disabled, or capacity 0) this is a
    /// single branch — no event inspection, no drop accounting.
    #[inline]
    pub fn record(&mut self, at: Seconds, event: FlashEvent) {
        if !self.armed {
            return;
        }
        self.record_armed(at, event);
    }

    #[cold]
    fn record_armed(&mut self, at: Seconds, event: FlashEvent) {
        if matches!(event, FlashEvent::ReadWord { .. }) && !self.record_reads {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push((at, event));
    }

    /// The captured events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[(Seconds, FlashEvent)] {
        &self.events
    }

    /// Number of events dropped after the trace filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears captured events (keeps the enable state).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(Seconds::new(0.0), FlashEvent::MassErase);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new();
        t.enable();
        t.record(
            Seconds::new(1.0),
            FlashEvent::EraseSegment {
                seg: SegmentAddr::new(2),
            },
        );
        assert_eq!(t.events().len(), 1);
        assert!(t.is_enabled());
    }

    #[test]
    fn reads_skipped_unless_opted_in() {
        let mut t = Trace::new();
        t.enable();
        t.record(
            Seconds::new(0.0),
            FlashEvent::ReadWord {
                word: WordAddr::new(1),
            },
        );
        assert!(t.events().is_empty());
        t.set_record_reads(true);
        t.record(
            Seconds::new(0.0),
            FlashEvent::ReadWord {
                word: WordAddr::new(1),
            },
        );
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn set_capacity_keeps_newest_events() {
        let mut t = Trace::new();
        t.enable();
        for i in 0..10 {
            t.record(Seconds::new(f64::from(i)), FlashEvent::MassErase);
        }
        t.set_capacity(3);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[0].0, Seconds::new(7.0));
        assert_eq!(t.dropped(), 7);
        // Growing back does not resurrect anything.
        t.set_capacity(100);
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn off_trace_stays_silent_until_given_capacity() {
        let mut t = Trace::off();
        t.enable();
        t.record(Seconds::new(0.0), FlashEvent::MassErase);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0, "capacity-0 fast path skips bookkeeping");
        // Granting capacity (as the sanitizer's trace sync does) re-arms it.
        t.set_capacity(16);
        t.record(Seconds::new(0.0), FlashEvent::MassErase);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let mut t = Trace {
            capacity: 2,
            ..Trace::default()
        };
        t.enable();
        for _ in 0..5 {
            t.record(Seconds::new(0.0), FlashEvent::MassErase);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
