//! Datasheet-derived operation timings and the simulated wall clock.
//!
//! The paper's Section V imprint/extract time results are arithmetic over
//! these durations: a baseline imprint cycle is one full segment erase
//! (~25 ms) plus one block write (~9.5 ms), giving 1380 s at 40 K cycles —
//! exactly the paper's number. The accelerated imprint replaces the fixed
//! erase with an early-exited erase whose duration tracks the wear level.

use flashmark_physics::{Micros, Seconds};

/// Operation durations of a flash module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTimings {
    /// Full segment erase (`TERASE`).
    pub erase_segment: Micros,
    /// Full mass (bank) erase.
    pub mass_erase: Micros,
    /// Single-word program (`TPROG`), including per-word overhead.
    pub program_word: Micros,
    /// Per-word time in block-write mode (faster than single-word).
    pub block_write_word: Micros,
    /// Block-write setup/teardown per segment.
    pub block_write_overhead: Micros,
    /// Single-word read.
    pub read_word: Micros,
    /// Latency of the emergency-exit (erase abort) command, including the
    /// time to remove programming voltages.
    pub abort_latency: Micros,
    /// Voltage-generator bring-up before an erase or program burst.
    pub setup_overhead: Micros,
    /// Maximum cumulative program time per segment between erases (`tCPT`
    /// on MSP430 parts): programming heats the cells, and the datasheet
    /// bounds the total before an erase must intervene. Zero disables the
    /// check.
    pub cumulative_program_limit: Micros,
}

impl FlashTimings {
    /// Timings of the MSP430F5438/F5529 embedded flash, per its datasheet
    /// and the paper (`TERASE` ≈ 23–35 ms, word program 64–85 µs; block
    /// write sized so one erase+block-write cycle is 34.5 ms, matching the
    /// paper's 1380 s / 40 K baseline imprint).
    #[must_use]
    pub fn msp430() -> Self {
        Self {
            erase_segment: Micros::from_millis(25.0),
            mass_erase: Micros::from_millis(25.0),
            program_word: Micros::new(75.0),
            block_write_word: Micros::new(35.0),
            block_write_overhead: Micros::new(540.0),
            read_word: Micros::new(0.2),
            abort_latency: Micros::new(10.0),
            setup_overhead: Micros::new(30.0),
            cumulative_program_limit: Micros::from_millis(16.0),
        }
    }

    /// Timings of a fast stand-alone NOR part (the paper notes imprint would
    /// be much quicker on such devices).
    #[must_use]
    pub fn fast_standalone() -> Self {
        Self {
            erase_segment: Micros::from_millis(5.0),
            mass_erase: Micros::from_millis(20.0),
            program_word: Micros::new(12.0),
            block_write_word: Micros::new(7.0),
            block_write_overhead: Micros::new(100.0),
            read_word: Micros::new(0.1),
            abort_latency: Micros::new(2.0),
            setup_overhead: Micros::new(10.0),
            cumulative_program_limit: Micros::from_millis(16.0),
        }
    }

    /// Duration of a block write of `words` words.
    #[must_use]
    pub fn block_write(&self, words: usize) -> Micros {
        self.block_write_overhead + self.block_write_word * words as f64
    }

    /// Duration of one baseline imprint cycle (full erase + block write of a
    /// whole segment).
    #[must_use]
    pub fn baseline_imprint_cycle(&self, words_per_segment: usize) -> Micros {
        self.erase_segment + self.block_write(words_per_segment)
    }
}

impl Default for FlashTimings {
    fn default() -> Self {
        Self::msp430()
    }
}

/// The simulated wall clock.
///
/// Strictly monotone; every controller operation advances it by the
/// operation's duration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now: Seconds,
}

impl SimClock {
    /// A clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advances the clock.
    ///
    /// # Panics
    ///
    /// Panics (debug) on negative durations — time never goes backwards.
    pub fn advance(&mut self, dt: Micros) {
        debug_assert!(dt.get() >= 0.0, "clock cannot go backwards");
        self.now += dt.to_seconds();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msp430_cycle_matches_paper_arithmetic() {
        let t = FlashTimings::msp430();
        let cycle = t.baseline_imprint_cycle(256);
        // Paper: 40 K cycles -> 1380 s, i.e. 34.5 ms per cycle.
        assert!(
            (cycle.as_millis() - 34.5).abs() < 0.2,
            "cycle = {} ms",
            cycle.as_millis()
        );
        let total_40k = cycle.to_seconds() * 40_000.0;
        assert!(
            (total_40k.get() - 1380.0).abs() < 10.0,
            "40K imprint = {total_40k}"
        );
        let total_70k = cycle.to_seconds() * 70_000.0;
        assert!(
            (total_70k.get() - 2415.0).abs() < 17.0,
            "70K imprint = {total_70k}"
        );
    }

    #[test]
    fn erase_in_datasheet_window() {
        let t = FlashTimings::msp430();
        let ms = t.erase_segment.as_millis();
        assert!((23.0..=35.0).contains(&ms));
    }

    #[test]
    fn block_write_faster_than_word_writes() {
        let t = FlashTimings::msp430();
        let block = t.block_write(256);
        let word_by_word = t.program_word * 256.0;
        assert!(block.get() < word_by_word.get());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Seconds::new(0.0));
        c.advance(Micros::from_millis(25.0));
        c.advance(Micros::new(75.0));
        assert!((c.now().get() - 0.025_075).abs() < 1e-9);
    }

    #[test]
    fn fast_part_is_faster() {
        let slow = FlashTimings::msp430();
        let fast = FlashTimings::fast_standalone();
        assert!(fast.baseline_imprint_cycle(256).get() < slow.baseline_imprint_cycle(256).get());
    }
}
