//! MSP430-style register front-end (`FCTL1/FCTL3/FCTL4`).
//!
//! Real firmware drives the flash controller through password-protected
//! control registers: set a mode bit (`ERASE`, `WRT`, …) in `FCTL1`, clear
//! `LOCK` in `FCTL3`, then perform a (dummy) write into the flash address
//! range to trigger the operation. This module reproduces that protocol on
//! top of [`FlashController`], including the `0xA5` password, the `KEYV`
//! (key violation) and `ACCVIFG` (access violation) flags, and the `EMEX`
//! emergency exit used for partial erases.
//!
//! It exists for interface fidelity (and negative testing); the Flashmark
//! algorithms themselves use the plain [`FlashInterface`] methods.

use flashmark_physics::Micros;

use crate::addr::{SegmentAddr, WordAddr};
use crate::controller::FlashController;
use crate::error::NorError;
use crate::interface::FlashInterface;

/// Password that must be in the high byte of every register write (`FWKEY`).
pub const FWKEY: u16 = 0xA500;
/// Key returned in the high byte of every register read (`FRKEY`).
pub const FRKEY: u16 = 0x9600;

/// `FCTL1.ERASE`: next flash write triggers a segment erase.
pub const ERASE: u16 = 0x0002;
/// `FCTL1.MERAS`: next flash write triggers a mass erase.
pub const MERAS: u16 = 0x0004;
/// `FCTL1.WRT`: word/byte write mode.
pub const WRT: u16 = 0x0040;
/// `FCTL1.BLKWRT`: block write mode.
pub const BLKWRT: u16 = 0x0080;

/// `FCTL3.BUSY`: operation in progress.
pub const BUSY: u16 = 0x0001;
/// `FCTL3.KEYV`: a register write used a bad key.
pub const KEYV: u16 = 0x0002;
/// `FCTL3.ACCVIFG`: access violation interrupt flag.
pub const ACCVIFG: u16 = 0x0004;
/// `FCTL3.LOCK`: controller locked.
pub const LOCK: u16 = 0x0010;
/// `FCTL3.EMEX`: emergency exit — aborts the operation in progress.
pub const EMEX: u16 = 0x0020;

/// The three flash control registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fctl {
    /// Operation mode bits.
    Fctl1,
    /// Lock/status bits.
    Fctl3,
    /// Extended control (read back as written; no modelled behaviour).
    Fctl4,
}

/// Register-protocol adapter over a [`FlashController`].
#[derive(Debug, Clone)]
pub struct RegisterFront {
    ctl: FlashController,
    fctl1: u16,
    fctl3: u16,
    fctl4: u16,
}

impl RegisterFront {
    /// Wraps a controller; the device powers up locked, as real parts do.
    #[must_use]
    pub fn new(mut ctl: FlashController) -> Self {
        ctl.lock();
        Self {
            ctl,
            fctl1: 0,
            fctl3: LOCK,
            fctl4: 0,
        }
    }

    /// The wrapped controller.
    #[must_use]
    pub fn controller(&self) -> &FlashController {
        &self.ctl
    }

    /// Mutable access to the wrapped controller.
    pub fn controller_mut(&mut self) -> &mut FlashController {
        &mut self.ctl
    }

    /// Unwraps back into the controller.
    #[must_use]
    pub fn into_controller(self) -> FlashController {
        self.ctl
    }

    /// Reads a control register (high byte reads back as `FRKEY`).
    #[must_use]
    pub fn read_register(&self, reg: Fctl) -> u16 {
        let low = match reg {
            Fctl::Fctl1 => self.fctl1,
            Fctl::Fctl3 => self.fctl3,
            Fctl::Fctl4 => self.fctl4,
        };
        FRKEY | (low & 0x00FF)
    }

    /// Writes a control register. The high byte must be the `0xA5` password.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::KeyViolation`] (and latches `KEYV`) on a bad key.
    pub fn write_register(&mut self, reg: Fctl, value: u16) -> Result<(), NorError> {
        if value & 0xFF00 != FWKEY {
            self.fctl3 |= KEYV;
            return Err(NorError::KeyViolation);
        }
        let low = value & 0x00FF;
        match reg {
            Fctl::Fctl1 => self.fctl1 = low,
            Fctl::Fctl3 => {
                // KEYV and ACCVIFG are sticky; writing 0 clears them.
                self.fctl3 = low;
                if low & LOCK != 0 {
                    self.ctl.lock();
                } else {
                    self.ctl.unlock();
                }
            }
            Fctl::Fctl4 => self.fctl4 = low,
        }
        Ok(())
    }

    /// Reads a flash word (always allowed).
    ///
    /// # Errors
    ///
    /// Address errors from the controller.
    pub fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.ctl.read_word(word)
    }

    /// A CPU write into the flash address range: the triggered operation
    /// depends on the `FCTL1` mode bits, exactly as on real parts.
    ///
    /// * `ERASE` set → dummy write triggers an erase of the containing
    ///   segment (the data value is ignored); `ERASE` self-clears.
    /// * `WRT` set → programs `value` into `word`.
    /// * neither → access violation (`ACCVIFG` latches).
    ///
    /// # Errors
    ///
    /// [`NorError::Locked`], [`NorError::AccessViolation`], or address
    /// errors.
    pub fn write_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        if self.fctl3 & LOCK != 0 {
            return Err(NorError::Locked);
        }
        if self.fctl1 & (ERASE | MERAS) != 0 {
            let seg = self.ctl.geometry().segment_of(word);
            if self.fctl1 & MERAS != 0 {
                self.ctl.mass_erase()?;
            } else {
                self.ctl.erase_segment(seg)?;
            }
            self.fctl1 &= !(ERASE | MERAS); // self-clearing
            Ok(())
        } else if self.fctl1 & (WRT | BLKWRT) != 0 {
            self.ctl.program_word(word, value)
        } else {
            self.fctl3 |= ACCVIFG;
            Err(NorError::AccessViolation { word: word.index() })
        }
    }

    /// Starts an erase of `seg` and issues the `EMEX` emergency exit after
    /// `t_pe` — the register-level form of the partial erase.
    ///
    /// Requires `ERASE` mode set and the controller unlocked; `ERASE`
    /// self-clears afterwards.
    ///
    /// # Errors
    ///
    /// [`NorError::Locked`], [`NorError::AccessViolation`] if `ERASE` is not
    /// set, or address errors.
    pub fn emergency_exit_after(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        if self.fctl3 & LOCK != 0 {
            return Err(NorError::Locked);
        }
        if self.fctl1 & ERASE == 0 {
            self.fctl3 |= ACCVIFG;
            return Err(NorError::AccessViolation {
                word: self.ctl.geometry().first_word(seg).index(),
            });
        }
        self.ctl.partial_erase(seg, t_pe)?;
        self.fctl1 &= !ERASE;
        self.fctl3 |= EMEX; // latched until FCTL3 is rewritten
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTimings;
    use flashmark_physics::PhysicsParams;

    fn front() -> RegisterFront {
        RegisterFront::new(FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(4),
            FlashTimings::msp430(),
            0xF407,
        ))
    }

    fn unlock(f: &mut RegisterFront) {
        f.write_register(Fctl::Fctl3, FWKEY).unwrap();
    }

    #[test]
    fn powers_up_locked() {
        let mut f = front();
        assert_eq!(f.read_register(Fctl::Fctl3) & LOCK, LOCK);
        assert_eq!(
            f.write_word(WordAddr::new(0), 0).unwrap_err(),
            NorError::Locked
        );
    }

    #[test]
    fn bad_key_latches_keyv() {
        let mut f = front();
        let err = f.write_register(Fctl::Fctl3, 0x0000).unwrap_err();
        assert_eq!(err, NorError::KeyViolation);
        assert_eq!(f.read_register(Fctl::Fctl3) & KEYV, KEYV);
        // Clearing with a correct key resets the flag.
        f.write_register(Fctl::Fctl3, FWKEY).unwrap();
        assert_eq!(f.read_register(Fctl::Fctl3) & KEYV, 0);
    }

    #[test]
    fn register_reads_return_frkey() {
        let f = front();
        assert_eq!(f.read_register(Fctl::Fctl1) & 0xFF00, FRKEY);
    }

    #[test]
    fn write_without_mode_is_access_violation() {
        let mut f = front();
        unlock(&mut f);
        let err = f.write_word(WordAddr::new(5), 0x1234).unwrap_err();
        assert!(matches!(err, NorError::AccessViolation { word: 5 }));
        assert_eq!(f.read_register(Fctl::Fctl3) & ACCVIFG, ACCVIFG);
    }

    #[test]
    fn wrt_mode_programs() {
        let mut f = front();
        unlock(&mut f);
        f.write_register(Fctl::Fctl1, FWKEY | WRT).unwrap();
        f.write_word(WordAddr::new(5), 0x5443).unwrap();
        assert_eq!(f.read_word(WordAddr::new(5)).unwrap(), 0x5443);
    }

    #[test]
    fn erase_mode_dummy_write_erases_segment_and_self_clears() {
        let mut f = front();
        unlock(&mut f);
        f.write_register(Fctl::Fctl1, FWKEY | WRT).unwrap();
        f.write_word(WordAddr::new(5), 0x0000).unwrap();
        f.write_register(Fctl::Fctl1, FWKEY | ERASE).unwrap();
        f.write_word(WordAddr::new(0), 0xBEEF).unwrap(); // dummy
        assert_eq!(
            f.read_register(Fctl::Fctl1) & ERASE,
            0,
            "ERASE must self-clear"
        );
        assert_eq!(f.read_word(WordAddr::new(5)).unwrap(), 0xFFFF);
    }

    #[test]
    fn emergency_exit_requires_erase_mode() {
        let mut f = front();
        unlock(&mut f);
        let err = f
            .emergency_exit_after(SegmentAddr::new(0), Micros::new(20.0))
            .unwrap_err();
        assert!(matches!(err, NorError::AccessViolation { .. }));
    }

    #[test]
    fn emergency_exit_performs_partial_erase() {
        let mut f = front();
        unlock(&mut f);
        // Program the segment fully, then partially erase 20 µs.
        f.write_register(Fctl::Fctl1, FWKEY | WRT).unwrap();
        for w in f.controller().geometry().segment_words(SegmentAddr::new(0)) {
            f.write_word(w, 0x0000).unwrap();
        }
        f.write_register(Fctl::Fctl1, FWKEY | ERASE).unwrap();
        f.emergency_exit_after(SegmentAddr::new(0), Micros::new(19.5))
            .unwrap();
        assert_eq!(f.read_register(Fctl::Fctl3) & EMEX, EMEX);
        // A mid-range fraction of the fresh cells should have crossed.
        let ones: u32 = (0..256)
            .map(|i| f.read_word(WordAddr::new(i)).unwrap().count_ones())
            .sum();
        assert!((500..3500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn mass_erase_via_registers() {
        let mut f = front();
        unlock(&mut f);
        f.write_register(Fctl::Fctl1, FWKEY | WRT).unwrap();
        f.write_word(WordAddr::new(0), 0x0000).unwrap();
        f.write_word(WordAddr::new(256), 0x0000).unwrap();
        f.write_register(Fctl::Fctl1, FWKEY | MERAS).unwrap();
        f.write_word(WordAddr::new(0), 0x0).unwrap();
        assert_eq!(f.read_word(WordAddr::new(0)).unwrap(), 0xFFFF);
        assert_eq!(f.read_word(WordAddr::new(256)).unwrap(), 0xFFFF);
    }

    #[test]
    fn into_controller_roundtrip() {
        let f = front();
        let ctl = f.into_controller();
        assert_eq!(ctl.geometry().total_segments(), 4);
    }
}
