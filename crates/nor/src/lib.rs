#![forbid(unsafe_code)]
//! NOR flash memory emulation: array, controller, and digital interface.
//!
//! This crate is the *digital* substrate of the Flashmark reproduction. It
//! wraps the analog cell models of [`flashmark_physics`] in exactly the
//! interface a microcontroller's flash controller exposes:
//!
//! * word-granular reads, `1`→`0` program of words and blocks,
//! * segment erase and mass erase,
//! * **emergency exit**: aborting an in-flight erase after a chosen partial
//!   erase time `tPE` — the operation Flashmark uses to sense analog wear
//!   through the digital interface,
//! * a simulated wall clock driven by datasheet operation timings, and
//! * an optional MSP430-style register front-end (`FCTL1/FCTL3/FCTL4` with
//!   password keys and violation flags).
//!
//! The Flashmark algorithms in `flashmark-core` are generic over the
//! [`FlashInterface`] trait defined here, so they can drive this simulator or
//! a real part behind the same API.
//!
//! # Example
//!
//! ```
//! use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr, WordAddr};
//! use flashmark_nor::interface::FlashInterface;
//! use flashmark_physics::{Micros, PhysicsParams};
//!
//! # fn main() -> Result<(), flashmark_nor::NorError> {
//! let geometry = FlashGeometry::single_bank(16); // 16 segments of 512 B
//! let mut ctl = FlashController::new(
//!     PhysicsParams::msp430_like(),
//!     geometry,
//!     FlashTimings::msp430(),
//!     0xC0FFEE, // chip seed
//! );
//!
//! let seg = SegmentAddr::new(3);
//! ctl.erase_segment(seg)?;
//! let base = geometry.first_word(seg);
//! ctl.program_word(base, 0x5443)?; // "TC"
//! assert_eq!(ctl.read_word(base)?, 0x5443);
//!
//! // Partial erase: abort after 20 µs — fresh cells are mid-transition.
//! ctl.erase_segment(seg)?;
//! ctl.program_block(seg, &vec![0x0000; geometry.words_per_segment()])?;
//! ctl.partial_erase(seg, Micros::new(20.0))?;
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod array;
pub mod controller;
pub mod error;
pub mod geometry;
pub mod interface;
pub mod registers;
pub mod timing;
pub mod trace;

pub use addr::{SegmentAddr, WordAddr};
pub use array::{FlashArray, SegmentCells, WearStats};
pub use controller::{FlashController, OpCounters};
pub use error::NorError;
pub use geometry::FlashGeometry;
pub use interface::{BulkStress, FlashInterface, ImprintTiming, PartialProgram};
pub use registers::{Fctl, RegisterFront};
pub use timing::FlashTimings;
pub use trace::{FlashEvent, Trace};
