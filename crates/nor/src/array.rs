//! The cell array: per-segment cell state over the physics models.
//!
//! The array is purely about cell *state*; timing and command sequencing
//! live in [`FlashController`](crate::controller::FlashController). Segments
//! are materialized lazily — simulating a 256 KB device costs memory only
//! for the segments an experiment actually touches.
//!
//! Cell storage is a structure-of-arrays
//! [`CellArena`] per segment, and the batched
//! operations (reads, programs, erase pulses, bulk stress, the early-exit
//! erase estimator) run as the arena's chunked lane kernels. Per-operation
//! randomness comes from counter-based streams: each operation derives a
//! [`CounterStream`] from `(op seed, entity index, op counter)`, so a batched
//! sweep draws exactly the deviates a word-by-word loop would, bit for bit.

use std::collections::BTreeMap;

use flashmark_physics::arena::CellArena;
use flashmark_physics::cell::CellState;
use flashmark_physics::erase::{erase_temp_factor, t_full_us_cached};
use flashmark_physics::noise::PulseNoise;
use flashmark_physics::program::apply_partial_program;
use flashmark_physics::retention::apply_bake;
use flashmark_physics::rng::{mix2, CounterStream, SplitMix64};
use flashmark_physics::EraseDistCache;
use flashmark_physics::{Micros, PhysicsParams};

use crate::addr::{SegmentAddr, WordAddr};
use crate::error::NorError;
use crate::geometry::{FlashGeometry, WORD_BITS};

/// Cells of one segment, stored as a structure-of-arrays arena.
#[derive(Debug, Clone)]
pub struct SegmentCells {
    arena: CellArena,
}

impl SegmentCells {
    fn materialize(params: &PhysicsParams, chip_seed: u64, base_cell: u64, n: usize) -> Self {
        Self {
            arena: CellArena::derive(params, chip_seed, base_cell, n),
        }
    }

    /// The structure-of-arrays cell storage.
    #[must_use]
    pub fn arena(&self) -> &CellArena {
        &self.arena
    }

    /// The dynamic state of cell `i` (reconstructed from the lanes).
    #[must_use]
    pub fn state_at(&self, i: usize) -> CellState {
        self.arena.state_at(i)
    }
}

/// Wear statistics of one segment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WearStats {
    /// Minimum wear over the segment's cells (cycles).
    pub min_cycles: f64,
    /// Maximum wear over the segment's cells (cycles).
    pub max_cycles: f64,
    /// Mean wear over the segment's cells (cycles).
    pub mean_cycles: f64,
}

/// The flash cell array of one chip.
#[derive(Debug, Clone)]
pub struct FlashArray {
    params: PhysicsParams,
    geometry: FlashGeometry,
    chip_seed: u64,
    segments: BTreeMap<u32, SegmentCells>,
    /// Seed coordinate of every per-operation [`CounterStream`].
    op_seed: u64,
    /// Monotone operation counter — the third stream coordinate. Advances
    /// exactly as a word-by-word loop would, so batched sweeps stay
    /// bit-identical to looped ones.
    op_counter: u64,
    temp_c: f64,
    dist_cache: EraseDistCache,
}

impl FlashArray {
    /// Creates the array of chip `chip_seed`.
    #[must_use]
    pub fn new(params: PhysicsParams, geometry: FlashGeometry, chip_seed: u64) -> Self {
        let dist_cache = EraseDistCache::new(params.erase_dist_grid_kcycles);
        Self {
            params,
            geometry,
            chip_seed,
            segments: BTreeMap::new(),
            op_seed: mix2(chip_seed, 0x0505_0505),
            op_counter: 0,
            temp_c: 25.0,
            dist_cache,
        }
    }

    /// Current die temperature (°C). Erase pulses act faster when hot (see
    /// [`flashmark_physics::erase::erase_temp_factor`]).
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Sets the die temperature for subsequent operations.
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// The physics parameter set.
    #[must_use]
    pub fn params(&self) -> &PhysicsParams {
        &self.params
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    /// The chip seed (identity) of this array.
    #[must_use]
    pub fn chip_seed(&self) -> u64 {
        self.chip_seed
    }

    fn segment_cells(&mut self, seg: SegmentAddr) -> &mut SegmentCells {
        let n = self.geometry.cells_per_segment();
        let base_cell = seg.index() as u64 * n as u64;
        let params = &self.params;
        let chip_seed = self.chip_seed;
        self.segments
            .entry(seg.index())
            .or_insert_with(|| SegmentCells::materialize(params, chip_seed, base_cell, n))
    }

    /// Read-only view of a segment's cells (materializing it if needed).
    pub fn segment(&mut self, seg: SegmentAddr) -> &SegmentCells {
        self.segment_cells(seg)
    }

    /// Splits the borrow of `self` into the disjoint parts an operation
    /// needs — parameters, the (lazily materialized) segment cells, the op
    /// counter, and the erase-distribution cache — so hot paths never clone
    /// `PhysicsParams` (whose calibration tables are `Vec`-backed and would
    /// cost two heap allocations per operation).
    fn op_context(
        &mut self,
        seg: SegmentAddr,
    ) -> (
        &PhysicsParams,
        &mut SegmentCells,
        &mut u64,
        &mut EraseDistCache,
    ) {
        let n = self.geometry.cells_per_segment();
        let base_cell = seg.index() as u64 * n as u64;
        let Self {
            params,
            segments,
            chip_seed,
            op_counter,
            dist_cache,
            ..
        } = self;
        let cells = segments
            .entry(seg.index())
            .or_insert_with(|| SegmentCells::materialize(params, *chip_seed, base_cell, n));
        (params, cells, op_counter, dist_cache)
    }

    /// Strict-mode overwrite check, then the arena's program-word kernel.
    /// `word_index` is only for the error.
    fn program_word_cells(
        params: &PhysicsParams,
        cells: &mut SegmentCells,
        offset: usize,
        word_index: u32,
        value: u16,
        strict: bool,
        stream: CounterStream,
    ) -> Result<(), NorError> {
        if strict {
            let vref = params.vref.get();
            for bit in 0..WORD_BITS {
                let wants_one = value & (1 << bit) != 0;
                let is_zero = cells.arena.vth()[offset + bit] >= vref;
                if wants_one && is_zero {
                    return Err(NorError::OverwriteWithoutErase { word: word_index });
                }
            }
        }
        cells.arena.program_word(params, offset, value, &stream);
        Ok(())
    }

    /// Expands a per-word pattern into the per-cell stress mask the arena
    /// kernels take: bit 0 of the pattern word means "stressed".
    fn stressed_mask(pattern: &[u16]) -> Vec<bool> {
        let mut mask = Vec::with_capacity(pattern.len() * WORD_BITS);
        for &value in pattern {
            for bit in 0..WORD_BITS {
                mask.push(value & (1 << bit) == 0);
            }
        }
        mask
    }

    /// Senses one word with read noise (one fresh noise draw per bit).
    ///
    /// # Errors
    ///
    /// Returns [`NorError::WordOutOfRange`] for an address past the device.
    pub fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.geometry.check_word(word)?;
        let seg = self.geometry.segment_of(word);
        let offset = self.geometry.word_offset_in_segment(word) * WORD_BITS;
        let op_seed = self.op_seed;
        let (params, cells, op_counter, _) = self.op_context(seg);
        let stream = CounterStream::new(op_seed, u64::from(word.index()), *op_counter);
        *op_counter += 1;
        Ok(cells.arena.sense_word(params, offset, &stream))
    }

    /// Senses every word of a segment in one sweep (the bulk-read kernel).
    ///
    /// Stream derivation and results are bit-identical to calling
    /// [`FlashArray::read_word`] on each word of the segment in order; the
    /// batched form pays the parameter/segment lookup once instead of per
    /// word.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] for a bad address.
    pub fn read_segment_words(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        self.geometry.check_segment(seg)?;
        let words = self.geometry.words_per_segment();
        let base = self.geometry.first_word(seg);
        let op_seed = self.op_seed;
        let (params, cells, op_counter, _) = self.op_context(seg);
        let mut out = Vec::with_capacity(words);
        for w in 0..words {
            let word_index = u64::from(base.offset(w as u32).index());
            let stream = CounterStream::new(op_seed, word_index, *op_counter);
            *op_counter += 1;
            out.push(cells.arena.sense_word(params, w * WORD_BITS, &stream));
        }
        Ok(out)
    }

    /// Noise-free logical value of every cell of a segment (ground truth for
    /// experiments; not reachable through the digital interface).
    pub fn ideal_bits(&mut self, seg: SegmentAddr) -> Vec<bool> {
        let (params, cells, _, _) = self.op_context(seg);
        let vref = params.vref.get();
        cells.arena.vth().iter().map(|&vth| vth < vref).collect()
    }

    /// Programs the 0-bits of `value` into a word (flash semantics: a
    /// program can only flip bits from 1 to 0).
    ///
    /// In `strict` mode, attempting to "program" a bit that is already 0 to
    /// 1 is reported as [`NorError::OverwriteWithoutErase`]; otherwise the
    /// result is the AND of old and new contents, as on real parts.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::WordOutOfRange`] or, in strict mode,
    /// [`NorError::OverwriteWithoutErase`].
    pub fn program_word(
        &mut self,
        word: WordAddr,
        value: u16,
        strict: bool,
    ) -> Result<(), NorError> {
        self.geometry.check_word(word)?;
        let seg = self.geometry.segment_of(word);
        let offset = self.geometry.word_offset_in_segment(word) * WORD_BITS;
        let op_seed = self.op_seed;
        let (params, cells, op_counter, _) = self.op_context(seg);
        let stream =
            CounterStream::new(op_seed, 0x9806_0000 ^ u64::from(word.index()), *op_counter);
        *op_counter += 1;
        Self::program_word_cells(params, cells, offset, word.index(), value, strict, stream)
    }

    /// Programs every word of a segment in one sweep (the bulk-program
    /// kernel behind block programming).
    ///
    /// Stream derivation, cell updates, and errors are bit-identical to
    /// calling [`FlashArray::program_word`] on each word in order — in
    /// particular, a strict-mode overwrite error leaves the words before it
    /// programmed (and the op counter advanced), exactly like the
    /// word-by-word loop.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`],
    /// [`NorError::BlockLengthMismatch`], or (strict mode)
    /// [`NorError::OverwriteWithoutErase`].
    pub fn program_segment_words(
        &mut self,
        seg: SegmentAddr,
        values: &[u16],
        strict: bool,
    ) -> Result<(), NorError> {
        self.geometry.check_segment(seg)?;
        if values.len() != self.geometry.words_per_segment() {
            return Err(NorError::BlockLengthMismatch {
                got: values.len(),
                expected: self.geometry.words_per_segment(),
            });
        }
        let base = self.geometry.first_word(seg);
        let op_seed = self.op_seed;
        let (params, cells, op_counter, _) = self.op_context(seg);
        for (w, &value) in values.iter().enumerate() {
            let word_index = base.offset(w as u32).index();
            let stream =
                CounterStream::new(op_seed, 0x9806_0000 ^ u64::from(word_index), *op_counter);
            *op_counter += 1;
            Self::program_word_cells(
                params,
                cells,
                w * WORD_BITS,
                word_index,
                value,
                strict,
                stream,
            )?;
        }
        Ok(())
    }

    /// Applies a *partial program* pulse of duration `t_pp` to every cell of
    /// a segment (the sweeping-partial-program primitive of the FFD-style
    /// recycled-flash detectors, paper refs \[6\]/\[7\]). Worn cells program
    /// faster, so more of them cross the read reference in the same time.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] for a bad address.
    pub fn program_pulse(&mut self, seg: SegmentAddr, t_pp: Micros) -> Result<(), NorError> {
        self.geometry.check_segment(seg)?;
        let op_seed = self.op_seed;
        let (params, cells, op_counter, _) = self.op_context(seg);
        let stream = CounterStream::new(op_seed, 0x9A27 ^ u64::from(seg.index()), *op_counter);
        *op_counter += 1;
        // Partial program is inherently serial (each cell draws its own op
        // noise from the shared sweep stream), so it stays a scalar loop
        // seeded from the counter stream's key.
        let mut rng = SplitMix64::new(stream.key());
        for i in 0..cells.arena.len() {
            let statics = cells.arena.statics_at(i);
            let mut state = cells.arena.state_at(i);
            apply_partial_program(params, &statics, &mut state, t_pp.get(), &mut rng);
            cells.arena.set_state(i, state);
        }
        Ok(())
    }

    /// Applies an erase pulse of nominal duration `t_pe` to a whole segment,
    /// with per-pulse common-mode and per-cell jitter (the arena's erase
    /// lane kernel).
    ///
    /// Returns `true` if every cell completed its erase within the pulse.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] for a bad address.
    pub fn erase_pulse(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<bool, NorError> {
        self.geometry.check_segment(seg)?;
        let temp = erase_temp_factor(&self.params, self.temp_c);
        let base_cell = seg.index() as u64 * self.geometry.cells_per_segment() as u64;
        let op_seed = self.op_seed;
        let (params, cells, op_counter, dist_cache) = self.op_context(seg);
        let stream = CounterStream::new(op_seed, 0xE7A5 ^ u64::from(seg.index()), *op_counter);
        *op_counter += 1;
        let pulse = PulseNoise::from_stream(params, &stream);
        Ok(cells
            .arena
            .erase_pulse(params, dist_cache, base_cell, &pulse, t_pe.get(), temp))
    }

    /// Fully erases a segment (a nominal-duration erase always completes:
    /// even 100 K-cycle cells finish in under a millisecond, far below
    /// `TERASE`).
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] for a bad address.
    pub fn erase_complete(&mut self, seg: SegmentAddr, nominal: Micros) -> Result<(), NorError> {
        let done = self.erase_pulse(seg, nominal)?;
        debug_assert!(
            done,
            "nominal erase did not complete; calibration out of range?"
        );
        Ok(())
    }

    /// Time until the slowest cell of the segment finishes erasing, from the
    /// segment's *current* state (used by the early-exit erase).
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] for a bad address.
    pub fn erase_completion_time(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.geometry.check_segment(seg)?;
        let (params, cells, _, dist_cache) = self.op_context(seg);
        let mut worst = 0.0f64;
        for i in 0..cells.arena.len() {
            let statics = cells.arena.statics_at(i);
            let state = cells.arena.state_at(i);
            let t_full = t_full_us_cached(params, &statics, &state, dist_cache);
            let vth_prog = state.vth_prog_now(params, &statics);
            let vth_end = state.vth_erased_now(params, &statics);
            let span = (vth_prog - vth_end).max(1e-9);
            let remaining = ((state.vth - vth_end) / span).clamp(0.0, 1.0);
            worst = worst.max(t_full * remaining);
        }
        Ok(Micros::new(worst))
    }

    /// Worst-case read-reference crossing time (µs) over a segment's cells
    /// at *hypothetical* per-cell wear: cells whose pattern bit is 0 are
    /// evaluated at `stressed_wear`, the rest at `spared_wear`. This is the
    /// early-exit-erase estimator used by the accelerated imprint schedule;
    /// it runs as the arena's chunked log-domain max kernel with one final
    /// `exp`.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] or
    /// [`NorError::BlockLengthMismatch`].
    pub fn worst_t_cross_us(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        stressed_wear: f64,
        spared_wear: f64,
    ) -> Result<f64, NorError> {
        self.check_pattern(seg, pattern)?;
        let (params, cells, _, dist_cache) = self.op_context(seg);
        let mask = Self::stressed_mask(pattern);
        Ok(cells
            .arena
            .max_ln_t_cross(params, dist_cache, &mask, stressed_wear, spared_wear)
            .exp())
    }

    /// [`FlashArray::worst_t_cross_us`] for a whole schedule of
    /// `(stressed_wear, spared_wear)` pairs in one call — the arena prunes
    /// the segment to the Pareto frontier of cells that can attain the
    /// maximum, then evaluates only those per pair, bit-identically to the
    /// one-pair kernel.
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] or
    /// [`NorError::BlockLengthMismatch`].
    pub fn worst_t_cross_multi(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        wear_pairs: &[(f64, f64)],
    ) -> Result<Vec<f64>, NorError> {
        self.check_pattern(seg, pattern)?;
        let (params, cells, _, dist_cache) = self.op_context(seg);
        let mask = Self::stressed_mask(pattern);
        Ok(cells
            .arena
            .max_ln_t_cross_multi(params, dist_cache, &mask, wear_pairs)
            .into_iter()
            .map(f64::exp)
            .collect())
    }

    fn check_pattern(&self, seg: SegmentAddr, pattern: &[u16]) -> Result<(), NorError> {
        self.geometry.check_segment(seg)?;
        if pattern.len() != self.geometry.words_per_segment() {
            return Err(NorError::BlockLengthMismatch {
                got: pattern.len(),
                expected: self.geometry.words_per_segment(),
            });
        }
        Ok(())
    }

    /// Applies `cycles` P/E cycles of `pattern` to a segment in closed form
    /// (the fast path behind [`BulkStress`](crate::interface::BulkStress)).
    ///
    /// `pattern` holds one word per segment word; 0-bits are programmed every
    /// cycle, 1-bits only see erase pulses. The segment ends holding
    /// `pattern` (last operation of an imprint cycle is the program).
    ///
    /// # Errors
    ///
    /// Returns [`NorError::SegmentOutOfRange`] or
    /// [`NorError::BlockLengthMismatch`].
    pub fn bulk_stress(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
    ) -> Result<(), NorError> {
        self.check_pattern(seg, pattern)?;
        let (params, cells, _, _) = self.op_context(seg);
        let mask = Self::stressed_mask(pattern);
        cells.arena.bulk_stress(params, &mask, cycles as f64);
        Ok(())
    }

    /// Stores the chip at `temp_c` for `hours` (retention bake).
    ///
    /// Only materialized segments are affected — untouched segments hold no
    /// charge anyway.
    pub fn bake(&mut self, hours: f64, temp_c: f64) {
        let Self {
            params, segments, ..
        } = self;
        for cells in segments.values_mut() {
            for i in 0..cells.arena.len() {
                let statics = cells.arena.statics_at(i);
                let mut state = cells.arena.state_at(i);
                apply_bake(params, &statics, &mut state, hours, temp_c);
                cells.arena.set_state(i, state);
            }
        }
    }

    /// Wear statistics of a segment.
    pub fn wear_stats(&mut self, seg: SegmentAddr) -> WearStats {
        let cells = self.segment_cells(seg);
        let wear = cells.arena.wear_cycles();
        let n = wear.len() as f64;
        let mut stats = WearStats {
            min_cycles: f64::INFINITY,
            ..WearStats::default()
        };
        for &w in wear {
            stats.min_cycles = stats.min_cycles.min(w);
            stats.max_cycles = stats.max_cycles.max(w);
            stats.mean_cycles += w / n;
        }
        if stats.min_cycles.is_infinite() {
            stats.min_cycles = 0.0;
        }
        stats
    }

    /// Segment indices that have been touched (materialized) so far.
    #[must_use]
    pub fn touched_segments(&self) -> Vec<SegmentAddr> {
        let mut v: Vec<SegmentAddr> = self.segments.keys().map(|&i| SegmentAddr::new(i)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> FlashArray {
        FlashArray::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            0xFACE,
        )
    }

    #[test]
    fn fresh_array_reads_all_ones() {
        let mut a = array();
        assert_eq!(a.read_word(WordAddr::new(0)).unwrap(), 0xFFFF);
        assert_eq!(a.read_word(WordAddr::new(300)).unwrap(), 0xFFFF);
    }

    #[test]
    fn program_then_read_back() {
        let mut a = array();
        let w = WordAddr::new(10);
        a.program_word(w, 0x5443, false).unwrap();
        assert_eq!(a.read_word(w).unwrap(), 0x5443);
    }

    #[test]
    fn program_is_logical_and() {
        let mut a = array();
        let w = WordAddr::new(11);
        a.program_word(w, 0xFF0F, false).unwrap();
        a.program_word(w, 0x0FFF, false).unwrap();
        assert_eq!(a.read_word(w).unwrap(), 0x0F0F);
    }

    #[test]
    fn strict_program_rejects_overwrite() {
        let mut a = array();
        let w = WordAddr::new(12);
        a.program_word(w, 0x0000, true).unwrap();
        let err = a.program_word(w, 0xFFFF, true).unwrap_err();
        assert_eq!(err, NorError::OverwriteWithoutErase { word: 12 });
    }

    #[test]
    fn erase_restores_ones() {
        let mut a = array();
        let seg = SegmentAddr::new(1);
        let w = WordAddr::new(256);
        a.program_word(w, 0x0000, false).unwrap();
        a.erase_complete(seg, Micros::from_millis(25.0)).unwrap();
        assert_eq!(a.read_word(w).unwrap(), 0xFFFF);
    }

    #[test]
    fn short_pulse_does_not_erase_fresh_segment() {
        let mut a = array();
        let seg = SegmentAddr::new(2);
        for w in a.geometry().segment_words(seg) {
            a.program_word(w, 0x0000, false).unwrap();
        }
        let done = a.erase_pulse(seg, Micros::new(5.0)).unwrap();
        assert!(!done);
        let zeros = a.ideal_bits(seg).iter().filter(|&&b| !b).count();
        assert_eq!(zeros, 4096, "5 µs must not flip any fresh cell");
    }

    #[test]
    fn medium_pulse_partially_erases() {
        let mut a = array();
        let seg = SegmentAddr::new(3);
        for w in a.geometry().segment_words(seg) {
            a.program_word(w, 0x0000, false).unwrap();
        }
        // ~median crossing time for fresh cells: a mid-range fraction flips.
        a.erase_pulse(seg, Micros::new(20.5)).unwrap();
        let ones = a.ideal_bits(seg).iter().filter(|&&b| b).count();
        assert!((600..3500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn bulk_stress_accumulates_wear_pattern() {
        let mut a = array();
        let seg = SegmentAddr::new(4);
        let mut pattern = vec![0xFFFFu16; 256];
        pattern[0] = 0x0000; // first word stressed
        a.bulk_stress(seg, &pattern, 20_000).unwrap();
        let wear = a.segment(seg).arena().wear_cycles();
        let stressed = wear[5];
        let spared = wear[16 + 5];
        assert!(stressed > 19_000.0, "stressed wear {stressed}");
        assert!(spared < 1_000.0, "spared wear {spared}");
    }

    #[test]
    fn bulk_stress_validates_pattern_length() {
        let mut a = array();
        let err = a
            .bulk_stress(SegmentAddr::new(0), &[0u16; 3], 10)
            .unwrap_err();
        assert!(matches!(
            err,
            NorError::BlockLengthMismatch {
                got: 3,
                expected: 256
            }
        ));
    }

    #[test]
    fn worn_segment_erases_slower() {
        let mut a = array();
        let fresh_seg = SegmentAddr::new(5);
        let worn_seg = SegmentAddr::new(6);
        a.bulk_stress(worn_seg, &vec![0x0000u16; 256], 50_000)
            .unwrap();
        // Program both fully, then measure completion times.
        for seg in [fresh_seg, worn_seg] {
            a.erase_complete(seg, Micros::from_millis(25.0)).unwrap();
            for w in a.geometry().segment_words(seg) {
                a.program_word(w, 0x0000, false).unwrap();
            }
        }
        let t_fresh = a.erase_completion_time(fresh_seg).unwrap();
        let t_worn = a.erase_completion_time(worn_seg).unwrap();
        assert!(
            t_worn.get() > t_fresh.get() * 2.0,
            "worn {t_worn} vs fresh {t_fresh}"
        );
    }

    #[test]
    fn out_of_range_addresses_error() {
        let mut a = array();
        assert!(a.read_word(WordAddr::new(8 * 256)).is_err());
        assert!(a
            .erase_pulse(SegmentAddr::new(8), Micros::new(1.0))
            .is_err());
    }

    #[test]
    fn same_seed_same_chip() {
        let mut a = FlashArray::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            7,
        );
        let mut b = FlashArray::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            7,
        );
        let seg = SegmentAddr::new(0);
        for arr in [&mut a, &mut b] {
            for w in arr.geometry().segment_words(seg) {
                arr.program_word(w, 0x0000, false).unwrap();
            }
            arr.erase_pulse(seg, Micros::new(20.0)).unwrap();
        }
        assert_eq!(a.ideal_bits(seg), b.ideal_bits(seg));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FlashArray::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            7,
        );
        let mut b = FlashArray::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(2),
            8,
        );
        let seg = SegmentAddr::new(0);
        for arr in [&mut a, &mut b] {
            for w in arr.geometry().segment_words(seg) {
                arr.program_word(w, 0x0000, false).unwrap();
            }
            arr.erase_pulse(seg, Micros::new(20.0)).unwrap();
        }
        assert_ne!(a.ideal_bits(seg), b.ideal_bits(seg));
    }

    #[test]
    fn touched_segments_tracks_materialization() {
        let mut a = array();
        assert!(a.touched_segments().is_empty());
        let _ = a.read_word(WordAddr::new(256));
        let _ = a.read_word(WordAddr::new(0));
        assert_eq!(
            a.touched_segments(),
            vec![SegmentAddr::new(0), SegmentAddr::new(1)]
        );
    }

    #[test]
    fn hot_die_erases_more_cells_per_pulse() {
        let mut cold = array();
        let mut hot = array();
        hot.set_temperature_c(85.0);
        cold.set_temperature_c(-20.0);
        assert_eq!(hot.temperature_c(), 85.0);
        let seg = SegmentAddr::new(0);
        for a in [&mut cold, &mut hot] {
            for w in a.geometry().segment_words(seg) {
                a.program_word(w, 0x0000, false).unwrap();
            }
            a.erase_pulse(seg, Micros::new(19.0)).unwrap();
        }
        let ones_cold = cold.ideal_bits(seg).iter().filter(|&&b| b).count();
        let ones_hot = hot.ideal_bits(seg).iter().filter(|&&b| b).count();
        assert!(
            ones_hot > ones_cold + 400,
            "hot {ones_hot} vs cold {ones_cold}: temperature must accelerate erase"
        );
    }

    #[test]
    fn batched_read_matches_word_loop_bitwise() {
        let mut a = array();
        let mut b = array();
        let seg = SegmentAddr::new(3);
        for arr in [&mut a, &mut b] {
            for w in arr.geometry().segment_words(seg) {
                arr.program_word(w, (w.index() as u16).rotate_left(3), false)
                    .unwrap();
            }
            // A partial erase puts many cells near the reference so read
            // noise actually matters to the compared values.
            arr.erase_pulse(seg, Micros::new(20.5)).unwrap();
        }
        let batched = a.read_segment_words(seg).unwrap();
        let looped: Vec<u16> = b
            .geometry()
            .segment_words(seg)
            .map(|w| b.read_word(w).unwrap())
            .collect();
        assert_eq!(batched, looped);
        // And the op-counter streams are in the same state afterwards.
        assert_eq!(a.read_word(WordAddr::new(0)), b.read_word(WordAddr::new(0)));
    }

    #[test]
    fn batched_program_matches_word_loop_bitwise() {
        let mut a = array();
        let mut b = array();
        let seg = SegmentAddr::new(2);
        let values: Vec<u16> = (0..256).map(|i| !(i as u16).wrapping_mul(0x1357)).collect();
        a.program_segment_words(seg, &values, true).unwrap();
        for (w, &v) in b.geometry().segment_words(seg).zip(&values) {
            b.program_word(w, v, true).unwrap();
        }
        assert_eq!(a.ideal_bits(seg), b.ideal_bits(seg));
        let (sa_vth, sa_wear) = {
            let cells = a.segment(seg).arena();
            (cells.vth().to_vec(), cells.wear_cycles().to_vec())
        };
        let cells_b = b.segment(seg).arena();
        for i in 0..sa_vth.len() {
            assert_eq!(sa_vth[i].to_bits(), cells_b.vth()[i].to_bits());
            assert_eq!(sa_wear[i].to_bits(), cells_b.wear_cycles()[i].to_bits());
        }
    }

    #[test]
    fn batched_program_validates_length_and_strictness() {
        let mut a = array();
        let seg = SegmentAddr::new(1);
        assert!(matches!(
            a.program_segment_words(seg, &[0u16; 3], false),
            Err(NorError::BlockLengthMismatch {
                got: 3,
                expected: 256
            })
        ));
        a.program_segment_words(seg, &vec![0u16; 256], true)
            .unwrap();
        assert!(matches!(
            a.program_segment_words(seg, &vec![0xFFFFu16; 256], true),
            Err(NorError::OverwriteWithoutErase { .. })
        ));
    }

    #[test]
    fn worst_t_cross_tracks_stress_pattern() {
        let mut a = array();
        let seg = SegmentAddr::new(0);
        let all_stressed = vec![0x0000u16; 256];
        let fresh = a.worst_t_cross_us(seg, &all_stressed, 0.0, 0.0).unwrap();
        let worn = a
            .worst_t_cross_us(seg, &all_stressed, 60_000.0, 0.0)
            .unwrap();
        assert!(fresh > 0.0);
        assert!(worn > fresh * 2.0, "worn {worn} vs fresh {fresh}");
        assert!(matches!(
            a.worst_t_cross_us(seg, &[0u16; 2], 0.0, 0.0),
            Err(NorError::BlockLengthMismatch { .. })
        ));
    }

    #[test]
    fn worst_t_cross_multi_matches_single_calls() {
        let mut a = array();
        let seg = SegmentAddr::new(0);
        let mut pattern = vec![0xA5A5u16; 256];
        pattern[17] = 0xFFFF;
        let pairs: Vec<(f64, f64)> = (0..=16)
            .map(|s| {
                let w = 40_000.0 * f64::from(s) / 16.0;
                (w, w * 0.0172)
            })
            .collect();
        let multi = a.worst_t_cross_multi(seg, &pattern, &pairs).unwrap();
        for (i, &(sw, pw)) in pairs.iter().enumerate() {
            let single = a.worst_t_cross_us(seg, &pattern, sw, pw).unwrap();
            assert_eq!(multi[i].to_bits(), single.to_bits(), "pair {i}");
        }
    }

    #[test]
    fn bake_flips_no_wear() {
        let mut a = array();
        let seg = SegmentAddr::new(0);
        a.bulk_stress(seg, &vec![0x0000u16; 256], 10_000).unwrap();
        let before = a.wear_stats(seg);
        a.bake(87_600.0, 85.0);
        let after = a.wear_stats(seg);
        assert_eq!(before, after);
    }
}
