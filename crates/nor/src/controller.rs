//! The flash controller: command sequencing, timing, locking, tracing.
//!
//! Wraps a [`FlashArray`] with the state machine and wall-clock accounting a
//! real flash module has. All Flashmark algorithms drive this type through
//! the [`FlashInterface`] trait.

use flashmark_obs as obs;
use flashmark_obs::{FlashOpKind, ObsEvent};
use flashmark_physics::{Micros, PhysicsParams, Seconds};

use crate::addr::{SegmentAddr, WordAddr};
use crate::array::{FlashArray, WearStats};
use crate::error::NorError;
use crate::geometry::FlashGeometry;
use crate::interface::{BulkStress, FlashInterface, ImprintTiming, PartialProgram};
use crate::timing::{FlashTimings, SimClock};
use crate::trace::{FlashEvent, Trace};

/// Cumulative operation counters (always on; cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounters {
    /// Full segment erases.
    pub segment_erases: u64,
    /// Partial (aborted) erases.
    pub partial_erases: u64,
    /// Early-exited (erase-until-clean) erases.
    pub early_exit_erases: u64,
    /// Single-word programs.
    pub word_programs: u64,
    /// Block programs (segments).
    pub block_programs: u64,
    /// Word reads.
    pub word_reads: u64,
    /// Mass erases.
    pub mass_erases: u64,
    /// Bulk (closed-form) imprints.
    pub bulk_imprints: u64,
    /// Partial (aborted) program pulses.
    pub partial_programs: u64,
}

/// A simulated flash controller plus its array.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct FlashController {
    array: FlashArray,
    timings: FlashTimings,
    clock: SimClock,
    locked: bool,
    strict_program: bool,
    poll_step: Micros,
    poll_words: usize,
    counters: OpCounters,
    trace: Trace,
    // tCPT budget per 128-byte flash row, keyed by (segment, row).
    cumulative_program: std::collections::BTreeMap<(u32, u32), Micros>,
}

impl FlashController {
    /// Creates a controller over a fresh chip.
    #[must_use]
    pub fn new(
        params: PhysicsParams,
        geometry: FlashGeometry,
        timings: FlashTimings,
        chip_seed: u64,
    ) -> Self {
        Self {
            array: FlashArray::new(params, geometry, chip_seed),
            timings,
            clock: SimClock::new(),
            locked: false,
            strict_program: false,
            poll_step: Micros::new(25.0),
            poll_words: 16,
            counters: OpCounters::default(),
            trace: Trace::new(),
            cumulative_program: std::collections::BTreeMap::new(),
        }
    }

    /// The operation timings in force.
    #[must_use]
    pub fn timings(&self) -> &FlashTimings {
        &self.timings
    }

    /// Ground-truth access to the cell array (simulator-only; experiments
    /// use this for reference data a real part could never provide).
    #[must_use]
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    /// Mutable ground-truth access to the cell array.
    pub fn array_mut(&mut self) -> &mut FlashArray {
        &mut self.array
    }

    /// Sets the die temperature (°C) for subsequent operations. Erase
    /// pulses act faster when the die is hot, which shifts the partial-
    /// erase window — the `temperature_sweep` experiment quantifies it.
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        self.array.set_temperature_c(temp_c);
    }

    /// Locks the controller (`LOCK` bit): programs and erases are refused.
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Unlocks the controller.
    pub fn unlock(&mut self) {
        self.locked = false;
    }

    /// Whether the controller is locked.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Enables strict programming: flipping a 0 bit to 1 errors instead of
    /// silently ANDing.
    pub fn set_strict_program(&mut self, strict: bool) {
        self.strict_program = strict;
    }

    /// Operation counters so far.
    #[must_use]
    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    /// The event trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the event trace (to enable/clear it).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Wear statistics of a segment (ground truth).
    pub fn wear_stats(&mut self, seg: SegmentAddr) -> WearStats {
        self.array.wear_stats(seg)
    }

    /// Mass erase: every touched segment is fully erased (untouched
    /// segments are already in the erased state).
    ///
    /// # Errors
    ///
    /// Returns [`NorError::Locked`] if the controller is locked.
    pub fn mass_erase(&mut self) -> Result<(), NorError> {
        self.check_writable()?;
        self.cumulative_program.clear();
        for seg in self.array.touched_segments() {
            self.array.erase_complete(seg, self.timings.mass_erase)?;
        }
        self.clock
            .advance(self.timings.setup_overhead + self.timings.mass_erase);
        self.counters.mass_erases += 1;
        self.trace.record(self.clock.now(), FlashEvent::MassErase);
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::MassErase,
            seg: 0,
        });
        Ok(())
    }

    /// Charges `dt` of program time against one 128-byte row's `tCPT`
    /// budget (the datasheet bounds cumulative programming per row between
    /// erases).
    fn charge_program_time(
        &mut self,
        seg: SegmentAddr,
        row: u32,
        dt: Micros,
    ) -> Result<(), NorError> {
        let limit = self.timings.cumulative_program_limit;
        if limit.get() <= 0.0 {
            return Ok(());
        }
        let spent = self
            .cumulative_program
            .entry((seg.index(), row))
            .or_insert(Micros::new(0.0));
        if (*spent + dt).get() > limit.get() {
            return Err(NorError::CumulativeProgramTime {
                segment: seg.index(),
            });
        }
        *spent += dt;
        Ok(())
    }

    fn clear_program_budget(&mut self, seg: SegmentAddr) {
        self.cumulative_program
            .retain(|&(s, _), _| s != seg.index());
    }

    fn check_writable(&self) -> Result<(), NorError> {
        if self.locked {
            Err(NorError::Locked)
        } else {
            Ok(())
        }
    }

    fn poll_overhead(&self) -> Micros {
        self.timings.abort_latency + self.timings.read_word * self.poll_words as f64
    }

    /// Estimated erase times of early-exited erases at a schedule of
    /// hypothetical uniform wear levels (used by the bulk-imprint time
    /// integral): per level, the slowest stressed cell's crossing time
    /// extended to full completion. One arena kernel call evaluates the
    /// whole schedule, so the Pareto pruning of the candidate set is paid
    /// once instead of per sample.
    fn early_exit_estimates(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        wear_levels: &[f64],
    ) -> Result<Vec<Micros>, NorError> {
        let (full_ratio, spared_ratio) = {
            let params = self.array.params();
            // Ratio of full-erase time to reference-crossing time, from the
            // nominal levels (identical for every cell to first order).
            let span_total = params.vth_programmed.mean - params.vth_erased.mean;
            let span_to_ref = params.vth_programmed.mean - params.vref.get();
            // Spared cells still accrue erase-only wear each cycle.
            let spared_ratio = params.wear.erase_only / (params.wear.program + params.wear.erase);
            ((span_total / span_to_ref).max(1.0), spared_ratio)
        };
        let pairs: Vec<(f64, f64)> = wear_levels
            .iter()
            .map(|&wear_cycles| (wear_cycles, wear_cycles * spared_ratio))
            .collect();
        let worsts = self.array.worst_t_cross_multi(seg, pattern, &pairs)?;
        Ok(worsts
            .into_iter()
            .map(|worst| Micros::new(worst * full_ratio))
            .collect())
    }

    fn emit_cells_touched(kind: &'static str, cells: u64) {
        obs::emit(ObsEvent::CellsTouched { kind, cells });
    }
}

impl FlashInterface for FlashController {
    fn geometry(&self) -> FlashGeometry {
        self.array.geometry()
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        let v = self.array.read_word(word)?;
        self.clock.advance(self.timings.read_word);
        self.counters.word_reads += 1;
        self.trace
            .record(self.clock.now(), FlashEvent::ReadWord { word });
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ReadWord,
            seg: self.geometry().segment_of(word).index(),
        });
        Ok(v)
    }

    fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        let values = self.array.read_segment_words(seg)?;
        self.counters.word_reads += values.len() as u64;
        let base = self.geometry().first_word(seg);
        // Per-word clock/trace updates in the same order as a word-by-word
        // loop, so elapsed time stays float-identical to the legacy path.
        for i in 0..values.len() {
            self.clock.advance(self.timings.read_word);
            self.trace.record(
                self.clock.now(),
                FlashEvent::ReadWord {
                    word: base.offset(i as u32),
                },
            );
        }
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ReadBlock,
            seg: seg.index(),
        });
        Self::emit_cells_touched("read_block", self.geometry().cells_per_segment() as u64);
        Ok(values)
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        self.check_writable()?;
        let seg = self.geometry().segment_of(word);
        let row = (self.geometry().word_offset_in_segment(word) / 64) as u32;
        self.charge_program_time(seg, row, self.timings.program_word)?;
        self.array.program_word(word, value, self.strict_program)?;
        self.clock.advance(self.timings.program_word);
        self.counters.word_programs += 1;
        self.trace
            .record(self.clock.now(), FlashEvent::ProgramWord { word });
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ProgramWord,
            seg: seg.index(),
        });
        Ok(())
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        self.check_writable()?;
        let n = self.geometry().words_per_segment();
        if values.len() != n {
            return Err(NorError::BlockLengthMismatch {
                got: values.len(),
                expected: n,
            });
        }
        // A block write spreads its time evenly over the segment's rows.
        let rows = (n / 64).max(1) as u32;
        let per_row = self.timings.block_write(n) / f64::from(rows);
        for row in 0..rows {
            self.charge_program_time(seg, row, per_row)?;
        }
        self.array
            .program_segment_words(seg, values, self.strict_program)?;
        self.clock.advance(self.timings.block_write(n));
        self.counters.block_programs += 1;
        self.trace
            .record(self.clock.now(), FlashEvent::ProgramBlock { seg });
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::ProgramBlock,
            seg: seg.index(),
        });
        Self::emit_cells_touched("program_block", self.geometry().cells_per_segment() as u64);
        Ok(())
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        self.check_writable()?;
        self.clear_program_budget(seg);
        self.array.erase_complete(seg, self.timings.erase_segment)?;
        self.clock
            .advance(self.timings.setup_overhead + self.timings.erase_segment);
        self.counters.segment_erases += 1;
        self.trace
            .record(self.clock.now(), FlashEvent::EraseSegment { seg });
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::EraseSegment,
            seg: seg.index(),
        });
        Ok(())
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        self.check_writable()?;
        self.clear_program_budget(seg);
        self.array.erase_pulse(seg, t_pe)?;
        self.clock
            .advance(self.timings.setup_overhead + t_pe + self.timings.abort_latency);
        self.counters.partial_erases += 1;
        self.trace
            .record(self.clock.now(), FlashEvent::PartialErase { seg, t_pe });
        obs::emit(ObsEvent::PartialErase {
            seg: seg.index(),
            t_pe_us: t_pe.get(),
        });
        Self::emit_cells_touched("partial_erase", self.geometry().cells_per_segment() as u64);
        Ok(())
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.check_writable()?;
        self.clear_program_budget(seg);
        self.clock.advance(self.timings.setup_overhead);
        let mut spent = Micros::new(0.0);
        let mut pulses = 0u64;
        let max_pulses = 4096; // hard stop far beyond any calibrated wear
        for _ in 0..max_pulses {
            let done = self.array.erase_pulse(seg, self.poll_step)?;
            pulses += 1;
            spent += self.poll_step;
            self.clock.advance(self.poll_step + self.poll_overhead());
            if done {
                break;
            }
        }
        self.counters.early_exit_erases += 1;
        self.trace.record(
            self.clock.now(),
            FlashEvent::EraseUntilClean { seg, took: spent },
        );
        obs::emit(ObsEvent::EraseUntilClean {
            seg: seg.index(),
            took_us: spent.get(),
        });
        Self::emit_cells_touched(
            "erase_until_clean",
            pulses * self.geometry().cells_per_segment() as u64,
        );
        Ok(spent)
    }

    fn elapsed(&self) -> Seconds {
        self.clock.now()
    }
}

impl PartialProgram for FlashController {
    fn partial_program(&mut self, seg: SegmentAddr, t_pp: Micros) -> Result<(), NorError> {
        self.check_writable()?;
        self.array.program_pulse(seg, t_pp)?;
        self.clock
            .advance(self.timings.setup_overhead + t_pp + self.timings.abort_latency);
        self.counters.partial_programs += 1;
        obs::emit(ObsEvent::FlashOp {
            kind: FlashOpKind::PartialProgram,
            seg: seg.index(),
        });
        Ok(())
    }
}

impl BulkStress for FlashController {
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        self.check_writable()?;
        let n = self.geometry().words_per_segment();
        if pattern.len() != n {
            return Err(NorError::BlockLengthMismatch {
                got: pattern.len(),
                expected: n,
            });
        }
        let start = self.clock.now();
        // Time accounting first (needs pre-stress statics only, but wear is
        // sampled across the whole schedule, so order does not matter).
        let write = self.timings.block_write(n);
        match timing {
            ImprintTiming::Baseline => {
                let cycle = self.timings.setup_overhead + self.timings.erase_segment + write;
                self.clock.advance(cycle * cycles as f64);
            }
            ImprintTiming::Accelerated => {
                // Integrate the early-exit erase time over the wear ramp
                // 0..cycles with a trapezoidal rule over SAMPLES points.
                const SAMPLES: usize = 16;
                let wear_levels: Vec<f64> = (0..=SAMPLES)
                    .map(|s| cycles as f64 * s as f64 / SAMPLES as f64)
                    .collect();
                let estimates = self.early_exit_estimates(seg, pattern, &wear_levels)?;
                let mut erase_total = 0.0;
                for (s, est) in estimates.iter().enumerate() {
                    // Round the estimate up to the polling grid and add the
                    // polling overhead the loop implementation would pay.
                    let step = self.poll_step.get();
                    let pulses = (est.get() / step).ceil().max(1.0);
                    let per_erase = pulses * (step + self.poll_overhead().get())
                        + self.timings.setup_overhead.get();
                    let weight = if s == 0 || s == SAMPLES { 0.5 } else { 1.0 };
                    erase_total += weight * per_erase;
                }
                erase_total *= cycles as f64 / SAMPLES as f64;
                let write_total = write.get() * cycles as f64;
                self.clock.advance(Micros::new(erase_total + write_total));
                let n_cells = self.geometry().cells_per_segment() as u64;
                Self::emit_cells_touched("early_exit_estimate", (SAMPLES as u64 + 1) * n_cells);
            }
        }
        self.array.bulk_stress(seg, pattern, cycles)?;
        self.counters.bulk_imprints += 1;
        self.trace
            .record(self.clock.now(), FlashEvent::BulkImprint { seg, cycles });
        obs::emit(ObsEvent::BulkImprint {
            seg: seg.index(),
            cycles,
        });
        Self::emit_cells_touched("bulk_imprint", self.geometry().cells_per_segment() as u64);
        Ok(self.clock.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::FlashInterfaceExt;

    fn controller() -> FlashController {
        FlashController::new(
            PhysicsParams::msp430_like(),
            FlashGeometry::single_bank(8),
            FlashTimings::msp430(),
            0xC1A0,
        )
    }

    #[test]
    fn program_and_read_advance_clock() {
        let mut ctl = controller();
        let t0 = ctl.elapsed();
        ctl.program_word(WordAddr::new(0), 0x1234).unwrap();
        let t1 = ctl.elapsed();
        assert!(t1 > t0);
        assert_eq!(ctl.read_word(WordAddr::new(0)).unwrap(), 0x1234);
        assert!(ctl.elapsed() > t1);
        assert_eq!(ctl.counters().word_programs, 1);
        assert_eq!(ctl.counters().word_reads, 1);
    }

    #[test]
    fn erase_takes_terase() {
        let mut ctl = controller();
        ctl.erase_segment(SegmentAddr::new(0)).unwrap();
        let ms = ctl.elapsed().as_millis();
        assert!((24.9..=25.3).contains(&ms), "elapsed {ms} ms");
    }

    #[test]
    fn locked_controller_refuses_writes_but_reads() {
        let mut ctl = controller();
        ctl.lock();
        assert!(ctl.is_locked());
        assert_eq!(
            ctl.program_word(WordAddr::new(0), 0).unwrap_err(),
            NorError::Locked
        );
        assert_eq!(
            ctl.erase_segment(SegmentAddr::new(0)).unwrap_err(),
            NorError::Locked
        );
        assert_eq!(
            ctl.partial_erase(SegmentAddr::new(0), Micros::new(10.0))
                .unwrap_err(),
            NorError::Locked
        );
        assert!(ctl.read_word(WordAddr::new(0)).is_ok());
        ctl.unlock();
        assert!(ctl.program_word(WordAddr::new(0), 0).is_ok());
    }

    #[test]
    fn erase_until_clean_fresh_segment_is_fast() {
        let mut ctl = controller();
        let seg = SegmentAddr::new(1);
        ctl.program_all_zero(seg).unwrap();
        let took = ctl.erase_until_clean(seg).unwrap();
        // Fresh cells complete in well under 150 µs.
        assert!(took.get() <= 150.0, "took {took}");
        let words = ctl.read_segment(seg).unwrap();
        assert!(words.iter().all(|&w| w == 0xFFFF));
    }

    #[test]
    fn erase_until_clean_tracks_wear() {
        let mut ctl = controller();
        let seg = SegmentAddr::new(2);
        ctl.bulk_imprint(seg, &vec![0u16; 256], 40_000, ImprintTiming::Baseline)
            .unwrap();
        ctl.program_all_zero(seg).unwrap();
        let took = ctl.erase_until_clean(seg).unwrap();
        assert!(
            (150.0..=600.0).contains(&took.get()),
            "40K-worn segment erase took {took}"
        );
    }

    #[test]
    fn bulk_imprint_baseline_matches_paper_times() {
        let mut ctl = controller();
        let seg = SegmentAddr::new(3);
        let dt = ctl
            .bulk_imprint(seg, &vec![0u16; 256], 40_000, ImprintTiming::Baseline)
            .unwrap();
        assert!(
            (1340.0..=1420.0).contains(&dt.get()),
            "baseline 40K took {dt}"
        );
    }

    #[test]
    fn bulk_imprint_accelerated_is_about_3_5x_faster() {
        let mut ctl = controller();
        let seg = SegmentAddr::new(4);
        let fast = ctl
            .bulk_imprint(seg, &vec![0u16; 256], 40_000, ImprintTiming::Accelerated)
            .unwrap();
        let mut ctl2 = controller();
        let slow = ctl2
            .bulk_imprint(
                SegmentAddr::new(4),
                &vec![0u16; 256],
                40_000,
                ImprintTiming::Baseline,
            )
            .unwrap();
        let speedup = slow.get() / fast.get();
        assert!((2.8..=4.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn bulk_imprint_leaves_pattern_programmed() {
        let mut ctl = controller();
        let seg = SegmentAddr::new(5);
        let mut pattern = vec![0xFFFFu16; 256];
        pattern[3] = 0x5443;
        ctl.bulk_imprint(seg, &pattern, 1_000, ImprintTiming::Baseline)
            .unwrap();
        let base = ctl.geometry().first_word(seg);
        assert_eq!(ctl.read_word(base.offset(3)).unwrap(), 0x5443);
        assert_eq!(ctl.read_word(base.offset(4)).unwrap(), 0xFFFF);
    }

    #[test]
    fn trace_captures_operations() {
        let mut ctl = controller();
        ctl.trace_mut().enable();
        ctl.erase_segment(SegmentAddr::new(0)).unwrap();
        ctl.partial_erase(SegmentAddr::new(0), Micros::new(20.0))
            .unwrap();
        let events = ctl.trace().events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].1, FlashEvent::EraseSegment { .. }));
        assert!(matches!(events[1].1, FlashEvent::PartialErase { .. }));
    }

    #[test]
    fn read_block_matches_word_loop_including_clock() {
        let mut a = controller();
        let mut b = controller();
        let seg = SegmentAddr::new(1);
        for ctl in [&mut a, &mut b] {
            ctl.program_all_zero(seg).unwrap();
            ctl.partial_erase(seg, Micros::new(20.5)).unwrap();
            ctl.trace_mut().set_record_reads(true);
            ctl.trace_mut().enable();
        }
        let batched = a.read_block(seg).unwrap();
        let looped: Vec<u16> = b
            .geometry()
            .segment_words(seg)
            .map(|w| b.read_word(w).unwrap())
            .collect();
        assert_eq!(batched, looped);
        assert_eq!(a.elapsed().get().to_bits(), b.elapsed().get().to_bits());
        assert_eq!(a.counters().word_reads, b.counters().word_reads);
        assert_eq!(a.trace().events(), b.trace().events());
    }

    #[test]
    fn strict_program_mode_propagates() {
        let mut ctl = controller();
        ctl.set_strict_program(true);
        ctl.program_word(WordAddr::new(7), 0x0000).unwrap();
        assert!(matches!(
            ctl.program_word(WordAddr::new(7), 0xFFFF).unwrap_err(),
            NorError::OverwriteWithoutErase { .. }
        ));
    }

    #[test]
    fn cumulative_program_time_enforced_per_row() {
        // Reprogramming the same row hundreds of times without an erase
        // exceeds the datasheet's tCPT budget; an erase resets it.
        let mut ctl = controller();
        let w = WordAddr::new(0);
        let mut hit_limit = false;
        for _ in 0..400 {
            match ctl.program_word(w, 0x0000) {
                Ok(()) => {}
                Err(NorError::CumulativeProgramTime { segment: 0 }) => {
                    hit_limit = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(hit_limit, "tCPT budget never tripped");
        ctl.erase_segment(SegmentAddr::new(0)).unwrap();
        assert!(
            ctl.program_word(w, 0x0000).is_ok(),
            "erase must reset the budget"
        );
    }

    #[test]
    fn normal_flashmark_flows_fit_the_tcpt_budget() {
        // One block write per erase (the imprint/extract pattern) never
        // trips the limit.
        let mut ctl = controller();
        let seg = SegmentAddr::new(0);
        for _ in 0..5 {
            ctl.erase_segment(seg).unwrap();
            ctl.program_block(seg, &vec![0u16; 256]).unwrap();
        }
    }

    #[test]
    fn block_length_validated() {
        let mut ctl = controller();
        assert!(matches!(
            ctl.program_block(SegmentAddr::new(0), &[0u16; 3])
                .unwrap_err(),
            NorError::BlockLengthMismatch { .. }
        ));
    }
}
