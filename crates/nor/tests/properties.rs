//! Property-based tests of the NOR array/controller semantics.

use proptest::prelude::*;

use flashmark_nor::interface::FlashInterface;
use flashmark_nor::{FlashController, FlashGeometry, FlashTimings, SegmentAddr, WordAddr};
use flashmark_physics::{Micros, PhysicsParams};

fn controller(seed: u64) -> FlashController {
    FlashController::new(
        PhysicsParams::msp430_like(),
        FlashGeometry::single_bank(4),
        FlashTimings::msp430(),
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Programming is logical AND with current contents, for any value pair.
    #[test]
    fn program_is_and(seed in any::<u64>(), a in any::<u16>(), b in any::<u16>()) {
        let mut ctl = controller(seed);
        let w = WordAddr::new(5);
        ctl.program_word(w, a).unwrap();
        ctl.program_word(w, b).unwrap();
        prop_assert_eq!(ctl.read_word(w).unwrap(), a & b);
    }

    /// Erase always restores all-ones regardless of prior contents.
    #[test]
    fn erase_restores_ones(seed in any::<u64>(), values in proptest::collection::vec(any::<u16>(), 1..16)) {
        let mut ctl = controller(seed);
        for (i, &v) in values.iter().enumerate() {
            ctl.program_word(WordAddr::new(i as u32), v).unwrap();
        }
        ctl.erase_segment(SegmentAddr::new(0)).unwrap();
        for i in 0..values.len() {
            prop_assert_eq!(ctl.read_word(WordAddr::new(i as u32)).unwrap(), 0xFFFF);
        }
    }

    /// Two consecutive partial erases never un-erase cells: the count of
    /// erased cells is monotone over pulses.
    #[test]
    fn partial_erase_is_monotone(seed in any::<u64>(), t1 in 1.0f64..40.0, t2 in 1.0f64..40.0) {
        let mut ctl = controller(seed);
        let seg = SegmentAddr::new(1);
        use flashmark_nor::interface::FlashInterfaceExt;
        ctl.program_all_zero(seg).unwrap();
        ctl.partial_erase(seg, Micros::new(t1)).unwrap();
        let ones_1 = ctl.array_mut().ideal_bits(seg).iter().filter(|&&b| b).count();
        ctl.partial_erase(seg, Micros::new(t2)).unwrap();
        let ones_2 = ctl.array_mut().ideal_bits(seg).iter().filter(|&&b| b).count();
        prop_assert!(ones_2 >= ones_1);
    }

    /// The simulated clock is strictly monotone across arbitrary operation
    /// sequences.
    #[test]
    fn clock_monotone(seed in any::<u64>(), ops in proptest::collection::vec(0u8..4, 1..12)) {
        let mut ctl = controller(seed);
        let mut prev = ctl.elapsed();
        for op in ops {
            match op {
                0 => { let _ = ctl.read_word(WordAddr::new(0)); }
                1 => { let _ = ctl.program_word(WordAddr::new(1), 0x1234); }
                2 => { let _ = ctl.erase_segment(SegmentAddr::new(0)); }
                _ => { let _ = ctl.partial_erase(SegmentAddr::new(0), Micros::new(10.0)); }
            }
            let now = ctl.elapsed();
            prop_assert!(now > prev, "clock did not advance");
            prev = now;
        }
    }

    /// Wear never decreases, whatever the digital interface does.
    #[test]
    fn wear_monotone_via_interface(seed in any::<u64>(), ops in proptest::collection::vec(0u8..3, 1..10)) {
        let mut ctl = controller(seed);
        let seg = SegmentAddr::new(0);
        let mut prev = ctl.wear_stats(seg).mean_cycles;
        for op in ops {
            match op {
                0 => { let _ = ctl.program_word(WordAddr::new(3), 0x0000); }
                1 => { let _ = ctl.erase_segment(seg); }
                _ => { let _ = ctl.partial_erase(seg, Micros::new(15.0)); }
            }
            let now = ctl.wear_stats(seg).mean_cycles;
            prop_assert!(now >= prev - 1e-12);
            prev = now;
        }
    }

    /// Geometry address math round-trips for arbitrary words.
    #[test]
    fn geometry_roundtrip(word_idx in 0u32..1024) {
        let g = FlashGeometry::single_bank(4);
        let w = WordAddr::new(word_idx);
        let seg = g.segment_of(w);
        let base = g.first_word(seg);
        let offset = g.word_offset_in_segment(w);
        prop_assert_eq!(base.offset(offset as u32), w);
        prop_assert!(offset < g.words_per_segment());
    }
}
