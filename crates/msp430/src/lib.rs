#![forbid(unsafe_code)]
//! MSP430F5438 / MSP430F5529 device models.
//!
//! The Flashmark paper demonstrates the technique on these two TI ultra-low
//! power microcontrollers. This crate assembles the generic NOR substrate
//! ([`flashmark_nor`]) into concrete devices: memory maps (main flash banks +
//! 128-byte info segments), datasheet timing, endurance rating, and the
//! TLV-style device-descriptor records that the *current practice* stores as
//! plain (forgeable) flash metadata — the strawman Flashmark replaces.
//!
//! # Example
//!
//! ```
//! use flashmark_msp430::{Msp430Flash, Msp430Variant};
//! use flashmark_nor::interface::FlashInterface;
//!
//! let mut chip = Msp430Flash::new(Msp430Variant::F5438, 0xD1E5);
//! assert_eq!(chip.spec().main_flash_bytes(), 256 * 1024);
//! let seg = chip.watermark_segment();
//! chip.erase_segment(seg).expect("erase reserved segment");
//! ```

pub mod datasheet;
pub mod device;
pub mod flash_module;
pub mod info_memory;

pub use device::{DeviceSpec, Msp430Variant};
pub use flash_module::Msp430Flash;
pub use info_memory::{DeviceDescriptor, DieRecord, TlvTag};
