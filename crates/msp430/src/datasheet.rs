//! Datasheet constants of the MSP430F543x/F552x flash module.
//!
//! Sources: MSP430F5438 datasheet (SLAS612) flash memory electrical
//! characteristics, as cited by the paper: segment erase `TERASE` ≈ 23–35 ms
//! and word program `TPROG` ≈ 64–85 µs, with 10 K minimum rated P/E cycles
//! and ~100 K typical endurance (the paper stresses segments up to 100 K).

use flashmark_nor::FlashTimings;
use flashmark_physics::Micros;

/// Minimum segment-erase time (ms).
pub const T_ERASE_MIN_MS: f64 = 23.0;
/// Maximum segment-erase time (ms).
pub const T_ERASE_MAX_MS: f64 = 35.0;
/// Minimum word-program time (µs).
pub const T_PROG_MIN_US: f64 = 64.0;
/// Maximum word-program time (µs).
pub const T_PROG_MAX_US: f64 = 85.0;
/// Rated program/erase endurance used by the paper's experiments (cycles).
pub const ENDURANCE_CYCLES: u64 = 100_000;
/// Maximum cumulative program time per 128-byte row between erases (ms);
/// firmware must interleave erases on real parts.
pub const T_CUM_PROGRAM_MS: f64 = 16.0;

/// The timing set used by the device models (within datasheet bounds).
#[must_use]
pub fn timings() -> FlashTimings {
    FlashTimings::msp430()
}

/// Whether a measured/simulated segment-erase duration is within the
/// datasheet window.
#[must_use]
pub fn erase_time_in_spec(t: Micros) -> bool {
    (T_ERASE_MIN_MS..=T_ERASE_MAX_MS).contains(&t.as_millis())
}

/// Whether a word-program duration is within the datasheet window.
#[must_use]
pub fn program_time_in_spec(t: Micros) -> bool {
    (T_PROG_MIN_US..=T_PROG_MAX_US).contains(&t.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_timings_are_in_spec() {
        let t = timings();
        assert!(erase_time_in_spec(t.erase_segment));
        assert!(program_time_in_spec(t.program_word));
    }

    #[test]
    fn spec_checks_reject_out_of_window() {
        assert!(!erase_time_in_spec(Micros::from_millis(10.0)));
        assert!(!erase_time_in_spec(Micros::from_millis(50.0)));
        assert!(!program_time_in_spec(Micros::new(10.0)));
        assert!(!program_time_in_spec(Micros::new(200.0)));
    }
}
