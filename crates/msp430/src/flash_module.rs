//! The assembled flash module of one simulated microcontroller.

use flashmark_nor::interface::{BulkStress, FlashInterface, ImprintTiming};
use flashmark_nor::{FlashController, FlashGeometry, NorError, SegmentAddr, WordAddr};
use flashmark_physics::rng::mix2;
use flashmark_physics::{Micros, Seconds};

use crate::device::{DeviceSpec, Msp430Variant};

/// One simulated MSP430 chip: main flash plus info memory, each behind its
/// own controller, sharing the chip identity (seed).
///
/// Implements [`FlashInterface`] over the **main** flash; the info memory is
/// reached through [`Msp430Flash::info`] / [`Msp430Flash::info_mut`].
#[derive(Debug, Clone)]
pub struct Msp430Flash {
    spec: DeviceSpec,
    chip_seed: u64,
    main: FlashController,
    info: FlashController,
}

impl Msp430Flash {
    /// Creates a chip of the given variant with identity `chip_seed`.
    #[must_use]
    pub fn new(variant: Msp430Variant, chip_seed: u64) -> Self {
        let spec = variant.spec();
        let params = variant.physics();
        Self {
            spec,
            chip_seed,
            main: FlashController::new(params.clone(), spec.main_geometry, spec.timings, chip_seed),
            info: FlashController::new(
                params,
                spec.info_geometry,
                spec.timings,
                mix2(chip_seed, 0x1F01_F0F0),
            ),
        }
    }

    /// An MSP430F5438 chip.
    #[must_use]
    pub fn f5438(chip_seed: u64) -> Self {
        Self::new(Msp430Variant::F5438, chip_seed)
    }

    /// An MSP430F5529 chip.
    #[must_use]
    pub fn f5529(chip_seed: u64) -> Self {
        Self::new(Msp430Variant::F5529, chip_seed)
    }

    /// The device specification.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The chip identity seed.
    #[must_use]
    pub fn chip_seed(&self) -> u64 {
        self.chip_seed
    }

    /// The main-flash controller.
    #[must_use]
    pub fn main(&self) -> &FlashController {
        &self.main
    }

    /// Mutable main-flash controller.
    pub fn main_mut(&mut self) -> &mut FlashController {
        &mut self.main
    }

    /// The info-memory controller.
    #[must_use]
    pub fn info(&self) -> &FlashController {
        &self.info
    }

    /// Mutable info-memory controller.
    pub fn info_mut(&mut self) -> &mut FlashController {
        &mut self.info
    }

    /// The segment conventionally reserved for the Flashmark watermark: the
    /// last segment of the last main bank (out of the vector table and code
    /// regions).
    #[must_use]
    pub fn watermark_segment(&self) -> SegmentAddr {
        SegmentAddr::new(self.spec.main_geometry.total_segments() - 1)
    }
}

impl FlashInterface for Msp430Flash {
    fn geometry(&self) -> FlashGeometry {
        self.main.geometry()
    }

    fn read_word(&mut self, word: WordAddr) -> Result<u16, NorError> {
        self.main.read_word(word)
    }

    fn read_block(&mut self, seg: SegmentAddr) -> Result<Vec<u16>, NorError> {
        self.main.read_block(seg)
    }

    fn program_word(&mut self, word: WordAddr, value: u16) -> Result<(), NorError> {
        self.main.program_word(word, value)
    }

    fn program_block(&mut self, seg: SegmentAddr, values: &[u16]) -> Result<(), NorError> {
        self.main.program_block(seg, values)
    }

    fn erase_segment(&mut self, seg: SegmentAddr) -> Result<(), NorError> {
        self.main.erase_segment(seg)
    }

    fn partial_erase(&mut self, seg: SegmentAddr, t_pe: Micros) -> Result<(), NorError> {
        self.main.partial_erase(seg, t_pe)
    }

    fn erase_until_clean(&mut self, seg: SegmentAddr) -> Result<Micros, NorError> {
        self.main.erase_until_clean(seg)
    }

    fn elapsed(&self) -> Seconds {
        self.main.elapsed()
    }
}

impl BulkStress for Msp430Flash {
    fn bulk_imprint(
        &mut self,
        seg: SegmentAddr,
        pattern: &[u16],
        cycles: u64,
        timing: ImprintTiming,
    ) -> Result<Seconds, NorError> {
        self.main.bulk_imprint(seg, pattern, cycles, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashmark_nor::interface::FlashInterfaceExt;

    #[test]
    fn chip_basics() {
        let chip = Msp430Flash::f5438(1);
        assert_eq!(chip.spec().name, "MSP430F5438");
        assert_eq!(chip.chip_seed(), 1);
        assert_eq!(chip.watermark_segment().index(), 511);
    }

    #[test]
    fn main_and_info_are_independent() {
        let mut chip = Msp430Flash::f5529(2);
        chip.program_word(WordAddr::new(0), 0x0).unwrap();
        assert_eq!(chip.info_mut().read_word(WordAddr::new(0)).unwrap(), 0xFFFF);
        assert_eq!(chip.main_mut().read_word(WordAddr::new(0)).unwrap(), 0x0000);
    }

    #[test]
    fn flash_interface_roundtrip() {
        let mut chip = Msp430Flash::f5438(3);
        let seg = chip.watermark_segment();
        chip.erase_segment(seg).unwrap();
        let w = chip.geometry().first_word(seg);
        chip.program_word(w, 0xBEEF).unwrap();
        assert_eq!(chip.read_word(w).unwrap(), 0xBEEF);
        let words = chip.read_segment(seg).unwrap();
        assert_eq!(words[0], 0xBEEF);
    }

    #[test]
    fn same_seed_same_chip_different_seed_differs() {
        let a = Msp430Flash::f5438(7).main().array().chip_seed();
        let b = Msp430Flash::f5438(7).main().array().chip_seed();
        let c = Msp430Flash::f5438(8).main().array().chip_seed();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn info_memory_shape() {
        let chip = Msp430Flash::f5438(9);
        let g = chip.info().geometry();
        assert_eq!(g.total_segments(), 4);
        assert_eq!(g.bytes_per_segment(), 128);
        assert_eq!(g.words_per_segment(), 64);
    }
}
