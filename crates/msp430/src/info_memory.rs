//! TLV device-descriptor records in info memory.
//!
//! Real MSP430 parts carry a TLV (tag–length–value) descriptor with device
//! ID, die record (lot / wafer / die X-Y), and calibration data. Chip
//! manufacturers today store *testing metadata* the same way — as plain
//! flash contents. The paper's point of departure is that such metadata "can
//! easily be erased, forged, or fabricated by counterfeiters"; the supply
//! chain simulation uses this module as exactly that forgeable strawman.

use flashmark_nor::interface::FlashInterface;
use flashmark_nor::{FlashController, NorError, SegmentAddr};

/// TLV record tags (a representative subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TlvTag {
    /// Device and hardware/firmware revision IDs.
    DeviceId = 0x01,
    /// Die traceability record.
    DieRecord = 0x08,
    /// Factory test status (what the paper calls "accept"/"reject").
    TestStatus = 0x7D,
    /// End-of-table marker.
    End = 0xFF,
}

/// Die traceability record: where this die came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DieRecord {
    /// Lot identifier.
    pub lot_id: u32,
    /// Wafer number within the lot.
    pub wafer_id: u16,
    /// Die X position on the wafer.
    pub die_x: u16,
    /// Die Y position on the wafer.
    pub die_y: u16,
}

/// The manufacturer's descriptor as stored in info memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DeviceDescriptor {
    /// Device identifier (e.g. 0x5438).
    pub device_id: u16,
    /// Hardware revision.
    pub hw_revision: u8,
    /// Firmware (BSL) revision.
    pub fw_revision: u8,
    /// Die traceability.
    pub die: DieRecord,
    /// `true` if the die passed die-sort testing ("accept").
    pub accepted: bool,
}

/// Errors decoding a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptorError {
    /// The checksum did not match (blank or corrupted info memory).
    BadChecksum,
    /// A record had an unknown layout.
    Malformed,
    /// A required record was missing.
    MissingRecord(u8),
}

impl core::fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadChecksum => write!(f, "descriptor checksum mismatch"),
            Self::Malformed => write!(f, "malformed descriptor record"),
            Self::MissingRecord(tag) => write!(f, "descriptor record {tag:#04x} missing"),
        }
    }
}

impl std::error::Error for DescriptorError {}

impl DeviceDescriptor {
    /// Encodes the descriptor as TLV words (checksum first, then records,
    /// then the end marker).
    #[must_use]
    pub fn encode(&self) -> Vec<u16> {
        let mut bytes: Vec<u8> = Vec::new();
        // DeviceId record.
        bytes.extend_from_slice(&[TlvTag::DeviceId as u8, 4]);
        bytes.extend_from_slice(&self.device_id.to_le_bytes());
        bytes.push(self.hw_revision);
        bytes.push(self.fw_revision);
        // Die record.
        bytes.extend_from_slice(&[TlvTag::DieRecord as u8, 10]);
        bytes.extend_from_slice(&self.die.lot_id.to_le_bytes());
        bytes.extend_from_slice(&self.die.wafer_id.to_le_bytes());
        bytes.extend_from_slice(&self.die.die_x.to_le_bytes());
        bytes.extend_from_slice(&self.die.die_y.to_le_bytes());
        // Test status record.
        bytes.extend_from_slice(&[TlvTag::TestStatus as u8, 2]);
        bytes.push(u8::from(self.accepted));
        bytes.push(0);
        // End marker.
        bytes.extend_from_slice(&[TlvTag::End as u8, 0]);
        if !bytes.len().is_multiple_of(2) {
            bytes.push(0);
        }
        let mut words: Vec<u16> = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        let checksum = tlv_checksum(&words);
        words.insert(0, checksum);
        words
    }

    /// Decodes a descriptor from TLV words.
    ///
    /// # Errors
    ///
    /// [`DescriptorError`] on checksum or layout problems.
    pub fn decode(words: &[u16]) -> Result<Self, DescriptorError> {
        let (&checksum, body) = words.split_first().ok_or(DescriptorError::Malformed)?;
        // The body may carry trailing erased (0xFFFF) words from flash; the
        // checksummed region ends at the End record.
        let body_end;
        // Find the End record to bound the checksummed region below.
        let bytes: Vec<u8> = body.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut i = 0;
        let mut out = Self::default();
        let mut seen_device = false;
        let mut seen_die = false;
        let mut seen_status = false;
        loop {
            if i + 2 > bytes.len() {
                return Err(DescriptorError::Malformed);
            }
            let tag = bytes[i];
            let len = bytes[i + 1] as usize;
            i += 2;
            if tag == TlvTag::End as u8 {
                body_end = i.div_ceil(2);
                break;
            }
            if i + len > bytes.len() {
                return Err(DescriptorError::Malformed);
            }
            let v = &bytes[i..i + len];
            match tag {
                t if t == TlvTag::DeviceId as u8 => {
                    if len != 4 {
                        return Err(DescriptorError::Malformed);
                    }
                    out.device_id = u16::from_le_bytes([v[0], v[1]]);
                    out.hw_revision = v[2];
                    out.fw_revision = v[3];
                    seen_device = true;
                }
                t if t == TlvTag::DieRecord as u8 => {
                    if len != 10 {
                        return Err(DescriptorError::Malformed);
                    }
                    out.die = DieRecord {
                        lot_id: u32::from_le_bytes([v[0], v[1], v[2], v[3]]),
                        wafer_id: u16::from_le_bytes([v[4], v[5]]),
                        die_x: u16::from_le_bytes([v[6], v[7]]),
                        die_y: u16::from_le_bytes([v[8], v[9]]),
                    };
                    seen_die = true;
                }
                t if t == TlvTag::TestStatus as u8 => {
                    if len != 2 {
                        return Err(DescriptorError::Malformed);
                    }
                    out.accepted = v[0] != 0;
                    seen_status = true;
                }
                _ => {} // unknown records are skipped
            }
            i += len;
        }
        if tlv_checksum(&body[..body_end]) != checksum {
            return Err(DescriptorError::BadChecksum);
        }
        if !seen_device {
            return Err(DescriptorError::MissingRecord(TlvTag::DeviceId as u8));
        }
        if !seen_die {
            return Err(DescriptorError::MissingRecord(TlvTag::DieRecord as u8));
        }
        if !seen_status {
            return Err(DescriptorError::MissingRecord(TlvTag::TestStatus as u8));
        }
        Ok(out)
    }

    /// Writes the descriptor into an info-memory segment.
    ///
    /// # Errors
    ///
    /// Flash errors from the controller.
    pub fn write_to(&self, info: &mut FlashController, seg: SegmentAddr) -> Result<(), NorError> {
        info.erase_segment(seg)?;
        let base = info.geometry().first_word(seg);
        for (i, w) in self.encode().into_iter().enumerate() {
            info.program_word(base.offset(i as u32), w)?;
        }
        Ok(())
    }

    /// Reads a descriptor back from an info-memory segment.
    ///
    /// # Errors
    ///
    /// Flash errors, or [`DescriptorError`] wrapped as `Ok(Err(..))`-free
    /// two-level result: flash first, then decode.
    pub fn read_from(
        info: &mut FlashController,
        seg: SegmentAddr,
    ) -> Result<Result<Self, DescriptorError>, NorError> {
        let words: Result<Vec<u16>, NorError> = info
            .geometry()
            .segment_words(seg)
            .map(|w| info.read_word(w))
            .collect();
        Ok(Self::decode(&words?))
    }
}

fn tlv_checksum(words: &[u16]) -> u16 {
    words
        .iter()
        .fold(0u16, |acc, &w| acc.wrapping_add(w))
        .wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash_module::Msp430Flash;

    fn descriptor() -> DeviceDescriptor {
        DeviceDescriptor {
            device_id: 0x5438,
            hw_revision: 2,
            fw_revision: 7,
            die: DieRecord {
                lot_id: 0xA1B2_C3D4,
                wafer_id: 17,
                die_x: 40,
                die_y: 12,
            },
            accepted: true,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = descriptor();
        let words = d.encode();
        assert_eq!(DeviceDescriptor::decode(&words).unwrap(), d);
    }

    #[test]
    fn decode_with_trailing_erased_words() {
        let d = descriptor();
        let mut words = d.encode();
        words.extend([0xFFFFu16; 20]);
        assert_eq!(DeviceDescriptor::decode(&words).unwrap(), d);
    }

    #[test]
    fn checksum_detects_tamper() {
        let d = descriptor();
        let mut words = d.encode();
        words[3] ^= 0x0100;
        assert!(matches!(
            DeviceDescriptor::decode(&words),
            Err(DescriptorError::BadChecksum) | Err(DescriptorError::Malformed)
        ));
    }

    #[test]
    fn blank_memory_fails_cleanly() {
        let blank = vec![0xFFFFu16; 64];
        assert!(DeviceDescriptor::decode(&blank).is_err());
    }

    #[test]
    fn info_memory_roundtrip() {
        let mut chip = Msp430Flash::f5438(0x10);
        let d = descriptor();
        let seg = SegmentAddr::new(3); // info A
        d.write_to(chip.info_mut(), seg).unwrap();
        let back = DeviceDescriptor::read_from(chip.info_mut(), seg)
            .unwrap()
            .unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn descriptor_is_trivially_forgeable() {
        // The property the paper criticizes: a counterfeiter can rewrite the
        // metadata wholesale — flip "reject" to "accept".
        let mut chip = Msp430Flash::f5438(0x11);
        let seg = SegmentAddr::new(3);
        let mut d = descriptor();
        d.accepted = false;
        d.write_to(chip.info_mut(), seg).unwrap();

        let mut forged = DeviceDescriptor::read_from(chip.info_mut(), seg)
            .unwrap()
            .unwrap();
        forged.accepted = true;
        forged.write_to(chip.info_mut(), seg).unwrap();

        let back = DeviceDescriptor::read_from(chip.info_mut(), seg)
            .unwrap()
            .unwrap();
        assert!(back.accepted, "plain metadata offers no protection");
    }

    #[test]
    fn rejected_status_roundtrips() {
        let mut d = descriptor();
        d.accepted = false;
        let words = d.encode();
        assert!(!DeviceDescriptor::decode(&words).unwrap().accepted);
    }
}
