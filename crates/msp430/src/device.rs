//! Device variants and their memory maps.

use core::fmt;

use flashmark_nor::{FlashGeometry, FlashTimings};
use flashmark_physics::PhysicsParams;

use crate::datasheet;

/// The microcontroller variants used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msp430Variant {
    /// MSP430F5438: 256 KB main flash (4 banks × 128 × 512 B segments).
    F5438,
    /// MSP430F5529: 128 KB main flash (4 banks × 64 × 512 B segments).
    F5529,
}

impl Msp430Variant {
    /// The specification of this variant.
    #[expect(
        clippy::missing_panics_doc,
        reason = "builtin geometries are statically valid"
    )]
    #[must_use]
    pub fn spec(self) -> DeviceSpec {
        match self {
            Self::F5438 => DeviceSpec {
                variant: self,
                name: "MSP430F5438",
                main_geometry: FlashGeometry::new(4, 128, 512).expect("valid"),
                info_geometry: FlashGeometry::new(1, 4, 128).expect("valid"),
                ram_bytes: 16 * 1024,
                timings: datasheet::timings(),
                endurance_cycles: datasheet::ENDURANCE_CYCLES,
            },
            Self::F5529 => DeviceSpec {
                variant: self,
                name: "MSP430F5529",
                main_geometry: FlashGeometry::new(4, 64, 512).expect("valid"),
                info_geometry: FlashGeometry::new(1, 4, 128).expect("valid"),
                ram_bytes: 8 * 1024,
                timings: datasheet::timings(),
                endurance_cycles: datasheet::ENDURANCE_CYCLES,
            },
        }
    }

    /// Physics parameter set of this family (identical across the family;
    /// the paper notes chips within a family behave consistently).
    #[must_use]
    pub fn physics(self) -> PhysicsParams {
        PhysicsParams::msp430_like()
    }
}

impl fmt::Display for Msp430Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Static specification of one device variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Which variant this is.
    pub variant: Msp430Variant,
    /// Marketing name.
    pub name: &'static str,
    /// Main flash geometry.
    pub main_geometry: FlashGeometry,
    /// Info memory geometry (segments D..A).
    pub info_geometry: FlashGeometry,
    /// RAM size (for completeness of the memory map).
    pub ram_bytes: u32,
    /// Flash operation timings.
    pub timings: FlashTimings,
    /// Rated endurance in P/E cycles.
    pub endurance_cycles: u64,
}

impl DeviceSpec {
    /// Main flash capacity in bytes.
    #[must_use]
    pub fn main_flash_bytes(&self) -> u64 {
        self.main_geometry.total_bytes()
    }

    /// Info memory capacity in bytes.
    #[must_use]
    pub fn info_flash_bytes(&self) -> u64 {
        self.info_geometry.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5438_memory_map() {
        let s = Msp430Variant::F5438.spec();
        assert_eq!(s.main_flash_bytes(), 256 * 1024);
        assert_eq!(s.info_flash_bytes(), 512);
        assert_eq!(s.main_geometry.cells_per_segment(), 4096);
        assert_eq!(s.name, "MSP430F5438");
    }

    #[test]
    fn f5529_memory_map() {
        let s = Msp430Variant::F5529.spec();
        assert_eq!(s.main_flash_bytes(), 128 * 1024);
        assert_eq!(s.ram_bytes, 8 * 1024);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Msp430Variant::F5438.to_string(), "MSP430F5438");
    }

    #[test]
    fn physics_is_family_wide() {
        assert_eq!(
            Msp430Variant::F5438.physics(),
            Msp430Variant::F5529.physics()
        );
    }
}
