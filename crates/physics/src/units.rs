//! Newtype units used throughout the simulator.
//!
//! Times and voltages cross many module boundaries; newtypes keep microseconds
//! from being confused with seconds and volts from being confused with either.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! scalar_newtype {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

scalar_newtype!(
    /// A voltage in volts.
    Volts,
    "V"
);

scalar_newtype!(
    /// A duration in microseconds.
    ///
    /// Partial-erase times in the paper are on the order of tens of
    /// microseconds, so this is the natural unit for cell dynamics.
    Micros,
    "µs"
);

scalar_newtype!(
    /// A duration in seconds.
    ///
    /// Used by the simulated wall clock; imprint times in the paper are on
    /// the order of hundreds to thousands of seconds.
    Seconds,
    "s"
);

impl Micros {
    /// Converts to [`Seconds`].
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.0 * 1e-6)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self(ms * 1e3)
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Seconds {
    /// Converts to [`Micros`].
    #[must_use]
    pub fn to_micros(self) -> Micros {
        Micros::new(self.0 * 1e6)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl From<Micros> for Seconds {
    fn from(us: Micros) -> Self {
        us.to_seconds()
    }
}

impl From<Seconds> for Micros {
    fn from(s: Seconds) -> Self {
        s.to_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volts_arithmetic() {
        let a = Volts::new(3.0);
        let b = Volts::new(1.5);
        assert_eq!((a + b).get(), 4.5);
        assert_eq!((a - b).get(), 1.5);
        assert_eq!((a * 2.0).get(), 6.0);
        assert_eq!((a / 2.0).get(), 1.5);
        assert_eq!(a / b, 2.0);
        assert_eq!((-a).get(), -3.0);
    }

    #[test]
    fn micros_seconds_roundtrip() {
        let t = Micros::new(25_000.0);
        let s = t.to_seconds();
        assert!((s.get() - 0.025).abs() < 1e-12);
        assert!((s.to_micros().get() - 25_000.0).abs() < 1e-9);
        assert_eq!(Seconds::from(t), s);
        assert!((Micros::from(s).get() - 25_000.0).abs() < 1e-6);
    }

    #[test]
    fn millis_helpers() {
        assert_eq!(Micros::from_millis(25.0), Micros::new(25_000.0));
        assert!((Micros::new(25_000.0).as_millis() - 25.0).abs() < 1e-12);
        assert!((Seconds::from_millis(170.0).get() - 0.17).abs() < 1e-12);
        assert!((Seconds::new(0.17).as_millis() - 170.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_minmax() {
        let v = Volts::new(5.0);
        assert_eq!(v.clamp(Volts::new(0.0), Volts::new(4.0)), Volts::new(4.0));
        assert_eq!(v.min(Volts::new(4.0)), Volts::new(4.0));
        assert_eq!(v.max(Volts::new(6.0)), Volts::new(6.0));
        assert_eq!(Volts::new(-2.0).abs(), Volts::new(2.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Volts::new(3.2).to_string(), "3.2 V");
        assert_eq!(Micros::new(23.0).to_string(), "23 µs");
        assert_eq!(Seconds::new(1.5).to_string(), "1.5 s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Micros = [1.0, 2.0, 3.5].iter().map(|&v| Micros::new(v)).sum();
        assert_eq!(total, Micros::new(6.5));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Volts::default()).is_empty());
    }
}
