//! Simulation parameter set and presets.

use crate::calibration::{EraseCalibration, SusceptibilityTable};
use crate::retention::RetentionParams;
use crate::units::Volts;
use crate::variation::{LogNormal, Normal};

/// Relative oxide-wear contribution of each operation type.
///
/// One *full* P/E cycle (program from erased, then erase from programmed)
/// contributes `program + erase = 1.0` cycle of wear. An erase pulse applied
/// to an already-erased cell ("erase-only", what the watermark's *good* cells
/// experience during imprinting) contributes far less, because there is no
/// charge to tunnel through the oxide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearWeights {
    /// Wear (in cycles) from fully programming an erased cell.
    pub program: f64,
    /// Wear (in cycles) from fully erasing a programmed cell.
    pub erase: f64,
    /// Wear (in cycles) from an erase pulse on an already-erased cell.
    pub erase_only: f64,
}

impl Default for WearWeights {
    fn default() -> Self {
        Self {
            program: 0.55,
            erase: 0.45,
            erase_only: 0.02,
        }
    }
}

/// Parameters of the non-Gaussian tails of the erase-time distribution.
///
/// * **Stragglers** — a small static fraction of cells erases markedly slower
///   than the log-normal bulk; these set the "all cells erased" times in
///   Fig. 4 of the paper.
/// * **Early erasers** — wear-activated trap-assisted-tunneling cells that
///   erase markedly *faster* once their activation wear is exceeded. These
///   produce the paper's observed asymmetry (Fig. 10): a stressed "bad" cell
///   is far more likely to be misread as "good" than vice versa.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailParams {
    /// Fraction of cells that are stragglers.
    pub straggler_prob: f64,
    /// Maximum extra slowdown of a straggler (multiplier is `1 + U·max`).
    pub straggler_max_extra: f64,
    /// Fraction of cells that are *potential* early erasers.
    pub early_prob_cap: f64,
    /// Wear (kcycles) span over which early erasers activate uniformly.
    pub early_activation_span_kcycles: f64,
    /// Lower bound of the early-eraser speedup factor.
    pub early_factor_lo: f64,
    /// Upper bound of the early-eraser speedup factor.
    pub early_factor_hi: f64,
}

impl Default for TailParams {
    fn default() -> Self {
        Self {
            straggler_prob: 0.02,
            straggler_max_extra: 0.30,
            early_prob_cap: 0.02,
            early_activation_span_kcycles: 120.0,
            early_factor_lo: 0.50,
            early_factor_hi: 0.90,
        }
    }
}

/// Default erase-distribution quantization grid, in kcycles of effective
/// wear. A power of two so `k / grid` is an exact scaling, and fine enough
/// (0.25 kcycles ≈ 250 raw cycles at susceptibility 1) that the quantization
/// error is far below the log-normal per-cell spread.
pub const DEFAULT_ERASE_DIST_GRID_KCYCLES: f64 = 0.25;

/// Full physical parameter set of a flash cell population.
///
/// Construct with a preset ([`PhysicsParams::msp430_like`] is the paper's
/// device) or via [`PhysicsParams::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicsParams {
    /// Read reference voltage: a cell senses `1` (erased) when its threshold
    /// voltage is below this level.
    pub vref: Volts,
    /// Fresh erased-state threshold-voltage distribution (static per cell).
    pub vth_erased: Normal,
    /// Programmed-state threshold-voltage distribution (static per cell).
    pub vth_programmed: Normal,
    /// Per-read sensing noise sigma, in volts.
    pub read_noise_sigma: f64,
    /// Per-cell, per-pulse log-normal jitter sigma on effective pulse time.
    pub op_jitter_sigma: f64,
    /// Common-mode (whole-pulse) log-normal jitter sigma; correlates errors
    /// between replicas extracted in the same partial-erase pulse.
    pub common_jitter_sigma: f64,
    /// Upward shift of the erased-state threshold voltage per kcycle of wear
    /// (trapped charge makes worn cells erase shallower), volts.
    pub erased_vth_shift_per_kcycle: f64,
    /// Upward shift of the programmed-state threshold voltage per kcycle.
    pub programmed_vth_shift_per_kcycle: f64,
    /// Wear contribution of each operation type.
    pub wear: WearWeights,
    /// Effective activation energy (eV) of the Fowler–Nordheim erase rate:
    /// erase runs faster at higher die temperature. Zero disables the
    /// temperature dependence.
    pub erase_activation_energy_ev: f64,
    /// Reference die temperature (°C) at which the calibration tables hold.
    pub ref_temp_c: f64,
    /// Rated endurance in kcycles (100 K for the paper's parts).
    pub endurance_kcycles: f64,
    /// Wear → erase-time calibration.
    pub erase_cal: EraseCalibration,
    /// Quantization step (kcycles of effective wear) of the erase-time
    /// distribution lookup table: every effective-wear key is rounded to the
    /// nearest multiple of this grid before the calibration interpolation.
    /// Part of the committed parameter record — changing it changes every
    /// erase-time draw, so it is versioned alongside the calibration tables.
    pub erase_dist_grid_kcycles: f64,
    /// Per-cell wear-susceptibility distribution (heterogeneous response).
    pub susceptibility: SusceptibilityTable,
    /// Tail behaviour of the erase-time distribution.
    pub tails: TailParams,
    /// Distribution of the full-program time per cell, µs.
    pub prog_full_time_us: LogNormal,
    /// Fractional program-time speedup per kcycle of effective wear: worn
    /// oxide traps assist injection, so stressed cells program *faster* —
    /// the signature the FFD/timing-based recycled-flash detectors (paper
    /// refs \[6\], \[7\]) exploit.
    pub prog_speedup_per_kcycle: f64,
    /// Charge-retention (bake) parameters.
    pub retention: RetentionParams,
}

impl PhysicsParams {
    /// Parameters fitted to the paper's MSP430F5438/F5529 embedded NOR flash.
    #[must_use]
    pub fn msp430_like() -> Self {
        Self {
            vref: Volts::new(3.2),
            vth_erased: Normal::new(1.8, 0.06),
            vth_programmed: Normal::new(5.6, 0.08),
            read_noise_sigma: 0.04,
            op_jitter_sigma: 0.02,
            common_jitter_sigma: 0.04,
            erased_vth_shift_per_kcycle: 0.004,
            programmed_vth_shift_per_kcycle: 0.002,
            wear: WearWeights::default(),
            erase_activation_energy_ev: 0.10,
            ref_temp_c: 25.0,
            endurance_kcycles: 100.0,
            erase_cal: EraseCalibration::msp430(),
            erase_dist_grid_kcycles: DEFAULT_ERASE_DIST_GRID_KCYCLES,
            susceptibility: SusceptibilityTable::msp430(),
            tails: TailParams::default(),
            prog_full_time_us: LogNormal::new(45.0, 0.08),
            prog_speedup_per_kcycle: 0.005,
            retention: RetentionParams::default(),
        }
    }

    /// A generic discrete NOR part: same dynamics, slightly wider variation.
    #[must_use]
    pub fn generic_nor() -> Self {
        let mut p = Self::msp430_like();
        p.vth_erased = Normal::new(1.8, 0.09);
        p.vth_programmed = Normal::new(5.6, 0.12);
        p.read_noise_sigma = 0.05;
        p
    }

    /// A fast stand-alone NOR part (the paper notes imprint times would be
    /// much smaller on such devices): all erase times scaled down 5×.
    #[must_use]
    pub fn fast_standalone_nor() -> Self {
        let mut p = Self::msp430_like();
        p.erase_cal = p.erase_cal.scaled(0.2);
        p.prog_full_time_us = LogNormal::new(9.0, 0.08);
        p
    }

    /// Starts building a custom parameter set from the MSP430 preset.
    #[must_use]
    pub fn builder() -> PhysicsParamsBuilder {
        PhysicsParamsBuilder {
            params: Self::msp430_like(),
        }
    }

    /// Threshold-voltage level that separates the erased and programmed
    /// states' nominal means — useful for diagnostics.
    #[must_use]
    pub fn vth_midpoint(&self) -> Volts {
        Volts::new(0.5 * (self.vth_erased.mean + self.vth_programmed.mean))
    }

    /// Sanity-checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant, e.g. a read
    /// reference outside the erased/programmed window.
    pub fn validate(&self) -> Result<(), String> {
        let vref = self.vref.get();
        let ordered = self.vth_erased.mean < vref && vref < self.vth_programmed.mean;
        if !ordered {
            return Err("vref must sit between the erased and programmed vth means".into());
        }
        if self.read_noise_sigma < 0.0
            || self.op_jitter_sigma < 0.0
            || self.common_jitter_sigma < 0.0
        {
            return Err("noise sigmas must be non-negative".into());
        }
        if self.endurance_kcycles <= 0.0 {
            return Err("endurance must be positive".into());
        }
        let max_shift = self.erased_vth_shift_per_kcycle * 2.0 * self.endurance_kcycles;
        if self.vth_erased.mean + max_shift >= self.vref.get() {
            return Err(
                "erased vth shift reaches vref within 2x endurance; cells would never erase".into(),
            );
        }
        if self.tails.early_factor_lo <= 0.0 || self.tails.early_factor_hi > 1.0 {
            return Err("early-eraser factors must lie in (0, 1]".into());
        }
        if self.tails.early_factor_lo > self.tails.early_factor_hi {
            return Err("early-eraser factor bounds are inverted".into());
        }
        if !(self.erase_dist_grid_kcycles > 0.0 && self.erase_dist_grid_kcycles.is_finite()) {
            return Err("erase-distribution grid must be positive and finite".into());
        }
        Ok(())
    }
}

impl Default for PhysicsParams {
    fn default() -> Self {
        Self::msp430_like()
    }
}

/// Builder for [`PhysicsParams`].
///
/// # Example
///
/// ```
/// use flashmark_physics::PhysicsParams;
/// let p = PhysicsParams::builder()
///     .read_noise_sigma(0.02)
///     .endurance_kcycles(50.0)
///     .build()
///     .expect("valid parameters");
/// assert_eq!(p.endurance_kcycles, 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct PhysicsParamsBuilder {
    params: PhysicsParams,
}

impl PhysicsParamsBuilder {
    /// Sets the read reference voltage.
    #[must_use]
    pub fn vref(mut self, v: Volts) -> Self {
        self.params.vref = v;
        self
    }

    /// Sets the fresh erased-state VTH distribution.
    #[must_use]
    pub fn vth_erased(mut self, d: Normal) -> Self {
        self.params.vth_erased = d;
        self
    }

    /// Sets the programmed-state VTH distribution.
    #[must_use]
    pub fn vth_programmed(mut self, d: Normal) -> Self {
        self.params.vth_programmed = d;
        self
    }

    /// Sets the per-read sensing-noise sigma (volts).
    #[must_use]
    pub fn read_noise_sigma(mut self, sigma: f64) -> Self {
        self.params.read_noise_sigma = sigma;
        self
    }

    /// Sets the per-cell per-pulse jitter sigma.
    #[must_use]
    pub fn op_jitter_sigma(mut self, sigma: f64) -> Self {
        self.params.op_jitter_sigma = sigma;
        self
    }

    /// Sets the common-mode per-pulse jitter sigma.
    #[must_use]
    pub fn common_jitter_sigma(mut self, sigma: f64) -> Self {
        self.params.common_jitter_sigma = sigma;
        self
    }

    /// Sets the wear weights.
    #[must_use]
    pub fn wear(mut self, w: WearWeights) -> Self {
        self.params.wear = w;
        self
    }

    /// Sets the rated endurance.
    #[must_use]
    pub fn endurance_kcycles(mut self, k: f64) -> Self {
        self.params.endurance_kcycles = k;
        self
    }

    /// Sets the erase calibration table.
    #[must_use]
    pub fn erase_cal(mut self, cal: EraseCalibration) -> Self {
        self.params.erase_cal = cal;
        self
    }

    /// Sets the erase-distribution quantization grid (kcycles).
    #[must_use]
    pub fn erase_dist_grid_kcycles(mut self, grid: f64) -> Self {
        self.params.erase_dist_grid_kcycles = grid;
        self
    }

    /// Sets the wear-susceptibility distribution.
    #[must_use]
    pub fn susceptibility(mut self, table: SusceptibilityTable) -> Self {
        self.params.susceptibility = table;
        self
    }

    /// Sets the tail parameters.
    #[must_use]
    pub fn tails(mut self, t: TailParams) -> Self {
        self.params.tails = t;
        self
    }

    /// Sets the retention parameters.
    #[must_use]
    pub fn retention(mut self, r: RetentionParams) -> Self {
        self.params.retention = r;
        self
    }

    /// Finishes building.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (see [`PhysicsParams::validate`]).
    pub fn build(self) -> Result<PhysicsParams, String> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        PhysicsParams::msp430_like().validate().unwrap();
        PhysicsParams::generic_nor().validate().unwrap();
        PhysicsParams::fast_standalone_nor().validate().unwrap();
    }

    #[test]
    fn default_is_msp430() {
        assert_eq!(PhysicsParams::default(), PhysicsParams::msp430_like());
    }

    #[test]
    fn builder_overrides_fields() {
        let p = PhysicsParams::builder()
            .read_noise_sigma(0.01)
            .endurance_kcycles(42.0)
            .build()
            .unwrap();
        assert_eq!(p.read_noise_sigma, 0.01);
        assert_eq!(p.endurance_kcycles, 42.0);
    }

    #[test]
    fn builder_rejects_inconsistent_vref() {
        let err = PhysicsParams::builder()
            .vref(Volts::new(1.0))
            .build()
            .unwrap_err();
        assert!(err.contains("vref"), "unexpected message: {err}");
    }

    #[test]
    fn builder_rejects_excessive_erased_shift() {
        let mut p = PhysicsParams::msp430_like();
        p.erased_vth_shift_per_kcycle = 0.05;
        assert!(p.validate().is_err());
    }

    #[test]
    fn builder_rejects_bad_grid() {
        assert!(PhysicsParams::builder()
            .erase_dist_grid_kcycles(0.0)
            .build()
            .is_err());
        assert!(PhysicsParams::builder()
            .erase_dist_grid_kcycles(f64::INFINITY)
            .build()
            .is_err());
    }

    #[test]
    fn fast_preset_is_actually_faster() {
        let slow = PhysicsParams::msp430_like();
        let fast = PhysicsParams::fast_standalone_nor();
        assert!(fast.erase_cal.median_us(0.0) < slow.erase_cal.median_us(0.0));
    }

    #[test]
    fn full_pe_cycle_wear_is_one() {
        let w = WearWeights::default();
        assert!((w.program + w.erase - 1.0).abs() < 1e-12);
        assert!(w.erase_only < w.erase);
    }

    #[test]
    fn midpoint_between_states() {
        let p = PhysicsParams::msp430_like();
        let m = p.vth_midpoint().get();
        assert!(p.vth_erased.mean < m && m < p.vth_programmed.mean);
    }
}
